"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

from typing import Dict, Hashable, List

import numpy as np
import pytest

from repro.core.gamma import GammaThresholds, dominance_holds, dominance_probability
from repro.core.groups import GroupedDataset


def exact_aggregate_skyline(dataset: GroupedDataset, gamma) -> set:
    """Definition-2 oracle: brute force over exact probabilities."""
    thresholds = GammaThresholds(gamma)
    surviving = set()
    groups = dataset.groups
    for target in groups:
        dominated = False
        for other in groups:
            if other.key == target.key:
                continue
            p = dominance_probability(other, target)
            if dominance_holds(p.numerator, p.denominator, thresholds.gamma):
                dominated = True
                break
        if not dominated:
            surviving.add(target.key)
    return surviving


def random_grouped_dataset(
    rng: np.random.Generator,
    n_groups: int = 6,
    max_group_size: int = 6,
    dimensions: int = 2,
    value_levels: int = 5,
) -> GroupedDataset:
    """Small random grouped dataset with many ties (integer grid values).

    The coarse integer grid makes record-dominance ties and exact-γ
    boundary cases common, which is where the algorithms can disagree if
    anything is wrong.
    """
    groups: Dict[Hashable, np.ndarray] = {}
    for g in range(n_groups):
        size = int(rng.integers(1, max_group_size + 1))
        groups[f"g{g}"] = rng.integers(
            0, value_levels, size=(size, dimensions)
        ).astype(float)
    return GroupedDataset(groups)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
