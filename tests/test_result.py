"""Tests for result and statistics types."""

import time

from repro.core.result import AggregateSkylineResult, AlgorithmStats, Timer


class TestAlgorithmStats:
    def test_defaults(self):
        stats = AlgorithmStats()
        assert stats.group_comparisons == 0
        assert stats.elapsed_seconds == 0.0

    def test_as_dict_roundtrip(self):
        stats = AlgorithmStats(
            algorithm="NL",
            group_comparisons=3,
            record_pairs_examined=50,
            bbox_shortcuts=1,
            groups_skipped=2,
            index_candidates=4,
            stopping_rule_exits=1,
            elapsed_seconds=0.25,
        )
        data = stats.as_dict()
        assert data["algorithm"] == "NL"
        assert data["record_pairs_examined"] == 50
        assert set(data) == {
            "algorithm", "group_comparisons", "record_pairs_examined",
            "bbox_shortcuts", "groups_skipped", "index_candidates",
            "stopping_rule_exits", "elapsed_seconds",
            "pairs_per_second", "shortcut_hit_rate",
        }

    def test_derived_rates(self):
        stats = AlgorithmStats(
            algorithm="LO",
            group_comparisons=10,
            record_pairs_examined=500,
            bbox_shortcuts=4,
            elapsed_seconds=0.5,
        )
        assert stats.pairs_per_second == 1000.0
        assert stats.shortcut_hit_rate == 0.4

    def test_derived_rates_guard_zero_division(self):
        stats = AlgorithmStats()
        assert stats.pairs_per_second == 0.0
        assert stats.shortcut_hit_rate == 0.0


class TestAggregateSkylineResult:
    def test_container_protocol(self):
        result = AggregateSkylineResult(keys=["a", "b"], gamma=0.5)
        assert len(result) == 2
        assert list(result) == ["a", "b"]
        assert "a" in result and "c" not in result
        assert result.as_set() == {"a", "b"}

    def test_default_stats(self):
        result = AggregateSkylineResult(keys=[], gamma=1.0)
        assert result.stats.algorithm == ""


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed >= first
