"""Tests for growth-exponent analysis and the binary dataset store."""

import numpy as np
import pytest

from repro.core.groups import GroupedDataset
from repro.data.store import load_grouped, save_grouped
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.harness.analysis import growth_exponent, summarize
from repro.harness.runner import RunResult


def _sweep_results(exponent, algorithm="X", metric_scale=1e-3):
    return [
        RunResult(
            "fig", {"n": n}, algorithm,
            metric_scale * n**exponent, n, n * 10, 1,
        )
        for n in (100, 200, 400, 800)
    ]


class TestGrowthExponent:
    @pytest.mark.parametrize("true_exponent", [1.0, 2.0, 0.5])
    def test_recovers_power_law(self, true_exponent):
        results = _sweep_results(true_exponent)
        fitted = growth_exponent(results, "n", "X")
        assert fitted == pytest.approx(true_exponent, abs=1e-9)

    def test_noisy_fit_close(self):
        rng = np.random.default_rng(0)
        results = [
            RunResult(
                "fig", {"n": n}, "X",
                1e-3 * n**2 * float(rng.uniform(0.9, 1.1)), 1, 1, 1,
            )
            for n in (100, 200, 400, 800, 1600)
        ]
        assert growth_exponent(results, "n", "X") == pytest.approx(2.0, abs=0.2)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            growth_exponent(_sweep_results(1.0)[:1], "n", "X")
        with pytest.raises(ValueError):
            growth_exponent(_sweep_results(1.0), "n", "missing")

    def test_constant_parameter_rejected(self):
        results = [
            RunResult("fig", {"n": 100}, "X", 0.1, 1, 1, 1),
            RunResult("fig", {"n": 100}, "X", 0.2, 1, 1, 1),
        ]
        with pytest.raises(ValueError):
            growth_exponent(results, "n", "X")

    def test_other_metric(self):
        results = _sweep_results(1.0)
        # group_comparisons was set to n -> exponent 1.
        assert growth_exponent(
            results, "n", "X", metric="group_comparisons"
        ) == pytest.approx(1.0)


class TestSummarize:
    def test_per_algorithm(self):
        results = _sweep_results(2.0, "SQL") + _sweep_results(1.0, "LO")
        summaries = {s.algorithm: s for s in summarize(results, "n")}
        assert summaries["SQL"].runs == 4
        assert summaries["SQL"].exponent == pytest.approx(2.0, abs=1e-9)
        assert summaries["LO"].exponent == pytest.approx(1.0, abs=1e-9)
        assert summaries["SQL"].total_seconds > summaries["LO"].total_seconds
        row = summaries["SQL"].as_row()
        assert row[0] == "SQL"

    def test_without_parameter(self):
        summaries = summarize(_sweep_results(1.0))
        assert summaries[0].exponent is None


class TestGroupedStore:
    def test_roundtrip(self, tmp_path):
        dataset = generate_grouped(
            SyntheticSpec(n_records=120, avg_group_size=30, dimensions=3)
        )
        path = tmp_path / "data.npz"
        save_grouped(dataset, path)
        loaded = load_grouped(path)
        assert loaded.keys() == dataset.keys()
        for key in dataset.keys():
            assert np.array_equal(loaded[key].values, dataset[key].values)

    def test_roundtrip_with_directions_and_tuple_keys(self, tmp_path):
        dataset = GroupedDataset(
            {("team", 1999): [[1.0, 2.0]], "solo": [[3.0, 4.0]]},
            directions=["min", "max"],
        )
        path = tmp_path / "data.npz"
        save_grouped(dataset, path)
        loaded = load_grouped(path)
        assert ("team", 1999) in loaded
        assert loaded.directions == dataset.directions
        assert loaded.original_values(("team", 1999)).tolist() == [[1.0, 2.0]]

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.ones(3))
        with pytest.raises(ValueError, match="not a grouped-dataset"):
            load_grouped(path)

    def test_version_check(self, tmp_path):
        import json

        path = tmp_path / "old.npz"
        manifest = json.dumps({"version": 99, "directions": [], "keys": []})
        np.savez(path, __manifest__=np.array([manifest]))
        with pytest.raises(ValueError, match="version"):
            load_grouped(path)
