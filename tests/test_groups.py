"""Tests for groups, bounding boxes and grouped datasets."""

import numpy as np
import pytest

from repro.core.dominance import Direction
from repro.core.groups import BoundingBox, Group, GroupedDataset


class TestBoundingBox:
    def test_of_values(self):
        box = BoundingBox.of(np.array([[1.0, 5.0], [3.0, 2.0]]))
        assert box.min_corner.tolist() == [1.0, 2.0]
        assert box.max_corner.tolist() == [3.0, 5.0]

    def test_single_record_box_is_point(self):
        box = BoundingBox.of(np.array([[4.0, 4.0]]))
        assert box.min_corner.tolist() == box.max_corner.tolist()

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.of(np.empty((0, 2)))

    def test_invalid_corners_raise(self):
        with pytest.raises(ValueError):
            BoundingBox(np.array([2.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            BoundingBox(np.array([1.0, 1.0]), np.array([2.0]))

    def test_contains_point(self):
        box = BoundingBox(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        assert box.contains_point([1.0, 1.0])
        assert box.contains_point([0.0, 2.0])
        assert not box.contains_point([3.0, 1.0])

    def test_intersects(self):
        a = BoundingBox(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        b = BoundingBox(np.array([2.0, 2.0]), np.array([3.0, 3.0]))
        c = BoundingBox(np.array([2.1, 2.1]), np.array([3.0, 3.0]))
        assert a.intersects(b)       # touching counts
        assert not a.intersects(c)

    def test_equality(self):
        a = BoundingBox(np.array([0.0]), np.array([1.0]))
        b = BoundingBox(np.array([0.0]), np.array([1.0]))
        c = BoundingBox(np.array([0.0]), np.array([2.0]))
        assert a == b
        assert a != c

    def test_dimensions(self):
        box = BoundingBox(np.zeros(3), np.ones(3))
        assert box.dimensions == 3


class TestGroup:
    def test_basic_properties(self):
        group = Group("a", np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert group.size == 2
        assert group.dimensions == 2
        assert len(group) == 2
        assert group.key == "a"

    def test_bbox_cached(self):
        group = Group("a", np.array([[1.0, 2.0], [3.0, 0.0]]))
        box = group.bbox
        assert box is group.bbox
        assert box.min_corner.tolist() == [1.0, 0.0]

    def test_empty_group_raises(self):
        with pytest.raises(ValueError):
            Group("a", np.empty((0, 2)))

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            Group("a", np.array([1.0, 2.0]))

    def test_iteration(self):
        group = Group("a", np.array([[1.0], [2.0]]))
        assert [row.tolist() for row in group] == [[1.0], [2.0]]


class TestGroupedDataset:
    def test_from_mapping(self):
        ds = GroupedDataset({"a": [[1, 2]], "b": [[3, 4], [5, 6]]})
        assert len(ds) == 2
        assert ds.total_records == 3
        assert ds.dimensions == 2
        assert ds.keys() == ["a", "b"]
        assert "a" in ds and "missing" not in ds

    def test_group_indices_follow_insertion_order(self):
        ds = GroupedDataset({"x": [[1, 1]], "y": [[2, 2]]})
        assert ds["x"].index == 0
        assert ds["y"].index == 1

    def test_min_directions_negate(self):
        ds = GroupedDataset({"a": [[1.0, 2.0]]}, directions=["max", "min"])
        assert ds["a"].values.tolist() == [[1.0, -2.0]]

    def test_original_values_roundtrip(self):
        ds = GroupedDataset({"a": [[1.0, 2.0]]}, directions=["max", "min"])
        assert ds.original_values("a").tolist() == [[1.0, 2.0]]

    def test_from_records(self):
        ds = GroupedDataset.from_records(
            records=[[1, 1], [2, 2], [3, 3]],
            keys=["a", "b", "a"],
        )
        assert ds["a"].size == 2
        assert ds["b"].size == 1

    def test_from_group_sequence(self):
        groups = [Group("a", np.array([[1.0, 1.0]]))]
        ds = GroupedDataset(groups)
        assert ds.keys() == ["a"]

    def test_group_sequence_type_checked(self):
        with pytest.raises(TypeError):
            GroupedDataset([("a", [[1, 2]])])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            GroupedDataset({})

    def test_duplicate_keys_raise(self):
        groups = [
            Group("a", np.array([[1.0]])),
            Group("a", np.array([[2.0]])),
        ]
        with pytest.raises(ValueError):
            GroupedDataset(groups)

    def test_single_record_group_promoted(self):
        ds = GroupedDataset({"a": [1.0, 2.0]})
        assert ds["a"].values.shape == (1, 2)

    def test_groups_returns_copy(self):
        ds = GroupedDataset({"a": [[1, 2]]})
        listing = ds.groups
        listing.clear()
        assert len(ds) == 1
