"""Tests for the in-memory relational table."""

import pytest

from repro.relational.table import Table


@pytest.fixture
def people():
    return Table(
        ["name", "city", "age"],
        [
            ("ann", "aarhus", 34),
            ("bob", "genoa", 28),
            ("cyn", "aarhus", 41),
            ("dee", "genoa", 28),
        ],
    )


class TestConstruction:
    def test_basic(self, people):
        assert len(people) == 4
        assert people.columns == ("name", "city", "age")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table(["a", "a"], [])

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            Table(["a", "b"], [(1,)])

    def test_from_dicts(self):
        table = Table.from_dicts(
            [{"x": 1, "y": 2}, {"x": 3, "y": 4}]
        )
        assert table.columns == ("x", "y")
        assert table.rows == [(1, 2), (3, 4)]

    def test_from_dicts_missing_key_becomes_none(self):
        table = Table.from_dicts([{"x": 1}], columns=["x", "y"])
        assert table.rows == [(1, None)]

    def test_from_dicts_empty_needs_columns(self):
        with pytest.raises(ValueError):
            Table.from_dicts([])

    def test_equality(self, people):
        clone = Table(people.columns, people.rows)
        assert people == clone
        assert people != Table(["a"], [])


class TestAccessors:
    def test_column_values(self, people):
        assert people.column_values("age") == [34, 28, 41, 28]

    def test_unknown_column(self, people):
        with pytest.raises(KeyError, match="no column"):
            people.column_position("salary")

    def test_row_dict_and_iter_dicts(self, people):
        first = next(people.iter_dicts())
        assert first == {"name": "ann", "city": "aarhus", "age": 34}


class TestOperators:
    def test_select(self, people):
        young = people.select(lambda row: row["age"] < 30)
        assert [r[0] for r in young.rows] == ["bob", "dee"]

    def test_project(self, people):
        names = people.project(["name"])
        assert names.columns == ("name",)
        assert len(names) == 4

    def test_project_reorders(self, people):
        flipped = people.project(["age", "name"])
        assert flipped.rows[0] == (34, "ann")

    def test_rename(self, people):
        renamed = people.rename({"city": "town"})
        assert renamed.columns == ("name", "town", "age")

    def test_extend(self, people):
        extended = people.extend("next_age", lambda row: row["age"] + 1)
        assert extended.rows[0][-1] == 35

    def test_extend_duplicate_rejected(self, people):
        with pytest.raises(ValueError):
            people.extend("age", lambda row: 0)

    def test_distinct(self):
        table = Table(["x"], [(1,), (1,), (2,)])
        assert table.distinct().rows == [(1,), (2,)]

    def test_order_by_single(self, people):
        by_age = people.order_by(["age"])
        assert [r[2] for r in by_age.rows] == [28, 28, 34, 41]

    def test_order_by_descending_and_stable(self, people):
        ordered = people.order_by([("age", True), "name"])
        assert [r[0] for r in ordered.rows] == ["cyn", "ann", "bob", "dee"]

    def test_order_by_multiple_keys(self, people):
        ordered = people.order_by(["city", ("age", True)])
        assert [r[0] for r in ordered.rows] == ["cyn", "ann", "bob", "dee"]

    def test_limit(self, people):
        assert len(people.limit(2)) == 2
        assert len(people.limit(100)) == 4
        with pytest.raises(ValueError):
            people.limit(-1)

    def test_join(self, people):
        cities = Table(
            ["city", "country"],
            [("aarhus", "DK"), ("genoa", "IT")],
        )
        joined = people.join(cities, on=["city"])
        assert joined.columns == ("name", "city", "age", "country")
        assert len(joined) == 4
        row = dict(zip(joined.columns, joined.rows[0]))
        assert row["country"] == "DK"

    def test_join_drops_unmatched(self, people):
        cities = Table(["city", "country"], [("aarhus", "DK")])
        joined = people.join(cities, on=["city"])
        assert len(joined) == 2

    def test_join_unknown_column(self, people):
        with pytest.raises(KeyError):
            people.join(Table(["z"], []), on=["z"])

    def test_group_rows(self, people):
        partitions = people.group_rows(["city"])
        assert set(partitions) == {("aarhus",), ("genoa",)}
        assert len(partitions[("genoa",)]) == 2


class TestPresentation:
    def test_to_text_contains_header_and_rows(self, people):
        text = people.to_text()
        assert "name" in text and "ann" in text

    def test_to_text_truncation(self, people):
        text = people.to_text(max_rows=2)
        assert "2 more rows" in text

    def test_float_formatting(self):
        table = Table(["x"], [(1.5,), (2.0,)])
        text = table.to_text()
        assert "1.5" in text and "2" in text
