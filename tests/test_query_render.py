"""Round-trip property: parse(render(query)) == query."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import Direction
from repro.query.ast_nodes import (
    AggCall,
    ColumnRef,
    Comparison,
    Literal,
    Logical,
    Not,
    OrderSpec,
    Query,
    SelectItem,
    SkylineSpec,
)
from repro.query.parser import parse
from repro.query.render import render_expression, render_query

# ----------------------------------------------------------------------
# strategies for random (valid) query ASTs
# ----------------------------------------------------------------------

identifiers = st.sampled_from(["pop", "qual", "year", "director", "title"])

literals = st.one_of(
    st.integers(min_value=-1000, max_value=1000).map(Literal),
    st.sampled_from([0.5, 2.25, -1.5]).map(Literal),
    st.sampled_from(["ann", "it's", "x y"]).map(Literal),
)

column_refs = identifiers.map(ColumnRef)

comparisons = st.builds(
    Comparison,
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    column_refs,
    literals,
)


def expressions(depth=2):
    if depth == 0:
        return comparisons
    sub = expressions(depth - 1)
    return st.one_of(
        comparisons,
        st.builds(Not, sub),
        st.builds(
            lambda op, ops: Logical(op, tuple(ops)),
            st.sampled_from(["AND", "OR"]),
            st.lists(sub, min_size=2, max_size=3),
        ),
    )


select_items = st.one_of(
    column_refs.map(lambda c: SelectItem(c)),
    st.builds(
        SelectItem,
        st.builds(AggCall, st.sampled_from(["max", "min", "avg"]), identifiers),
        st.sampled_from([None, "alias_a", "alias_b"]),
    ),
)

queries = st.builds(
    Query,
    table=st.sampled_from(["movies", "stats"]),
    select_star=st.booleans(),
    select=st.lists(select_items, min_size=1, max_size=3),
    where=st.one_of(st.none(), expressions()),
    group_by=st.lists(identifiers, min_size=0, max_size=2, unique=True),
    skyline=st.lists(
        st.builds(
            SkylineSpec, identifiers, st.sampled_from(list(Direction))
        ),
        min_size=0,
        max_size=2,
    ),
    order_by=st.lists(
        st.builds(OrderSpec, identifiers, st.booleans()),
        min_size=0,
        max_size=2,
    ),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=99)),
)


def _normalise(query: Query) -> Query:
    """Make a random AST self-consistent (parser invariants)."""
    if query.select_star:
        query.select = []
    if query.skyline and query.group_by:
        query.gamma = 0.75
        if len(query.skyline) % 2:
            query.weight = "year"        # WEIGHT BY excludes ALGORITHM
        else:
            query.algorithm = "NL"
        query.prune_policy = "safe"
    return query


class TestRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(queries)
    def test_parse_render_roundtrip(self, query):
        query = _normalise(query)
        rendered = render_query(query)
        reparsed = parse(rendered)
        assert reparsed.table == query.table
        assert reparsed.select_star == query.select_star
        assert reparsed.select == query.select
        assert reparsed.where == query.where
        assert reparsed.group_by == query.group_by
        assert reparsed.skyline == query.skyline
        assert reparsed.weight == query.weight
        assert reparsed.gamma == query.gamma
        assert reparsed.algorithm == query.algorithm
        assert reparsed.prune_policy == query.prune_policy
        assert reparsed.order_by == query.order_by
        assert reparsed.limit == query.limit

    @settings(max_examples=60, deadline=None)
    @given(expressions(3))
    def test_expression_roundtrip(self, expression):
        rendered = render_expression(expression)
        query = parse(f"SELECT * FROM t WHERE {rendered}")
        assert query.where == expression

    def test_string_escaping(self):
        expression = Comparison("=", ColumnRef("title"), Literal("it's"))
        rendered = render_expression(expression)
        assert "''" in rendered
        assert parse(f"SELECT * FROM t WHERE {rendered}").where == expression

    def test_example3_render(self):
        query = parse(
            "SELECT director FROM movies GROUP BY director"
            " SKYLINE OF pop MAX, qual MAX"
        )
        rendered = render_query(query)
        assert "SKYLINE OF pop MAX, qual MAX" in rendered
        assert parse(rendered) == query

    def test_invalid_inputs(self):
        with pytest.raises(TypeError):
            render_expression("not an expression")
