"""The curated movie datasets reproduce the paper's numbers exactly."""

from fractions import Fraction

import numpy as np

from repro.core.dominance import dominates
from repro.core.gamma import dominance_probability
from repro.data.movies import (
    MOVIE_ROWS,
    director_filmographies,
    directors_dataset,
    figure1_directors_dataset,
    movie_table,
)


class TestMovieTable:
    def test_row_count_and_columns(self):
        table = movie_table()
        assert len(table) == 10
        assert table.columns == ("title", "year", "director", "pop", "qual")

    def test_contains_paper_rows(self):
        table = movie_table()
        titles = table.column_values("title")
        assert "Pulp Fiction" in titles
        assert "The Room" in titles

    def test_figure1_dataset_groups(self):
        dataset = figure1_directors_dataset()
        assert set(dataset.keys()) == {
            "Cameron", "Nolan", "Tarantino", "Kershner",
            "Coppola", "Jackson", "Wiseau",
        }
        assert dataset["Tarantino"].size == 2
        assert dataset["Jackson"].size == 1


class TestTable2:
    def test_exact_probabilities(self):
        ds = directors_dataset()
        expectations = {
            ("Tarantino", "Wiseau"): Fraction(1),
            ("Tarantino", "Fleischer"): Fraction(15, 16),
            ("Tarantino", "Jackson"): Fraction(49, 72),
            ("Wiseau", "Tarantino"): Fraction(0),
            ("Fleischer", "Tarantino"): Fraction(1, 16),
            ("Jackson", "Tarantino"): Fraction(19, 72),
        }
        for (s, r), expected in expectations.items():
            assert dominance_probability(ds[s], ds[r]) == expected, (s, r)

    def test_rounded_to_paper_values(self):
        ds = directors_dataset()
        rounded = {
            (s, r): round(float(dominance_probability(ds[s], ds[r])), 2)
            for s in ("Tarantino", "Wiseau", "Fleischer", "Jackson")
            for r in ("Tarantino",)
            if s != "Tarantino"
        }
        assert rounded[("Wiseau", "Tarantino")] == 0.00
        assert rounded[("Fleischer", "Tarantino")] == 0.06
        assert rounded[("Jackson", "Tarantino")] == 0.26

    def test_probabilities_need_not_sum_to_one(self):
        """The paper's remark on Tarantino vs Jackson: .68 + .26 < 1."""
        ds = directors_dataset()
        forward = dominance_probability(ds["Tarantino"], ds["Jackson"])
        backward = dominance_probability(ds["Jackson"], ds["Tarantino"])
        assert forward + backward < 1

    def test_section21_walkthrough(self):
        """Three Fleischer movies dominated by all 8 Tarantino movies, one
        (Zombieland) by exactly six -> 30 of 32 combinations."""
        films = director_filmographies()
        tarantino = np.array([[p, q] for _, p, q in films["Tarantino"]])
        counts = {}
        for title, pop, qual in films["Fleischer"]:
            counts[title] = sum(
                dominates(t, (pop, qual)) for t in tarantino
            )
        assert counts["Zombieland"] == 6
        assert sorted(counts.values()) == [6, 8, 8, 8]
        assert sum(counts.values()) == 30

    def test_strict_dominance_over_wiseau(self):
        """Figure 5(a): even Tarantino's worst beats Wiseau's best."""
        films = director_filmographies()
        tarantino = [(p, q) for _, p, q in films["Tarantino"]]
        wiseau = [(p, q) for _, p, q in films["Wiseau"]]
        for t in tarantino:
            for w in wiseau:
                assert dominates(t, w)

    def test_filmography_sizes(self):
        films = director_filmographies()
        assert len(films["Tarantino"]) == 8
        assert len(films["Wiseau"]) == 2
        assert len(films["Fleischer"]) == 4
        assert len(films["Jackson"]) == 9

    def test_filmographies_returns_copy(self):
        films = director_filmographies()
        films["Tarantino"].clear()
        assert len(director_filmographies()["Tarantino"]) == 8

    def test_movie_rows_constant_shape(self):
        for row in MOVIE_ROWS:
            assert len(row) == 5
