"""Tests for the parallel subsystem (repro.parallel + the PAR algorithm).

The determinism contract under test: with ``exchange_interval == 0`` (the
default two-phase scheme) ``PAR`` must be bit-identical to serial ``NL`` —
same skyline, same group-comparison count, same record-pair count — for any
worker count and under either pruning policy.  With pruning exchange on,
``safe`` stays exactly the Definition-2 skyline and ``paper`` may only be a
superset (the serial TR guarantee).
"""

from __future__ import annotations

import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import make_algorithm
from repro.core.algorithms.parallel import ParallelSkylineAlgorithm
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.harness.persistence import results_from_json, results_to_json
from repro.harness.runner import RunResult, run_algorithms
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.parallel import (
    PoolTimeoutError,
    WorkerConfig,
    chunk_ranges,
    execute_chunks,
    index_of_pair,
    iter_pairs,
    pair_count,
    pair_from_index,
    resolve_workers,
    sample_pair_indices,
)
from repro.parallel.executor import WORKERS_ENV_VAR
from tests.conftest import exact_aggregate_skyline, random_grouped_dataset

DISTRIBUTIONS = ("independent", "correlated", "anticorrelated")
POLICIES = ("paper", "safe")


@pytest.fixture(autouse=True)
def _deadlock_guard():
    """Per-test wall-clock ceiling: a wedged pool fails, it doesn't hang.

    CI adds pytest-timeout on top; this fixture is the local fallback for
    environments where that plugin is not installed (POSIX only).
    """
    if not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):  # pragma: no cover - only on deadlock
        raise RuntimeError("parallel test exceeded the 120s deadlock guard")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(120)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def workload(distribution: str, n_records: int = 300, seed: int = 5):
    return generate_grouped(
        SyntheticSpec(
            n_records=n_records,
            avg_group_size=15,
            dimensions=3,
            distribution=distribution,
            group_spread=0.4,
            seed=seed,
        )
    )


@pytest.fixture(scope="module")
def datasets():
    return {d: workload(d) for d in DISTRIBUTIONS}


# ---------------------------------------------------------------------------
# Partitioning math
# ---------------------------------------------------------------------------


class TestPartition:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 5, 8, 33])
    def test_pair_count_matches_enumeration(self, n):
        expected = [(i, j) for i in range(n) for j in range(i + 1, n)]
        assert pair_count(n) == len(expected)
        assert list(iter_pairs(0, pair_count(n), n)) == expected

    @pytest.mark.parametrize("n", [2, 3, 4, 7, 50])
    def test_index_round_trip_exhaustive(self, n):
        for k in range(pair_count(n)):
            i, j = pair_from_index(k, n)
            assert 0 <= i < j < n
            assert index_of_pair(i, j, n) == k

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=2, max_value=100_000), st.data())
    def test_index_round_trip_property(self, n, data):
        k = data.draw(
            st.integers(min_value=0, max_value=pair_count(n) - 1)
        )
        assert index_of_pair(*pair_from_index(k, n), n) == k

    def test_iter_pairs_is_a_slice_of_the_triangle(self):
        n = 9
        full = list(iter_pairs(0, pair_count(n), n))
        for start, stop in [(0, 5), (7, 20), (11, 11), (30, pair_count(n))]:
            assert list(iter_pairs(start, stop, n)) == full[start:stop]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            index_of_pair(3, 3, 5)
        with pytest.raises(ValueError):
            pair_from_index(pair_count(6), 6)
        with pytest.raises(ValueError):
            pair_count(-1)

    @pytest.mark.parametrize(
        "total,chunks", [(10, 3), (10, 10), (10, 25), (1, 4), (97, 8)]
    )
    def test_chunk_ranges_cover_exactly(self, total, chunks):
        ranges = chunk_ranges(total, chunks)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == total
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start
        sizes = [stop - start for start, stop in ranges]
        assert max(sizes) - min(sizes) <= 1
        assert len(ranges) == min(total, chunks)

    def test_chunk_ranges_edge_cases(self):
        assert chunk_ranges(0, 4) == []
        with pytest.raises(ValueError):
            chunk_ranges(5, 0)

    def test_sample_pair_indices_without_replacement(self):
        rng = np.random.default_rng(0)
        indices = sample_pair_indices(40, 200, rng)
        assert len(indices) == len(set(indices)) == 200
        assert all(0 <= k < pair_count(40) for k in indices)

    def test_sample_pair_indices_exhausts_small_spaces(self):
        # Budget >= pair space: every pair exactly once, any seed.
        for seed in (0, 1, 99):
            rng = np.random.default_rng(seed)
            indices = sample_pair_indices(6, 1000, rng)
            assert sorted(indices) == list(range(pair_count(6)))

    def test_sample_pair_indices_empty(self):
        rng = np.random.default_rng(0)
        assert list(sample_pair_indices(1, 10, rng)) == []
        assert list(sample_pair_indices(10, 0, rng)) == []


# ---------------------------------------------------------------------------
# Worker resolution
# ---------------------------------------------------------------------------


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        assert resolve_workers(None) == 2

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(None) >= 1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers(-2)


# ---------------------------------------------------------------------------
# PAR == NL equivalence (the acceptance criterion)
# ---------------------------------------------------------------------------


class TestParallelEquivalence:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @pytest.mark.parametrize("prune_policy", POLICIES)
    def test_two_phase_identical_to_nested_loop(
        self, distribution, prune_policy, datasets
    ):
        dataset = datasets[distribution]
        reference = make_algorithm(
            "NL", 0.5, prune_policy=prune_policy
        ).compute(dataset)
        for workers in (1, 2, 4):
            result = make_algorithm(
                "PAR", 0.5, prune_policy=prune_policy, workers=workers
            ).compute(dataset)
            context = f"{distribution}/{prune_policy}/workers={workers}"
            assert result.as_set() == reference.as_set(), context
            assert (
                result.stats.group_comparisons
                == reference.stats.group_comparisons
            ), context
            assert (
                result.stats.record_pairs_examined
                == reference.stats.record_pairs_examined
            ), context
            assert (
                result.stats.stopping_rule_exits
                == reference.stats.stopping_rule_exits
            ), context

    def test_repeated_compute_is_stable(self, datasets):
        algorithm = make_algorithm("PAR", 0.5, workers=2)
        first = algorithm.compute(datasets["independent"])
        second = algorithm.compute(datasets["independent"])
        assert first.as_set() == second.as_set()
        assert (
            first.stats.record_pairs_examined
            == second.stats.record_pairs_examined
        )

    def test_worker_stats_sum_to_parent_totals(self, datasets):
        algorithm = ParallelSkylineAlgorithm(0.5, workers=2)
        result = algorithm.compute(datasets["anticorrelated"])
        assert algorithm.worker_stats  # pooled run keeps the breakdown
        assert (
            sum(s.group_comparisons for s in algorithm.worker_stats)
            == result.stats.group_comparisons
        )
        assert (
            sum(s.record_pairs_examined for s in algorithm.worker_stats)
            == result.stats.record_pairs_examined
        )

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_inline_kernel_matches_oracle_in_safe_mode(
        self, n_groups, max_size, seed
    ):
        # workers=1 runs the chunk kernel in-process: cheap enough for a
        # property test against the Definition-2 brute-force oracle.
        rng = np.random.default_rng(seed)
        dataset = random_grouped_dataset(
            rng, n_groups=n_groups, max_group_size=max_size
        )
        expected = exact_aggregate_skyline(dataset, 0.5)
        result = make_algorithm(
            "PAR", 0.5, prune_policy="safe", workers=1
        ).compute(dataset)
        assert result.as_set() == expected


# ---------------------------------------------------------------------------
# Pruning exchange (exchange_interval > 0)
# ---------------------------------------------------------------------------


class TestPruningExchange:
    def test_safe_policy_stays_exact(self, datasets):
        dataset = datasets["anticorrelated"]
        expected = make_algorithm(
            "NL", 0.5, prune_policy="safe"
        ).compute(dataset)
        for workers in (1, 2):
            result = make_algorithm(
                "PAR",
                0.5,
                prune_policy="safe",
                workers=workers,
                exchange_interval=4,
            ).compute(dataset)
            assert result.as_set() == expected.as_set(), workers

    def test_paper_policy_is_superset(self, datasets):
        dataset = datasets["correlated"]
        expected = exact_aggregate_skyline(dataset, 0.5)
        result = make_algorithm(
            "PAR",
            0.5,
            prune_policy="paper",
            workers=2,
            exchange_interval=4,
        ).compute(dataset)
        assert result.as_set() >= expected

    def test_exchange_can_skip_work(self, datasets):
        dataset = datasets["correlated"]
        full = make_algorithm("PAR", 0.5, workers=1).compute(dataset)
        pruned = make_algorithm(
            "PAR", 0.5, workers=1, exchange_interval=1
        ).compute(dataset)
        assert (
            pruned.stats.record_pairs_examined
            <= full.stats.record_pairs_examined
        )


# ---------------------------------------------------------------------------
# Pool mechanics / failure modes
# ---------------------------------------------------------------------------


class TestExecutor:
    def test_empty_spans(self, datasets):
        config = WorkerConfig(gamma=0.5)
        assert execute_chunks(
            datasets["independent"].groups, config, [], workers=2
        ) == []

    def test_invalid_worker_count(self, datasets):
        config = WorkerConfig(gamma=0.5)
        with pytest.raises(ValueError):
            execute_chunks(
                datasets["independent"].groups, config, [(0, 1)], workers=0
            )

    def test_wedged_pool_fails_fast(self):
        # A timeout far below pool start-up cost must surface as
        # PoolTimeoutError (not a hang) and terminate the pool.
        dataset = workload("anticorrelated", n_records=1500)
        groups = dataset.groups
        spans = chunk_ranges(pair_count(len(groups)), 8)
        with pytest.raises(PoolTimeoutError):
            execute_chunks(
                groups,
                WorkerConfig(gamma=0.5),
                spans,
                workers=2,
                pool_timeout=1e-4,
            )

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ParallelSkylineAlgorithm(0.5, chunks_per_worker=0)
        with pytest.raises(ValueError):
            ParallelSkylineAlgorithm(0.5, exchange_interval=-1)
        with pytest.raises(ValueError):
            ParallelSkylineAlgorithm(0.5, pool_timeout=0.0)

    def test_registered(self):
        assert isinstance(
            make_algorithm("PAR", workers=1), ParallelSkylineAlgorithm
        )


# ---------------------------------------------------------------------------
# Observability reconciliation across process boundaries
# ---------------------------------------------------------------------------


class TestParallelObservability:
    def test_registry_reconciles_with_pooled_stats(self, datasets):
        registry = MetricsRegistry()
        with use_registry(registry):
            result = make_algorithm("PAR", 0.5, workers=2).compute(
                datasets["independent"]
            )

        def counter_value(metric: str) -> float:
            return registry.counter(
                metric, "", labelnames=("algorithm",)
            ).value(algorithm="PAR")

        stats = result.stats
        assert counter_value("skyline_runs_total") == 1
        assert (
            counter_value("skyline_group_comparisons_total")
            == stats.group_comparisons
        )
        assert (
            counter_value("skyline_record_pairs_total")
            == stats.record_pairs_examined
        )
        assert (
            counter_value("skyline_stopping_rule_exits_total")
            == stats.stopping_rule_exits
        )


# ---------------------------------------------------------------------------
# Harness plumbing (--workers end to end)
# ---------------------------------------------------------------------------


class TestHarnessWorkers:
    def test_runner_forwards_workers_to_parallel_algorithms(self, datasets):
        results = run_algorithms(
            datasets["independent"],
            algorithms=("NL", "PAR"),
            workers=1,
            experiment="t",
        )
        by_algorithm = {r.algorithm: r for r in results}
        assert by_algorithm["NL"].workers is None
        assert by_algorithm["PAR"].workers == 1
        assert (
            by_algorithm["PAR"].skyline_keys
            == by_algorithm["NL"].skyline_keys
        )
        assert (
            by_algorithm["PAR"].record_pairs
            == by_algorithm["NL"].record_pairs
        )

    def _result(self, workers):
        return RunResult(
            experiment="e",
            params={"x": 1},
            algorithm="PAR" if workers else "NL",
            elapsed_seconds=0.25,
            group_comparisons=3,
            record_pairs=5,
            skyline_size=1,
            skyline_keys=frozenset({"g0"}),
            workers=workers,
        )

    def test_workers_round_trip_through_persistence(self):
        loaded = results_from_json(results_to_json([self._result(2)]))
        assert loaded[0].workers == 2

    def test_serial_results_omit_the_workers_key(self):
        text = results_to_json([self._result(None)])
        assert '"workers"' not in text
        assert results_from_json(text)[0].workers is None
