"""Per-algorithm unit tests: construction, counters, edge cases."""

import pytest

from repro.core.algorithms import (
    ALGORITHMS,
    AggregateSkylineAlgorithm,
    make_algorithm,
)
from repro.core.algorithms.indexed import IndexedAlgorithm
from repro.core.algorithms.indexed_bbox import IndexedBBoxAlgorithm
from repro.core.algorithms.nested_loop import NestedLoopAlgorithm
from repro.core.algorithms.sorted_access import SORT_KEYS, SortedAlgorithm
from repro.core.algorithms.transitive import TransitiveAlgorithm
from repro.core.groups import GroupedDataset
from repro.data.movies import directors_dataset


@pytest.fixture
def small_dataset():
    return GroupedDataset(
        {
            "top": [[10, 10], [9, 9]],
            "mid": [[5, 5], [6, 4]],
            "low": [[1, 1], [2, 2]],
        }
    )


class TestRegistry:
    def test_registry_contents(self):
        assert set(ALGORITHMS) == {
            "NL", "TR", "SI", "IN", "LO", "SQL", "AD", "PAR",
        }

    def test_make_algorithm_case_insensitive(self):
        assert isinstance(make_algorithm("nl"), NestedLoopAlgorithm)
        assert isinstance(make_algorithm(" lo "), IndexedBBoxAlgorithm)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_algorithm("XX")

    def test_names_match_paper(self):
        assert NestedLoopAlgorithm.name == "NL"
        assert TransitiveAlgorithm.name == "TR"
        assert SortedAlgorithm.name == "SI"
        assert IndexedAlgorithm.name == "IN"
        assert IndexedBBoxAlgorithm.name == "LO"


class TestConstruction:
    def test_invalid_prune_policy(self):
        with pytest.raises(ValueError, match="prune_policy"):
            NestedLoopAlgorithm(0.5, prune_policy="aggressive")

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            NestedLoopAlgorithm(0.3)

    def test_invalid_sort_key(self):
        with pytest.raises(ValueError, match="sort_key"):
            SortedAlgorithm(0.5, sort_key="alphabetical")

    def test_sort_keys_registry(self):
        assert set(SORT_KEYS) == {"corner_distance", "size_corner"}

    def test_invalid_index_backend(self):
        with pytest.raises(ValueError, match="index_backend"):
            IndexedAlgorithm(0.5, index_backend="btree")

    def test_lo_forces_bbox(self):
        algorithm = IndexedBBoxAlgorithm(0.5)
        assert algorithm.comparator.use_bbox


class TestBehaviour:
    def test_single_group_survives(self):
        dataset = GroupedDataset({"only": [[1, 2], [3, 4]]})
        for name in ("NL", "TR", "SI", "IN", "LO", "SQL"):
            result = make_algorithm(name).compute(dataset)
            assert result.keys == ["only"]

    def test_chain_leaves_top(self, small_dataset):
        for name in ("NL", "TR", "SI", "IN", "LO", "SQL"):
            result = make_algorithm(name).compute(small_dataset)
            assert result.as_set() == {"top"}, name

    def test_result_metadata(self, small_dataset):
        result = make_algorithm("NL", 0.75).compute(small_dataset)
        assert result.gamma == 0.75
        assert result.stats.algorithm == "NL"
        assert result.stats.elapsed_seconds >= 0
        assert "only" not in result
        assert "top" in result
        assert len(result) == 1
        assert list(result) == ["top"]

    def test_nl_compares_all_pairs(self, small_dataset):
        result = NestedLoopAlgorithm(0.5).compute(small_dataset)
        assert result.stats.group_comparisons == 3  # C(3, 2)

    def test_tr_paper_skips_strongly_dominated(self, small_dataset):
        result = TransitiveAlgorithm(0.5, prune_policy="paper").compute(
            small_dataset
        )
        # "low" is strongly dominated by "top" in the first comparison and
        # is skipped afterwards: fewer than the 3 exhaustive comparisons.
        assert result.stats.group_comparisons < 3
        assert result.stats.groups_skipped >= 1

    def test_indexed_counts_candidates(self, small_dataset):
        result = IndexedAlgorithm(0.5).compute(small_dataset)
        assert result.stats.index_candidates >= 1

    def test_indexed_window_prunes_comparisons(self):
        # Ten well-separated groups along the diagonal: the window query for
        # the top group contains only itself.
        groups = {
            f"g{i}": [[float(10 * i), float(10 * i)],
                      [float(10 * i + 1), float(10 * i + 1)]]
            for i in range(10)
        }
        dataset = GroupedDataset(groups)
        indexed = IndexedAlgorithm(0.5).compute(dataset)
        nested = NestedLoopAlgorithm(0.5).compute(dataset)
        assert indexed.as_set() == nested.as_set() == {"g9"}
        assert (
            indexed.stats.group_comparisons
            < nested.stats.group_comparisons
        )

    def test_lo_fewer_record_pairs_than_in(self):
        dataset = directors_dataset()
        lo = IndexedBBoxAlgorithm(0.5).compute(dataset)
        indexed = IndexedAlgorithm(0.5).compute(dataset)
        assert lo.as_set() == indexed.as_set()
        assert lo.stats.record_pairs_examined <= indexed.stats.record_pairs_examined

    def test_compute_resets_stats_between_runs(self, small_dataset):
        algorithm = NestedLoopAlgorithm(0.5)
        first = algorithm.compute(small_dataset)
        second = algorithm.compute(small_dataset)
        assert (
            first.stats.group_comparisons == second.stats.group_comparisons
        )

    def test_gamma_one_keeps_non_strictly_dominated(self):
        # At gamma = 1 only full (p = 1) domination excludes a group.
        dataset = GroupedDataset(
            {
                "a": [[10, 10], [0, 0]],   # half-dominates b, not fully
                "b": [[5, 5]],
                "c": [[1, 1]],             # fully dominated by b
            }
        )
        for name in ("NL", "TR", "SI", "IN", "LO", "SQL"):
            result = make_algorithm(name, 1.0).compute(dataset)
            assert result.as_set() == {"a", "b"}, name

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            AggregateSkylineAlgorithm(0.5)  # type: ignore[abstract]
