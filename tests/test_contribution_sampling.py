"""Tests for record contributions and sampled approximation."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contribution import record_contributions, removal_impact
from repro.core.gamma import dominance_probability
from repro.core.groups import GroupedDataset
from repro.core.sampling import (
    approximate_aggregate_skyline,
    approximate_dominance_probability,
    hoeffding_epsilon,
)
from repro.data.movies import directors_dataset
from tests.conftest import exact_aggregate_skyline, random_grouped_dataset


class TestRecordContributions:
    def test_pulp_fiction_carries_tarantino(self):
        dataset = directors_dataset()
        contributions = record_contributions(dataset, "Tarantino")
        best = contributions[0]
        assert best.record == (557.0, 8.9)      # Pulp Fiction
        assert best.liability == 0
        assert best.offense == max(c.offense for c in contributions)

    def test_scores_match_bruteforce(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=5, max_group_size=5)
        key = dataset.keys()[0]
        rivals = np.vstack(
            [g.values for g in dataset if g.key != key]
        )
        for contribution in record_contributions(dataset, key):
            row = dataset[key].values[contribution.index]
            offense = sum(
                1
                for other in rivals
                if all(row >= other) and any(row > other)
            )
            liability = sum(
                1
                for other in rivals
                if all(other >= row) and any(other > row)
            )
            assert contribution.offense == offense
            assert contribution.liability == liability
            assert contribution.net == offense - liability

    def test_sorted_by_net(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=4, max_group_size=6)
        nets = [c.net for c in record_contributions(dataset, "g0")]
        assert nets == sorted(nets, reverse=True)

    def test_single_group_universe(self):
        contributions = record_contributions(
            {"solo": [[1.0, 2.0], [3.0, 4.0]]}, "solo"
        )
        assert all(c.offense == 0 and c.liability == 0 for c in contributions)

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            record_contributions({"a": [[1.0]]}, "b")

    def test_directions_respected(self):
        contributions = record_contributions(
            {"a": [[1.0], [9.0]], "b": [[5.0]]}, "a", directions=["min"]
        )
        # minimising: the 1.0 record dominates b's 5.0
        best = contributions[0]
        assert best.record == (1.0,)
        assert best.offense == 1


class TestRemovalImpact:
    def test_removing_the_flop_helps(self):
        dataset = GroupedDataset(
            {
                "mixed": [[9.0, 9.0], [0.0, 0.0]],
                "rival": [[5.0, 5.0]],
            }
        )
        impact = dict(
            (index, (worst, survives))
            for index, worst, survives in removal_impact(dataset, "mixed")
        )
        # dropping the flop (index 1) leaves p(rival > mixed) = 0
        assert impact[1] == (Fraction(0), True)
        # dropping the star leaves the flop fully dominated
        assert impact[0] == (Fraction(1), False)

    def test_singleton_group_empty(self):
        assert removal_impact({"a": [[1.0]], "b": [[2.0]]}, "a") == []

    def test_worst_probability_matches_bruteforce(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=4, max_group_size=5)
        key = next(k for k in dataset.keys() if dataset[k].size >= 2)
        for index, worst, survives in removal_impact(dataset, key):
            remaining = np.delete(dataset[key].values, index, axis=0)
            expected = max(
                (
                    dominance_probability(g.values, remaining)
                    for g in dataset
                    if g.key != key
                ),
                default=Fraction(0),
            )
            assert worst == expected
            assert survives == (not (expected == 1 or expected > Fraction(1, 2)))


class TestHoeffding:
    def test_formula(self):
        assert hoeffding_epsilon(1000, 0.05) == pytest.approx(
            np.sqrt(np.log(2 / 0.05) / 2000)
        )

    def test_shrinks_with_samples(self):
        assert hoeffding_epsilon(4000) < hoeffding_epsilon(1000)

    def test_validation(self):
        with pytest.raises(ValueError):
            hoeffding_epsilon(0)
        with pytest.raises(ValueError):
            hoeffding_epsilon(10, delta=0.0)


class TestApproximateDominance:
    def test_estimate_close_to_truth(self):
        rng = np.random.default_rng(0)
        s = rng.uniform(0.4, 1.0, size=(200, 2))
        r = rng.uniform(0.0, 0.6, size=(200, 2))
        truth = float(dominance_probability(s, r))
        estimate = approximate_dominance_probability(
            s, r, samples=4000, rng=np.random.default_rng(1)
        )
        assert abs(estimate - truth) < 0.05

    def test_deterministic_with_rng(self):
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        s = np.random.default_rng(0).uniform(size=(50, 2))
        r = np.random.default_rng(1).uniform(size=(50, 2))
        assert approximate_dominance_probability(
            s, r, 500, rng_a
        ) == approximate_dominance_probability(s, r, 500, rng_b)

    def test_validation(self):
        with pytest.raises(ValueError):
            approximate_dominance_probability(
                np.ones((1, 1)), np.ones((1, 1)), samples=0
            )


class TestApproximateSkyline:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_small_universes_are_exact(self, seed):
        # Every pair universe fits in the sample budget: exact fallback.
        rng = np.random.default_rng(seed)
        dataset = random_grouped_dataset(rng, n_groups=5, max_group_size=5)
        result = approximate_aggregate_skyline(dataset, samples=1024)
        assert result.as_set() == exact_aggregate_skyline(dataset, 0.5)

    def test_large_groups_superset_guarantee(self):
        from repro.data.synthetic import SyntheticSpec, generate_grouped

        dataset = generate_grouped(
            SyntheticSpec(
                n_records=2000,
                avg_group_size=200,
                dimensions=3,
                distribution="anticorrelated",
                seed=5,
            )
        )
        exact = exact_aggregate_skyline(dataset, 0.5)
        for seed in (0, 1, 2):
            approx = approximate_aggregate_skyline(
                dataset, samples=1500, seed=seed
            )
            assert approx.as_set() >= exact

    def test_stats(self):
        result = approximate_aggregate_skyline(
            {"a": [[1.0, 1.0]], "b": [[2.0, 2.0]]}
        )
        assert result.stats.algorithm == "SAMPLE"
        assert result.as_set() == {"b"}
