"""Tests for the tokenizer and parser of the SKYLINE SQL dialect."""

import pytest

from repro.core.dominance import Direction
from repro.query.ast_nodes import AggCall, ColumnRef, Comparison, Literal, Logical, Not
from repro.query.parser import ParseError, parse
from repro.query.tokenizer import TokenizeError, tokenize


class TestTokenizer:
    def test_kinds(self):
        tokens = tokenize("SELECT a, 1.5 FROM t WHERE x >= 'it''s'")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "IDENT", "IDENT", "OP", "NUMBER", "IDENT", "IDENT",
            "IDENT", "IDENT", "OP", "STRING", "EOF",
        ]

    def test_string_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(TokenizeError):
            tokenize("'oops")

    def test_unknown_character(self):
        with pytest.raises(TokenizeError):
            tokenize("SELECT @")

    def test_numbers(self):
        assert tokenize("3")[0].text == "3"
        assert tokenize("3.25")[0].text == "3.25"
        assert tokenize(".5")[0].kind == "NUMBER"  # leading-dot decimals
        assert tokenize("0.5")[0].text == "0.5"

    def test_operators(self):
        kinds = [t.text for t in tokenize("<= >= != <> = < > ( ) , *")[:-1]]
        assert kinds == ["<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", "*"]


class TestParserBasics:
    def test_select_star(self):
        query = parse("SELECT * FROM movies")
        assert query.select_star
        assert query.table == "movies"

    def test_select_columns(self):
        query = parse("SELECT a, b FROM t")
        assert [item.expression.name for item in query.select] == ["a", "b"]

    def test_alias(self):
        query = parse("SELECT max(pop) AS best FROM t GROUP BY d")
        assert query.select[0].alias == "best"
        assert query.select[0].output_name == "best"

    def test_aggregate_default_name(self):
        query = parse("SELECT max(pop) FROM t GROUP BY d")
        assert query.select[0].output_name == "max(pop)"

    def test_count_star(self):
        query = parse("SELECT count(*) FROM t GROUP BY d")
        call = query.select[0].expression
        assert isinstance(call, AggCall)
        assert call.column == "*"

    def test_keywords_case_insensitive(self):
        query = parse("select a from t group by a")
        assert query.group_by == ["a"]

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse("SELECT a")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t banana")


class TestParserClauses:
    def test_where_comparison(self):
        query = parse("SELECT * FROM t WHERE year > 2000")
        assert isinstance(query.where, Comparison)
        assert query.where.op == ">"
        assert isinstance(query.where.left, ColumnRef)
        assert query.where.right == Literal(2000)

    def test_where_logic_precedence(self):
        query = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(query.where, Logical)
        assert query.where.op == "OR"
        assert isinstance(query.where.operands[1], Logical)
        assert query.where.operands[1].op == "AND"

    def test_where_not_and_parens(self):
        query = parse("SELECT * FROM t WHERE NOT (a = 1 OR b = 2)")
        assert isinstance(query.where, Not)
        assert isinstance(query.where.operand, Logical)

    def test_string_literal(self):
        query = parse("SELECT * FROM t WHERE name = 'ann'")
        assert query.where.right == Literal("ann")

    def test_neq_normalised(self):
        query = parse("SELECT * FROM t WHERE a <> 1")
        assert query.where.op == "!="

    def test_group_by_multiple(self):
        query = parse("SELECT a, b FROM t GROUP BY a, b")
        assert query.group_by == ["a", "b"]

    def test_having_aggregate(self):
        query = parse(
            "SELECT d FROM t GROUP BY d HAVING max(q) >= 8.0"
        )
        assert isinstance(query.having, Comparison)
        assert isinstance(query.having.left, AggCall)

    def test_order_and_limit(self):
        query = parse("SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 5")
        assert query.order_by[0].descending
        assert not query.order_by[1].descending
        assert query.limit == 5

    def test_limit_requires_number(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t LIMIT many")


class TestSkylineClause:
    def test_example3(self):
        query = parse(
            "SELECT director FROM movies GROUP BY director"
            " SKYLINE OF pop MAX, qual MAX"
        )
        assert query.is_aggregate_skyline
        assert [s.column for s in query.skyline] == ["pop", "qual"]
        assert all(s.direction is Direction.MAX for s in query.skyline)

    def test_min_direction(self):
        query = parse("SELECT * FROM t SKYLINE OF price MIN, rating MAX")
        assert query.skyline[0].direction is Direction.MIN
        assert query.is_record_skyline

    def test_direction_defaults_to_max(self):
        query = parse("SELECT * FROM t SKYLINE OF price, rating")
        assert all(s.direction is Direction.MAX for s in query.skyline)

    def test_with_gamma(self):
        query = parse(
            "SELECT d FROM t GROUP BY d SKYLINE OF a MAX WITH GAMMA 0.75"
        )
        assert query.gamma == 0.75

    def test_gamma_requires_number(self):
        with pytest.raises(ParseError):
            parse("SELECT d FROM t GROUP BY d SKYLINE OF a WITH GAMMA big")

    def test_using_algorithm(self):
        query = parse(
            "SELECT d FROM t GROUP BY d SKYLINE OF a USING ALGORITHM in"
        )
        assert query.algorithm == "IN"

    def test_skyline_of_requires_of(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t SKYLINE pop MAX")


class TestBetweenAndIn:
    def test_between_desugars_to_conjunction(self):
        from repro.query.ast_nodes import Comparison, Logical

        query = parse("SELECT * FROM t WHERE year BETWEEN 1990 AND 2000")
        assert isinstance(query.where, Logical)
        assert query.where.op == "AND"
        first, second = query.where.operands
        assert isinstance(first, Comparison) and first.op == ">="
        assert isinstance(second, Comparison) and second.op == "<="

    def test_in_list(self):
        from repro.query.ast_nodes import Comparison, Logical

        query = parse("SELECT * FROM t WHERE d IN ('a', 'b', 'c')")
        assert isinstance(query.where, Logical)
        assert query.where.op == "OR"
        assert all(
            isinstance(c, Comparison) and c.op == "="
            for c in query.where.operands
        )

    def test_in_single_value(self):
        from repro.query.ast_nodes import Comparison

        query = parse("SELECT * FROM t WHERE d IN ('a')")
        assert isinstance(query.where, Comparison)

    def test_not_in(self):
        from repro.query.ast_nodes import Not

        query = parse("SELECT * FROM t WHERE d NOT IN ('a', 'b')")
        assert isinstance(query.where, Not)

    def test_between_inside_logic(self):
        query = parse(
            "SELECT * FROM t WHERE year BETWEEN 1 AND 2 AND pop > 3"
        )
        from repro.query.ast_nodes import Comparison, Logical

        # BETWEEN binds its own AND: the outer conjunction has the
        # desugared range check as its first operand.
        assert isinstance(query.where, Logical)
        assert len(query.where.operands) == 2
        inner, tail = query.where.operands
        assert isinstance(inner, Logical) and inner.op == "AND"
        assert isinstance(tail, Comparison) and tail.op == ">"

    def test_prune_clause(self):
        query = parse(
            "SELECT d FROM t GROUP BY d SKYLINE OF a"
            " USING ALGORITHM LO PRUNE SAFE"
        )
        assert query.prune_policy == "safe"

    def test_prune_invalid_policy(self):
        with pytest.raises(ParseError):
            parse(
                "SELECT d FROM t GROUP BY d SKYLINE OF a PRUNE aggressively"
            )
