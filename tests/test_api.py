"""Tests for the public API: aggregate_skyline(), gamma_profile()."""

from fractions import Fraction

import pytest

from repro import (
    GroupedDataset,
    aggregate_skyline,
    aggregate_skyline_from_records,
    gamma_profile,
)
from repro.core.algorithms import make_algorithm
from tests.conftest import exact_aggregate_skyline, random_grouped_dataset


class TestAggregateSkyline:
    def test_mapping_input(self):
        result = aggregate_skyline(
            {"a": [[1, 1]], "b": [[2, 2]]}, algorithm="NL"
        )
        assert result.as_set() == {"b"}

    def test_dataset_input(self):
        dataset = GroupedDataset({"a": [[1, 1]], "b": [[2, 2]]})
        result = aggregate_skyline(dataset)
        assert result.as_set() == {"b"}

    def test_directions_on_dataset_rejected(self):
        dataset = GroupedDataset({"a": [[1, 1]]})
        with pytest.raises(ValueError, match="directions"):
            aggregate_skyline(dataset, directions=["max", "max"])

    def test_directions_applied(self):
        result = aggregate_skyline(
            {"cheap": [[1.0, 5.0]], "pricey": [[9.0, 5.0]]},
            directions=["min", "max"],
            algorithm="NL",
        )
        assert result.as_set() == {"cheap"}

    def test_options_forwarded(self):
        result = aggregate_skyline(
            {"a": [[1, 1]], "b": [[2, 2]]},
            algorithm="TR",
            prune_policy="safe",
            use_stopping_rule=False,
        )
        assert result.as_set() == {"b"}

    def test_bad_option_raises(self):
        with pytest.raises(TypeError):
            aggregate_skyline({"a": [[1, 1]]}, algorithm="NL", warp_speed=9)

    def test_from_records(self):
        result = aggregate_skyline_from_records(
            records=[[1, 1], [5, 5], [2, 2]],
            keys=["a", "b", "a"],
            algorithm="NL",
        )
        assert result.as_set() == {"b"}

    def test_gamma_controls_result_size(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=8, max_group_size=5)
        sizes = [
            len(aggregate_skyline(dataset, gamma=g, algorithm="NL"))
            for g in (0.5, 0.75, 1.0)
        ]
        # gamma = .5 is the most selective setting (Section 2.2).
        assert sizes[0] <= sizes[1] <= sizes[2]


class TestGammaProfile:
    def test_degrees_and_minimal_gamma(self):
        profile = gamma_profile(
            {
                "best": [[10, 10]],
                "half": [[5, 20], [5, 5]],   # half of its pairs dominated
                "worst": [[1, 1]],
            }
        )
        assert profile.degree("best") == 0
        assert profile.minimal_gamma("best") == Fraction(1, 2)
        # "worst" is fully dominated: never admitted.
        assert profile.minimal_gamma("worst") is None
        # "half" suffers p = 1/2: admitted from gamma = .5 on (strict >).
        assert profile.degree("half") == Fraction(1, 2)
        assert profile.minimal_gamma("half") == Fraction(1, 2)

    def test_skyline_at_matches_algorithms(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=7, max_group_size=4)
        profile = gamma_profile(dataset)
        for gamma in (0.5, 0.6, 0.75, 0.9, 1.0):
            expected = exact_aggregate_skyline(dataset, gamma)
            assert set(profile.skyline_at(gamma)) == expected
            nl = make_algorithm("NL", gamma).compute(dataset)
            assert set(profile.skyline_at(gamma)) == nl.as_set()

    def test_ranked_orders_by_minimal_gamma(self):
        profile = gamma_profile(
            {
                "best": [[10, 10]],
                "close": [[9, 9], [11, 8]],
                "worst": [[1, 1]],
            }
        )
        ranking = profile.ranked()
        assert ranking[-1] == ("worst", None)
        gammas = [g for _, g in ranking[:-1]]
        assert gammas == sorted(gammas)

    def test_len(self):
        profile = gamma_profile({"a": [[1, 1]], "b": [[2, 2]]})
        assert len(profile) == 2

    def test_directions(self):
        profile = gamma_profile(
            {"cheap": [[1.0]], "pricey": [[9.0]]}, directions=["min"]
        )
        assert profile.minimal_gamma("pricey") is None
        assert profile.minimal_gamma("cheap") == Fraction(1, 2)
