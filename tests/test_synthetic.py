"""Tests for the synthetic workload generator."""

import numpy as np
import pytest

from repro.data.synthetic import (
    DISTRIBUTIONS,
    SyntheticSpec,
    generate_grouped,
    generate_points,
    uniform_group_sizes,
    zipf_group_sizes,
)


class TestPoints:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_shape_and_range(self, distribution, rng):
        points = generate_points(500, 4, distribution, rng)
        assert points.shape == (500, 4)
        assert points.min() >= 0.0
        assert points.max() <= 1.0

    def test_zero_points(self, rng):
        assert generate_points(0, 3, "independent", rng).shape == (0, 3)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_points(-1, 2, "independent", rng)
        with pytest.raises(ValueError):
            generate_points(10, 0, "independent", rng)
        with pytest.raises(ValueError):
            generate_points(10, 2, "gaussian", rng)

    def test_correlated_has_positive_correlation(self, rng):
        points = generate_points(3000, 2, "correlated", rng)
        assert np.corrcoef(points[:, 0], points[:, 1])[0, 1] > 0.5

    def test_anticorrelated_has_negative_correlation(self, rng):
        points = generate_points(3000, 2, "anticorrelated", rng)
        assert np.corrcoef(points[:, 0], points[:, 1])[0, 1] < -0.3

    def test_independent_near_zero_correlation(self, rng):
        points = generate_points(3000, 2, "independent", rng)
        assert abs(np.corrcoef(points[:, 0], points[:, 1])[0, 1]) < 0.1


class TestGroupSizes:
    def test_uniform_exact(self):
        sizes = uniform_group_sizes(10, 3)
        assert sorted(sizes) == [3, 3, 4]
        assert sum(sizes) == 10

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            uniform_group_sizes(2, 3)
        with pytest.raises(ValueError):
            uniform_group_sizes(2, 0)

    def test_zipf_sum_and_minimum(self):
        sizes = zipf_group_sizes(1000, 50, exponent=1.0)
        assert sum(sizes) == 1000
        assert min(sizes) >= 1
        assert len(sizes) == 50

    def test_zipf_heavy_tail(self):
        sizes = zipf_group_sizes(1000, 50, exponent=1.0)
        # rank-1 group much larger than the median group
        assert sizes[0] > 5 * sorted(sizes)[25]

    def test_zipf_zero_exponent_is_uniformish(self):
        sizes = zipf_group_sizes(100, 10, exponent=0.0)
        assert max(sizes) - min(sizes) <= 2

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_group_sizes(5, 10)
        with pytest.raises(ValueError):
            zipf_group_sizes(10, 0)
        with pytest.raises(ValueError):
            zipf_group_sizes(10, 2, exponent=-1)


class TestGeneratedDatasets:
    def test_defaults_match_paper(self):
        spec = SyntheticSpec()
        assert spec.n_records == 10_000
        assert spec.avg_group_size == 100
        assert spec.dimensions == 5
        assert spec.group_spread == 0.2
        assert spec.group_count == 100

    def test_total_records_and_groups(self):
        spec = SyntheticSpec(n_records=500, avg_group_size=50, dimensions=3)
        dataset = generate_grouped(spec)
        assert dataset.total_records == 500
        assert len(dataset) == 10
        assert dataset.dimensions == 3

    def test_spread_bounds_group_extent(self):
        spec = SyntheticSpec(
            n_records=400, avg_group_size=100, group_spread=0.1, seed=3
        )
        dataset = generate_grouped(spec)
        for group in dataset:
            extent = group.bbox.max_corner - group.bbox.min_corner
            assert np.all(extent <= 0.1 + 1e-12)

    def test_reproducible(self):
        spec = SyntheticSpec(n_records=300, avg_group_size=30, seed=11)
        a = generate_grouped(spec)
        b = generate_grouped(spec)
        for key in a.keys():
            assert np.array_equal(a[key].values, b[key].values)

    def test_different_seeds_differ(self):
        a = generate_grouped(SyntheticSpec(n_records=300, avg_group_size=30, seed=1))
        b = generate_grouped(SyntheticSpec(n_records=300, avg_group_size=30, seed=2))
        assert not np.array_equal(a["g0"].values, b["g0"].values)

    def test_zipf_sizes_used(self):
        spec = SyntheticSpec(
            n_records=1000,
            avg_group_size=20,
            size_distribution="zipf",
            zipf_exponent=1.2,
            seed=0,
        )
        dataset = generate_grouped(spec)
        sizes = sorted(group.size for group in dataset)
        assert sizes[-1] > 5 * sizes[len(sizes) // 2]
        assert dataset.total_records == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_grouped(SyntheticSpec(n_records=0))
        with pytest.raises(ValueError):
            generate_grouped(SyntheticSpec(group_spread=1.5))
        with pytest.raises(ValueError):
            generate_grouped(SyntheticSpec(distribution="weird"))
        with pytest.raises(ValueError):
            generate_grouped(SyntheticSpec(size_distribution="pareto"))
        with pytest.raises(ValueError):
            generate_grouped(SyntheticSpec(avg_group_size=0))

    def test_key_prefix(self):
        spec = SyntheticSpec(
            n_records=100, avg_group_size=50, key_prefix="cls"
        )
        dataset = generate_grouped(spec)
        assert all(str(key).startswith("cls") for key in dataset.keys())
