"""Metamorphic properties of weighted γ-dominance + dataset set-ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.groups import GroupedDataset
from repro.core.weighted import (
    weighted_aggregate_skyline,
    weighted_dominance_probability,
)
from tests.conftest import exact_aggregate_skyline, random_grouped_dataset


def random_weighted_pair(seed):
    rng = np.random.default_rng(seed)
    n_s, n_r = int(rng.integers(1, 6)), int(rng.integers(1, 6))
    s = rng.integers(0, 4, size=(n_s, 2)).astype(float)
    r = rng.integers(0, 4, size=(n_r, 2)).astype(float)
    ws = rng.integers(1, 5, size=n_s)
    wr = rng.integers(1, 5, size=n_r)
    return s, ws, r, wr


class TestWeightedMetamorphic:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1_000_000),
        st.integers(min_value=2, max_value=5),
    )
    def test_uniform_weight_scaling_invariance(self, seed, factor):
        """Multiplying every weight in a group by k cancels in the ratio."""
        s, ws, r, wr = random_weighted_pair(seed)
        base = weighted_dominance_probability(s, ws, r, wr)
        scaled = weighted_dominance_probability(
            s, ws * factor, r, wr * factor
        )
        assert base == scaled

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=1_000_000))
    def test_record_splitting_invariance(self, seed):
        """A record of weight 2 equals two copies of weight 1."""
        s, ws, r, wr = random_weighted_pair(seed)
        # Double the first record's weight...
        ws_doubled = ws.copy()
        ws_doubled[0] *= 2
        merged = weighted_dominance_probability(s, ws_doubled, r, wr)
        # ...versus appending an identical copy carrying the extra weight.
        s_split = np.vstack([s, s[0:1]])
        ws_split = np.concatenate([ws, [ws[0]]])
        split = weighted_dominance_probability(s_split, ws_split, r, wr)
        assert merged == split

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=1_000_000))
    def test_asymmetry_holds_for_weights(self, seed):
        """p_w(S>R) + p_w(R>S) <= 1, so no mutual domination at γ >= .5."""
        s, ws, r, wr = random_weighted_pair(seed)
        forward = weighted_dominance_probability(s, ws, r, wr)
        backward = weighted_dominance_probability(r, wr, s, ws)
        assert forward + backward <= 1

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=1_000_000))
    def test_weighted_skyline_affine_invariance(self, seed):
        rng = np.random.default_rng(seed)
        groups = {
            f"g{i}": (
                rng.integers(0, 5, size=(int(rng.integers(1, 4)), 2)).astype(
                    float
                ),
                rng.integers(1, 4, size=0).tolist(),
            )
            for i in range(4)
        }
        groups = {
            key: (records, rng.integers(1, 4, size=len(records)).tolist())
            for key, (records, _) in groups.items()
        }
        base = weighted_aggregate_skyline(groups).as_set()
        shifted = {
            key: (np.asarray(records) * 3.0 + 7.0, weights)
            for key, (records, weights) in groups.items()
        }
        assert weighted_aggregate_skyline(shifted).as_set() == base


class TestDatasetSetOps:
    def test_subset(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=6, max_group_size=4)
        keys = dataset.keys()[:3]
        sub = dataset.subset(keys)
        assert sub.keys() == keys
        for key in keys:
            assert np.array_equal(sub[key].values, dataset[key].values)

    def test_subset_unknown_key(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=3)
        with pytest.raises(KeyError):
            dataset.subset(["nope"])

    def test_subset_preserves_directions(self):
        dataset = GroupedDataset(
            {"a": [[1.0, 2.0]], "b": [[3.0, 4.0]]}, directions=["min", "max"]
        )
        sub = dataset.subset(["a"])
        assert sub.directions == dataset.directions
        assert sub.original_values("a").tolist() == [[1.0, 2.0]]

    def test_merge_disjoint(self):
        a = GroupedDataset({"x": [[1.0, 1.0]]})
        b = GroupedDataset({"y": [[2.0, 2.0]]})
        merged = a.merge(b)
        assert set(merged.keys()) == {"x", "y"}

    def test_merge_shared_keys_concatenates(self):
        a = GroupedDataset({"x": [[1.0, 1.0]]})
        b = GroupedDataset({"x": [[2.0, 2.0]], "y": [[3.0, 3.0]]})
        merged = a.merge(b)
        assert merged["x"].size == 2

    def test_merge_direction_mismatch(self):
        a = GroupedDataset({"x": [[1.0]]}, directions=["min"])
        b = GroupedDataset({"x": [[1.0]]})
        with pytest.raises(ValueError, match="directions"):
            a.merge(b)

    def test_merge_dimension_mismatch(self):
        a = GroupedDataset({"x": [[1.0]]})
        b = GroupedDataset({"x": [[1.0, 2.0]]})
        with pytest.raises(ValueError):
            a.merge(b)

    def test_partition_merge_skyline_consistency(self, rng):
        """Splitting a dataset and merging it back is the identity for the
        operator — the distributive sanity behind partitioned execution."""
        dataset = random_grouped_dataset(rng, n_groups=6, max_group_size=4)
        keys = dataset.keys()
        first = dataset.subset(keys[:3])
        second = dataset.subset(keys[3:])
        rebuilt = first.merge(second)
        assert exact_aggregate_skyline(rebuilt, 0.5) == exact_aggregate_skyline(
            dataset, 0.5
        )
