"""Tests for the R-tree spatial index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.mbr import Rect
from repro.index.rtree import RTree


class TestRect:
    def test_point(self):
        rect = Rect.point([1.0, 2.0])
        assert rect.low.tolist() == [1.0, 2.0]
        assert rect.high.tolist() == [1.0, 2.0]
        assert rect.area() == 0.0

    def test_invalid_corners(self):
        with pytest.raises(ValueError):
            Rect([2.0], [1.0])
        with pytest.raises(ValueError):
            Rect([1.0, 2.0], [3.0])

    def test_area_margin_center(self):
        rect = Rect([0.0, 0.0], [2.0, 3.0])
        assert rect.area() == 6.0
        assert rect.margin() == 5.0
        assert rect.center.tolist() == [1.0, 1.5]

    def test_union_and_enlargement(self):
        a = Rect([0.0, 0.0], [1.0, 1.0])
        b = Rect([2.0, 2.0], [3.0, 3.0])
        union = a.union(b)
        assert union == Rect([0.0, 0.0], [3.0, 3.0])
        assert a.enlargement(b) == 9.0 - 1.0

    def test_union_of_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect.union_of([])

    def test_intersects_touching(self):
        a = Rect([0.0], [1.0])
        b = Rect([1.0], [2.0])
        c = Rect([1.1], [2.0])
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_contains(self):
        outer = Rect([0.0, 0.0], [4.0, 4.0])
        inner = Rect([1.0, 1.0], [2.0, 2.0])
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains_point([4.0, 0.0])

    def test_infinite_query_rect(self):
        window = Rect([0.0, 0.0], [np.inf, np.inf])
        assert window.intersects(Rect.point([1e9, 1e9]))


class TestRTreeConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)  # > M/2
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=0)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.search_window([0.0, 0.0], [1.0, 1.0]) == []

    def test_insert_and_size(self):
        tree = RTree(max_entries=4)
        for i in range(20):
            tree.insert_point([float(i), float(i)], i)
        assert len(tree) == 20
        assert tree.height >= 2  # splits happened

    def test_bulk_load_balanced(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(size=(200, 2))
        tree = RTree.bulk_load(
            ((Rect.point(p), i) for i, p in enumerate(points)),
            max_entries=8,
        )
        assert len(tree) == 200
        # STR packs near-full nodes: height close to log_8(200 / 8) + 1.
        assert tree.height <= 4

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0
        assert tree.search_window([0.0], [1.0]) == []


def brute_force_window(points, low, high):
    low = np.asarray(low)
    high = np.asarray(high)
    return {
        i
        for i, p in enumerate(points)
        if bool(np.all(p >= low) and np.all(p <= high))
    }


class TestWindowQueries:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=120),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=100_000),
        st.booleans(),
    )
    def test_matches_brute_force(self, n, d, seed, bulk):
        rng = np.random.default_rng(seed)
        points = rng.integers(0, 10, size=(n, d)).astype(float)
        if bulk:
            tree = RTree.bulk_load(
                ((Rect.point(p), i) for i, p in enumerate(points)),
                max_entries=4,
            )
        else:
            tree = RTree(max_entries=4)
            for i, p in enumerate(points):
                tree.insert_point(p, i)
        corner_a = rng.integers(0, 10, size=d).astype(float)
        corner_b = rng.integers(0, 10, size=d).astype(float)
        low = np.minimum(corner_a, corner_b)
        high = np.maximum(corner_a, corner_b)
        expected = brute_force_window(points, low, high)
        assert set(tree.search_window(low, high)) == expected

    def test_dominance_window_with_infinity(self):
        tree = RTree(max_entries=4)
        points = [[1.0, 1.0], [5.0, 5.0], [2.0, 9.0], [9.0, 2.0]]
        for i, p in enumerate(points):
            tree.insert_point(p, i)
        found = tree.search_window([2.0, 2.0], [np.inf, np.inf])
        # Every point with both coordinates >= 2.
        assert set(found) == {1, 2, 3}
        assert set(tree.search_window([6.0, 1.0], [np.inf, np.inf])) == {3}

    def test_rect_payloads(self):
        tree = RTree(max_entries=4)
        tree.insert(Rect([0.0, 0.0], [2.0, 2.0]), "a")
        tree.insert(Rect([5.0, 5.0], [6.0, 6.0]), "b")
        assert tree.search_window([1.0, 1.0], [1.5, 1.5]) == ["a"]
        assert set(tree.search_window([0.0, 0.0], [10.0, 10.0])) == {"a", "b"}

    def test_duplicate_points_all_found(self):
        tree = RTree(max_entries=4)
        for i in range(10):
            tree.insert_point([1.0, 1.0], i)
        assert set(tree.search_window([1.0, 1.0], [1.0, 1.0])) == set(range(10))
