"""The network front-end's contract (see ``docs/engine.md``).

* **Concurrent bit-identity** — two clients submitting interleaved
  batches over TCP receive skylines *and* every ``AlgorithmStats``
  work counter identical to running the same specs sequentially
  through ``engine.query()``, under fork and spawn.
* **Admission** — bounded in-flight queries with FIFO tickets, load
  shedding (``overloaded``) when the waiting queue is full, deadline
  expiry (``timeout``) that never kills the pool.
* **Transport** — JSONL framing, error frames for bad specs, the
  HTTP/1.1 POST shim on the same port, graceful drain on shutdown,
  and the ``net_*`` runlog events / counters.
"""

from __future__ import annotations

import dataclasses
import json
import random
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import ExecutionConfig, SkylineEngine
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.net import (
    AdmissionController,
    AdmissionRejected,
    AdmissionTimeout,
    RequestTimeout,
    ServerError,
    ServerOverloaded,
    SkylineClient,
    SkylineServer,
    SpecError,
    validate_spec,
)
from repro.obs import metrics as obs_metrics
from repro.obs import runlog as obs_runlog

pytestmark = pytest.mark.timeout(300)

START_METHODS = ("fork", "spawn")

#: Work counters covered by the bit-identity contract (wall-clock and
#: the rates derived from it vary run to run by construction).
COUNTER_FIELDS = (
    "algorithm",
    "group_comparisons",
    "record_pairs_examined",
    "bbox_shortcuts",
    "groups_skipped",
    "index_candidates",
    "stopping_rule_exits",
)

SPECS = [
    {"gamma": gamma, "algorithm": algorithm}
    for gamma in (0.5, 0.6, 0.75)
    for algorithm in ("LO", "IN")
]


@pytest.fixture(autouse=True)
def _deadlock_guard():
    """A wedged server/pool fails the test instead of hanging the run."""
    if not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):  # pragma: no cover - only on deadlock
        raise RuntimeError("net test exceeded the 240s deadlock guard")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(240)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _require_start_method(name: str) -> None:
    if name == "fork" and not hasattr(signal, "SIGALRM"):
        pytest.skip("fork start method requires POSIX")


@pytest.fixture(scope="module")
def dataset():
    return generate_grouped(
        SyntheticSpec(
            n_records=600,
            avg_group_size=6,
            dimensions=3,
            distribution="anticorrelated",
            group_spread=0.4,
            seed=23,
        )
    )


@pytest.fixture(scope="module")
def slow_dataset():
    """Big enough that a serial NL query takes ~a second — room for a
    short deadline to expire while the query is genuinely running."""
    rng = random.Random(29)
    return {
        f"g{index:03d}": [
            [rng.random(), rng.random(), rng.random()] for _ in range(40)
        ]
        for index in range(120)
    }


def counters(stats_dict):
    return {key: stats_dict[key] for key in COUNTER_FIELDS}


def result_counters(result):
    return counters(dataclasses.asdict(result.stats))


def wire_keys(body):
    return [tuple(k) if isinstance(k, list) else k for k in body["keys"]]


# ----------------------------------------------------------------------
# concurrent bit-identity over TCP
# ----------------------------------------------------------------------


@pytest.mark.parametrize("start_method", START_METHODS)
def test_two_clients_bit_identical_to_sequential(dataset, start_method):
    _require_start_method(start_method)
    execution = ExecutionConfig(workers=2, scheduler="stealing")
    with SkylineEngine(execution, start_method=start_method) as engine:
        handle = engine.attach(dataset)
        baseline = [engine.query(handle, **spec) for spec in SPECS]
        with SkylineServer(engine, handle, max_inflight=3) as server:
            host, port = server.address
            outputs = [{}, {}]
            orders = (
                list(range(len(SPECS))),
                list(reversed(range(len(SPECS)))),
            )
            errors = []

            def run_client(slot, order):
                try:
                    with SkylineClient(host, port) as client:
                        for index in order:
                            outputs[slot][index] = client.query(
                                **SPECS[index]
                            )
                except Exception as exc:  # pragma: no cover - test fails
                    errors.append(exc)

            threads = [
                threading.Thread(target=run_client, args=(slot, order))
                for slot, order in enumerate(orders)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            for body_by_index in outputs:
                assert len(body_by_index) == len(SPECS)
                for index, cold in enumerate(baseline):
                    body = body_by_index[index]
                    assert wire_keys(body) == list(cold.keys), index
                    assert counters(body["stats"]) == result_counters(
                        cold
                    ), index


@pytest.mark.parametrize("start_method", START_METHODS)
def test_interleaved_batches_one_connection_each(dataset, start_method):
    """Same contract, driven through the server's admission queue hard:
    a single in-flight slot forces full interleaving of the two
    clients' request streams."""
    _require_start_method(start_method)
    execution = ExecutionConfig(workers=2, scheduler="stealing")
    with SkylineEngine(execution, start_method=start_method) as engine:
        handle = engine.attach(dataset)
        baseline = [engine.query(handle, **spec) for spec in SPECS[:4]]
        with SkylineServer(
            engine, handle, max_inflight=1, max_waiting=16
        ) as server:
            host, port = server.address
            bodies = [None, None]

            def sweep(slot):
                with SkylineClient(host, port) as client:
                    bodies[slot] = [
                        client.query(**spec) for spec in SPECS[:4]
                    ]

            threads = [
                threading.Thread(target=sweep, args=(slot,))
                for slot in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for body_list in bodies:
                assert body_list is not None
                for body, cold in zip(body_list, baseline):
                    assert wire_keys(body) == list(cold.keys)
                    assert counters(body["stats"]) == result_counters(cold)


# ----------------------------------------------------------------------
# admission: deadlines, load shedding, fairness
# ----------------------------------------------------------------------


def test_deadline_expiry_returns_timeout_and_pool_survives(slow_dataset):
    with SkylineEngine(execution="workers=2") as engine:
        handle = engine.attach(slow_dataset)
        with SkylineServer(
            engine, handle, max_inflight=1, max_waiting=4
        ) as server:
            host, port = server.address
            with SkylineClient(host, port) as client:
                with pytest.raises(RequestTimeout):
                    client.query(gamma=0.5, algorithm="NL", deadline_ms=50)
                # The abandoned query holds its slot until it finishes;
                # afterwards the same connection and pool keep working.
                deadline = time.monotonic() + 120
                while True:
                    try:
                        body = client.query(gamma=0.6, algorithm="LO")
                        break
                    except (ServerOverloaded, RequestTimeout):
                        assert time.monotonic() < deadline
                        time.sleep(0.1)
                assert len(body["keys"]) > 0
                cold = engine.query(handle, gamma=0.6, algorithm="LO")
                assert wire_keys(body) == list(cold.keys)


def test_overload_rejection_when_queue_full(slow_dataset):
    with SkylineEngine(execution="workers=2") as engine:
        handle = engine.attach(slow_dataset)
        with SkylineServer(
            engine, handle, max_inflight=1, max_waiting=0
        ) as server:
            host, port = server.address
            holder = SkylineClient(host, port)
            try:
                finished = threading.Event()

                def occupy():
                    holder.request("query", gamma=0.5, algorithm="NL")
                    finished.set()

                thread = threading.Thread(target=occupy)
                thread.start()
                time.sleep(0.3)  # let the slow query claim the only slot
                with SkylineClient(host, port) as client:
                    with pytest.raises(ServerOverloaded):
                        client.query(gamma=0.5, algorithm="LO")
                assert finished.wait(timeout=120)
                thread.join()
                snapshot = server.admission.snapshot()
                assert snapshot["rejected_total"] >= 1
            finally:
                holder.close()


def test_admission_controller_fifo_and_timeout():
    controller = AdmissionController(max_inflight=1, max_waiting=8)
    controller.admit()
    order = []
    ready = threading.Barrier(3)

    def wait_turn(tag):
        ready.wait()
        time.sleep(0.05 * tag)  # stagger arrival: ticket order = tag order
        controller.admit()
        order.append(tag)
        controller.release()

    threads = [
        threading.Thread(target=wait_turn, args=(tag,)) for tag in (1, 2)
    ]
    for thread in threads:
        thread.start()
    ready.wait()
    time.sleep(0.3)  # both are queued behind the held slot
    with pytest.raises(AdmissionTimeout):
        controller.admit(deadline=time.monotonic() + 0.1)
    controller.release()
    for thread in threads:
        thread.join()
    assert order == [1, 2]


def test_admission_rejects_when_waiting_full():
    controller = AdmissionController(max_inflight=1, max_waiting=0)
    controller.admit()
    with pytest.raises(AdmissionRejected):
        controller.admit()
    controller.release()
    controller.admit()  # slot free again
    controller.release()


# ----------------------------------------------------------------------
# transport: error frames, HTTP shim, drain
# ----------------------------------------------------------------------


def test_error_frames_for_bad_specs(dataset):
    with SkylineEngine() as engine:
        handle = engine.attach(dataset)
        with SkylineServer(engine, handle) as server:
            host, port = server.address
            with SkylineClient(host, port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.query(gamma=0.6, bogus=1)
                assert excinfo.value.code == "bad_request"
                assert "bogus" in str(excinfo.value)
                with pytest.raises(ServerError) as excinfo:
                    client.query(gamma=0.6, algorithm="NOPE")
                assert excinfo.value.code == "bad_request"
                with pytest.raises(ServerError) as excinfo:
                    client.request("frobnicate")
                assert "unknown op" in str(excinfo.value)
                # the connection survives every error frame
                assert client.ping()
                plan = client.explain(gamma=0.5)
                assert "aggregate-skyline" in plan
                stats = client.stats()
                assert stats["admission"]["max_inflight"] == 4


def test_http_shim_post_get_and_errors(dataset):
    with SkylineEngine() as engine:
        handle = engine.attach(dataset)
        baseline = engine.query(handle, gamma=0.6, algorithm="LO")
        with SkylineServer(engine, handle) as server:
            host, port = server.address
            base = f"http://{host}:{port}"

            def post(payload):
                request = urllib.request.Request(
                    f"{base}/query",
                    data=json.dumps(payload).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=60) as resp:
                    return json.loads(resp.read())

            body = post({"gamma": 0.6, "algorithm": "LO"})
            assert wire_keys(body) == list(baseline.keys)
            assert counters(body["stats"]) == result_counters(baseline)

            many = post([{"gamma": 0.6}, {"gamma": 0.75}])
            assert len(many["results"]) == 2

            with urllib.request.urlopen(f"{base}/stats", timeout=60) as resp:
                stats = json.loads(resp.read())
            assert stats["engine"]["queries"] >= 3

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post({"gamma": 0.6, "bogus": 1})
            assert excinfo.value.code == 400
            detail = json.loads(excinfo.value.read())
            assert detail["error"]["code"] == "bad_request"


def test_graceful_drain_delivers_in_flight_response(slow_dataset):
    with SkylineEngine(execution="workers=2") as engine:
        handle = engine.attach(slow_dataset)
        server = SkylineServer(
            engine, handle, max_inflight=2, drain_timeout=120.0
        ).start()
        host, port = server.address
        client = SkylineClient(host, port)
        try:
            box = {}

            def go():
                box["body"] = client.request(
                    "query", gamma=0.5, algorithm="NL"
                )

            thread = threading.Thread(target=go)
            thread.start()
            time.sleep(0.3)  # the query is in flight
            server.shutdown()  # drains before closing sockets
            thread.join(timeout=120)
            assert "body" in box and box["body"]["keys"]
        finally:
            client.close()


def test_shutdown_rejects_new_queries(dataset):
    with SkylineEngine() as engine:
        handle = engine.attach(dataset)
        server = SkylineServer(engine, handle).start()
        host, port = server.address
        server.shutdown()
        with pytest.raises((ConnectionError, OSError)):
            with SkylineClient(host, port, connect_timeout=2.0) as client:
                client.ping()


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------


def test_net_runlog_events_and_counters(dataset, slow_dataset, tmp_path):
    log_path = tmp_path / "net.jsonl"
    registry = obs_metrics.MetricsRegistry()
    with obs_metrics.use_registry(registry):
        with obs_runlog.use_runlog(obs_runlog.RunLog(log_path)):
            with SkylineEngine(execution="workers=2") as engine:
                handle = engine.attach(slow_dataset)
                with SkylineServer(engine, handle, max_inflight=1) as server:
                    host, port = server.address
                    with SkylineClient(host, port) as client:
                        client.query(gamma=0.6, algorithm="LO")
                        with pytest.raises(RequestTimeout):
                            client.query(
                                gamma=0.5, algorithm="NL", deadline_ms=50
                            )
    events = obs_runlog.read_events(log_path)
    names = [event["event"] for event in events]
    assert "net_accept" in names
    assert "net_request" in names
    assert "net_response" in names
    assert "net_timeout" in names
    responses = [e for e in events if e["event"] == "net_response"]
    assert {"ok", "timeout"} <= {e["status"] for e in responses}
    assert registry.get("net_accepts_total") is not None
    assert registry.get("net_requests_total") is not None
    timeout_counter = registry.get("net_timeouts_total")
    assert timeout_counter is not None and timeout_counter.value() >= 1


# ----------------------------------------------------------------------
# spec validation (shared with `repro serve --batch`)
# ----------------------------------------------------------------------


def test_validate_spec_accepts_fraction_strings():
    kwargs = validate_spec({"gamma": "2/3", "dims": [0, 1]})
    assert str(kwargs["gamma"]) == "2/3"
    assert kwargs["dims"] == [0, 1]


@pytest.mark.parametrize(
    "spec, fragment",
    [
        ([1, 2], "must be a JSON object"),
        ({"gamma": "abc"}, "gamma"),
        ({"gamma": True}, "gamma"),
        ({"dims": "0,1"}, "dims"),
        ({"dims": [0, "x"]}, "dims"),
        ({"algorithm": 7}, "algorithm"),
        ({"execution": 4}, "execution"),
        ({"explain": "yes"}, "explain"),
        ({"gama": 0.6}, "did you mean 'gamma'"),
    ],
)
def test_validate_spec_rejections(spec, fragment):
    with pytest.raises(SpecError) as excinfo:
        validate_spec(spec)
    assert fragment in str(excinfo.value)
