"""Tests for skyline layers and the package surface."""

import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.core.layers import skyline_layers
from repro.data.movies import figure1_directors_dataset
from tests.conftest import exact_aggregate_skyline, random_grouped_dataset


class TestSkylineLayers:
    def test_movie_layers(self):
        layers = skyline_layers(figure1_directors_dataset(), algorithm="NL")
        assert sorted(layers.layers[0]) == [
            "Coppola", "Jackson", "Kershner", "Tarantino",
        ]
        assert sorted(layers.layers[1]) == ["Cameron", "Nolan"]
        assert layers.layers[2] == ["Wiseau"]
        assert layers.cycle_layer is None
        assert layers.layer_of("Wiseau") == 3
        assert len(layers) == 3

    def test_first_layer_is_the_skyline(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=7, max_group_size=4)
        layers = skyline_layers(dataset, algorithm="NL", prune_policy="safe")
        assert set(layers.layers[0]) == exact_aggregate_skyline(dataset, 0.5)

    def test_layers_partition_all_groups(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=8, max_group_size=4)
        layers = skyline_layers(dataset, algorithm="NL")
        ranking = layers.ranking()
        assert set(ranking) == set(dataset.keys())
        total = sum(len(layer) for layer in layers)
        assert total == len(dataset)

    def test_cycle_fallback_peels_by_degree(self):
        cycle = {
            "harbor": [[52, 4.1], [55, 5.0], [49, 3.2]],
            "summit": [[60, 6.5], [23, -4.0], [58, 6.0]],
            "prairie": [[41, 0.5], [43, 0.8], [61, 7.0]],
            "gorge": [[10, -9.0]],
        }
        layers = skyline_layers(cycle, algorithm="NL")
        assert layers.cycle_layer == 1
        # least-dominated first (summit's worst dominator is 5/9), strictly
        # dominated last.
        assert layers.layers[0] == ["summit"]
        assert layers.layers[-1] == ["gorge"]

    def test_max_layers_truncation(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=8, max_group_size=4)
        layers = skyline_layers(dataset, algorithm="NL", max_layers=1)
        assert len(layers) <= 2
        assert sum(len(layer) for layer in layers) == len(dataset)

    def test_layer_of_unknown(self):
        layers = skyline_layers({"a": [[1.0]]}, algorithm="NL")
        with pytest.raises(KeyError):
            layers.layer_of("zzz")

    def test_directions(self):
        layers = skyline_layers(
            {"cheap": [[1.0]], "mid": [[5.0]], "pricey": [[9.0]]},
            algorithm="NL",
            directions=["min"],
        )
        assert layers.layers == [["cheap"], ["mid"], ["pricey"]]


class TestPackageSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_core_all_resolves(self):
        from repro import core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_subpackage_alls_resolve(self):
        from repro import data, harness, index, query, relational

        for module in (data, harness, index, query, relational):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_module_entrypoint_help(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 0
        assert "aggskyline" in completed.stdout
        for command in ("query", "skyline", "rank", "generate", "nba",
                        "experiment", "compare", "stats", "shell"):
            assert command in completed.stdout


class TestCliShellCommand:
    def test_shell_reads_stdin(self, tmp_path, monkeypatch, capsys):
        import io

        from repro.cli import main

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("CREATE TABLE t (x);\n.tables\n.quit\n"),
        )
        assert main(["shell"]) == 0
        out = capsys.readouterr().out
        assert "created table t" in out

    def test_shell_preloads_tables(self, tmp_path, monkeypatch, capsys):
        import io

        from repro.cli import main
        from repro.relational.csvio import save_csv
        from repro.relational.table import Table

        save_csv(
            Table(["g", "v"], [("a", 1), ("b", 2)]), tmp_path / "data.csv"
        )
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("SELECT * FROM data;\n.quit\n")
        )
        assert main(["shell", "--table", f"data={tmp_path / 'data.csv'}"]) == 0
        assert "b" in capsys.readouterr().out

    def test_shell_bad_binding(self, monkeypatch, capsys):
        from repro.cli import main

        assert main(["shell", "--table", "broken"]) == 2
        assert "NAME=CSV" in capsys.readouterr().err
