"""Tests for planning and executing queries end to end."""

import pytest

from repro.query.executor import execute
from repro.query.planner import PlanError
from repro.relational.table import Table


@pytest.fixture
def catalog():
    movies = Table(
        ["title", "year", "director", "pop", "qual"],
        [
            ("Avatar", 2009, "Cameron", 404, 8.0),
            ("Batman Begins", 2005, "Nolan", 371, 8.3),
            ("Kill Bill", 2003, "Tarantino", 313, 8.2),
            ("Pulp Fiction", 1994, "Tarantino", 557, 9.0),
            ("The Room", 2003, "Wiseau", 10, 3.2),
        ],
    )
    return {"movies": movies}


class TestPlainSelect:
    def test_select_star(self, catalog):
        result = execute("SELECT * FROM movies", catalog)
        assert len(result) == 5
        assert result.table.columns == (
            "title", "year", "director", "pop", "qual"
        )

    def test_projection_and_alias(self, catalog):
        result = execute("SELECT title AS t, pop FROM movies", catalog)
        assert result.table.columns == ("t", "pop")

    def test_where(self, catalog):
        result = execute(
            "SELECT title FROM movies WHERE year >= 2003 AND pop > 100",
            catalog,
        )
        titles = {r[0] for r in result.table.rows}
        assert titles == {"Avatar", "Batman Begins", "Kill Bill"}

    def test_where_string(self, catalog):
        result = execute(
            "SELECT title FROM movies WHERE director = 'Tarantino'",
            catalog,
        )
        assert len(result) == 2

    def test_order_limit(self, catalog):
        result = execute(
            "SELECT title FROM movies ORDER BY pop DESC LIMIT 2", catalog
        )
        assert [r[0] for r in result.table.rows] == [
            "Pulp Fiction", "Avatar",
        ]

    def test_unknown_table(self, catalog):
        with pytest.raises(PlanError, match="unknown table"):
            execute("SELECT * FROM nothing", catalog)

    def test_unknown_column(self, catalog):
        with pytest.raises(PlanError, match="unknown column"):
            execute("SELECT rating FROM movies", catalog)

    def test_iteration_and_len(self, catalog):
        result = execute("SELECT title FROM movies LIMIT 3", catalog)
        assert len(list(result)) == 3
        assert "title" in result.to_text()


class TestGroupByQueries:
    def test_aggregates(self, catalog):
        result = execute(
            "SELECT director, count(*) AS movies, max(pop)"
            " FROM movies GROUP BY director ORDER BY director",
            catalog,
        )
        rows = {r[0]: (r[1], r[2]) for r in result.table.rows}
        assert rows["Tarantino"] == (2, 557)

    def test_having(self, catalog):
        result = execute(
            "SELECT director FROM movies GROUP BY director"
            " HAVING count(*) >= 2",
            catalog,
        )
        assert [r[0] for r in result.table.rows] == ["Tarantino"]

    def test_having_requires_group_by(self, catalog):
        with pytest.raises(PlanError, match="HAVING requires"):
            execute("SELECT title FROM movies HAVING count(*) > 1", catalog)

    def test_selected_column_must_be_grouped(self, catalog):
        with pytest.raises(PlanError, match="GROUP BY"):
            execute("SELECT title FROM movies GROUP BY director", catalog)

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(PlanError, match="not allowed in WHERE"):
            execute(
                "SELECT title FROM movies WHERE max(pop) > 1", catalog
            )

    def test_having_non_grouped_column_rejected(self, catalog):
        with pytest.raises(PlanError, match="HAVING may only"):
            execute(
                "SELECT director FROM movies GROUP BY director"
                " HAVING year > 2000",
                catalog,
            )


class TestRecordSkylineQueries:
    def test_skyline(self, catalog):
        result = execute(
            "SELECT title FROM movies SKYLINE OF pop MAX, qual MAX",
            catalog,
        )
        assert {r[0] for r in result.table.rows} == {"Pulp Fiction"}

    def test_skyline_min(self, catalog):
        result = execute(
            "SELECT title FROM movies SKYLINE OF year MIN, qual MAX",
            catalog,
        )
        titles = {r[0] for r in result.table.rows}
        assert "Pulp Fiction" in titles

    def test_skyline_after_where(self, catalog):
        result = execute(
            "SELECT title FROM movies WHERE year >= 2003"
            " SKYLINE OF pop MAX, qual MAX",
            catalog,
        )
        titles = {r[0] for r in result.table.rows}
        assert titles == {"Avatar", "Batman Begins"}

    def test_empty_input(self, catalog):
        result = execute(
            "SELECT title FROM movies WHERE year > 3000"
            " SKYLINE OF pop MAX",
            catalog,
        )
        assert len(result) == 0


class TestAggregateSkylineQueries:
    def test_basic(self, catalog):
        result = execute(
            "SELECT director FROM movies GROUP BY director"
            " SKYLINE OF pop MAX, qual MAX",
            catalog,
        )
        directors = {r[0] for r in result.table.rows}
        assert directors == {"Cameron", "Nolan", "Tarantino"}

    def test_select_star_yields_group_columns(self, catalog):
        result = execute(
            "SELECT * FROM movies GROUP BY director"
            " SKYLINE OF pop MAX, qual MAX",
            catalog,
        )
        assert result.table.columns == ("director",)

    def test_aggregates_over_survivors(self, catalog):
        result = execute(
            "SELECT director, count(*) AS n FROM movies GROUP BY director"
            " SKYLINE OF pop MAX, qual MAX ORDER BY director",
            catalog,
        )
        rows = dict(result.table.rows)
        assert rows == {"Cameron": 1, "Nolan": 1, "Tarantino": 2}

    def test_gamma_and_algorithm(self, catalog):
        result = execute(
            "SELECT director FROM movies GROUP BY director"
            " SKYLINE OF pop MAX, qual MAX WITH GAMMA 1.0"
            " USING ALGORITHM NL",
            catalog,
        )
        assert result.skyline_result is not None
        assert result.skyline_result.gamma == 1.0
        assert result.skyline_result.stats.algorithm == "NL"

    def test_having_filters_before_skyline(self, catalog):
        # Restricting to directors with >= 2 movies leaves only Tarantino.
        result = execute(
            "SELECT director FROM movies GROUP BY director"
            " HAVING count(*) >= 2 SKYLINE OF pop MAX, qual MAX",
            catalog,
        )
        assert [r[0] for r in result.table.rows] == ["Tarantino"]

    def test_having_eliminating_everything(self, catalog):
        result = execute(
            "SELECT director FROM movies GROUP BY director"
            " HAVING count(*) >= 10 SKYLINE OF pop MAX",
            catalog,
        )
        assert len(result) == 0

    def test_where_empty_then_skyline(self, catalog):
        result = execute(
            "SELECT director FROM movies WHERE year > 3000"
            " GROUP BY director SKYLINE OF pop MAX",
            catalog,
        )
        assert len(result) == 0

    def test_algorithm_options_forwarded(self, catalog):
        result = execute(
            "SELECT director FROM movies GROUP BY director"
            " SKYLINE OF pop MAX, qual MAX USING ALGORITHM TR",
            catalog,
            prune_policy="safe",
        )
        directors = {r[0] for r in result.table.rows}
        assert directors == {"Cameron", "Nolan", "Tarantino"}

    def test_multi_column_grouping(self, catalog):
        result = execute(
            "SELECT director, year FROM movies GROUP BY director, year"
            " SKYLINE OF pop MAX, qual MAX",
            catalog,
        )
        assert ("Tarantino", 1994) in result.table.rows

    def test_gamma_without_skyline_rejected(self, catalog):
        with pytest.raises(PlanError, match="WITH GAMMA"):
            execute(
                "SELECT director FROM movies GROUP BY director"
                " WITH GAMMA 0.5",
                catalog,
            )

    def test_algorithm_without_group_by_rejected(self, catalog):
        with pytest.raises(PlanError, match="USING ALGORITHM"):
            execute(
                "SELECT title FROM movies SKYLINE OF pop MAX"
                " USING ALGORITHM NL",
                catalog,
            )


class TestDialectExtensions:
    def test_between(self, catalog):
        result = execute(
            "SELECT title FROM movies WHERE year BETWEEN 2000 AND 2006",
            catalog,
        )
        titles = {r[0] for r in result.table.rows}
        assert titles == {"Batman Begins", "Kill Bill", "The Room"}

    def test_in_list(self, catalog):
        result = execute(
            "SELECT title FROM movies"
            " WHERE director IN ('Tarantino', 'Wiseau')",
            catalog,
        )
        assert len(result) == 3

    def test_not_in(self, catalog):
        result = execute(
            "SELECT title FROM movies"
            " WHERE director NOT IN ('Tarantino', 'Wiseau')",
            catalog,
        )
        assert len(result) == 2

    def test_prune_policy_applied(self, catalog):
        result = execute(
            "SELECT director FROM movies GROUP BY director"
            " SKYLINE OF pop MAX, qual MAX USING ALGORITHM TR PRUNE SAFE",
            catalog,
        )
        assert result.skyline_result is not None
        directors = {r[0] for r in result.table.rows}
        assert directors == {"Cameron", "Nolan", "Tarantino"}

    def test_prune_without_skyline_rejected(self, catalog):
        from repro.query.parser import parse

        query = parse(
            "SELECT director FROM movies GROUP BY director"
            " SKYLINE OF pop MAX PRUNE SAFE"
        )
        query.skyline = []
        with pytest.raises(PlanError, match="PRUNE"):
            execute(query, catalog)


class TestWeightByClause:
    @pytest.fixture
    def games(self):
        return {
            "t": Table(
                ["grp", "score", "quality", "games"],
                [
                    ("mixed", 5.0, 5.0, 9),
                    ("mixed", 1.0, 1.0, 1),
                    ("steady", 3.0, 3.0, 1),
                ],
            )
        }

    def test_weight_by_changes_verdict(self, games):
        unweighted = execute(
            "SELECT grp FROM t GROUP BY grp"
            " SKYLINE OF score MAX, quality MAX",
            games,
        )
        weighted = execute(
            "SELECT grp FROM t GROUP BY grp"
            " SKYLINE OF score MAX, quality MAX WEIGHT BY games",
            games,
        )
        assert {r[0] for r in unweighted.table.rows} == {"mixed", "steady"}
        assert {r[0] for r in weighted.table.rows} == {"mixed"}
        assert weighted.skyline_result.stats.algorithm == "WNL"

    def test_weight_by_with_gamma(self, games):
        result = execute(
            "SELECT grp FROM t GROUP BY grp"
            " SKYLINE OF score MAX WEIGHT BY games WITH GAMMA 0.95",
            games,
        )
        assert {r[0] for r in result.table.rows} == {"mixed", "steady"}

    def test_weight_requires_aggregate_skyline(self, games):
        with pytest.raises(PlanError, match="WEIGHT BY"):
            execute(
                "SELECT grp FROM t SKYLINE OF score MAX WEIGHT BY games",
                games,
            )

    def test_weight_unknown_column(self, games):
        with pytest.raises(PlanError, match="unknown column"):
            execute(
                "SELECT grp FROM t GROUP BY grp"
                " SKYLINE OF score MAX WEIGHT BY minutes",
                games,
            )

    def test_weight_conflicts_with_algorithm(self, games):
        with pytest.raises(PlanError, match="weighted engine"):
            execute(
                "SELECT grp FROM t GROUP BY grp"
                " SKYLINE OF score MAX WEIGHT BY games USING ALGORITHM LO",
                games,
            )

    def test_non_integer_weights_rejected(self):
        catalog = {
            "t": Table(
                ["grp", "score", "w"],
                [("a", 1.0, 1.5), ("b", 2.0, 1)],
            )
        }
        with pytest.raises(PlanError, match="integer"):
            execute(
                "SELECT grp FROM t GROUP BY grp"
                " SKYLINE OF score MAX WEIGHT BY w",
                catalog,
            )


class TestExecutorTracing:
    """Plan-stage spans recorded by query/executor.py."""

    def _traced(self, sql, catalog):
        from repro.obs.tracing import InMemorySink, Tracer, use_tracer

        with use_tracer(Tracer(InMemorySink())):
            return execute(sql, catalog)

    def test_trace_none_under_noop_tracer(self, catalog):
        result = execute("SELECT * FROM movies", catalog)
        assert result.trace is None

    def test_plain_select_span_nesting(self, catalog):
        result = self._traced(
            "SELECT title FROM movies WHERE year > 2000", catalog
        )
        trace = result.trace
        assert trace is not None
        assert trace.name == "query.execute"
        assert trace.attributes["table"] == "movies"
        names = [c.name for c in trace.children]
        assert names[:2] == ["query.plan", "query.scan"]
        scan = trace.children[1]
        assert scan.attributes["rows_in"] == 5
        assert scan.attributes["rows_out"] == 4

    def test_skyline_query_span_nesting(self, catalog):
        result = self._traced(
            "SELECT director FROM movies GROUP BY director"
            " SKYLINE OF pop MAX, qual MAX USING ALGORITHM LO",
            catalog,
        )
        names = [c.name for c in result.trace.children]
        assert "query.group_by" in names
        assert "query.skyline" in names
        skyline = next(
            c for c in result.trace.children if c.name == "query.skyline"
        )
        assert skyline.attributes["algorithm"] == "LO"
        assert skyline.attributes["survivors"] == len(result)
        # The algorithm's own root span nests under the executor's.
        assert any(
            g.name == "skyline.compute" for g in skyline.children
        )

    def test_group_by_query_spans(self, catalog):
        result = self._traced(
            "SELECT director, count(*) AS n FROM movies"
            " GROUP BY director ORDER BY n DESC",
            catalog,
        )
        names = [c.name for c in result.trace.children]
        assert "query.group_by" in names
        assert "query.order_limit" in names
