"""Tests for the incrementally maintained aggregate skyline."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import make_algorithm
from repro.core.incremental import IncrementalAggregateSkyline
from tests.conftest import exact_aggregate_skyline


class TestBasics:
    def test_empty(self):
        sky = IncrementalAggregateSkyline(dimensions=2)
        assert len(sky) == 0
        assert sky.skyline() == []
        assert sky.to_dataset() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            IncrementalAggregateSkyline(dimensions=0)

    def test_single_group(self):
        sky = IncrementalAggregateSkyline(dimensions=2)
        sky.insert("a", (1.0, 2.0))
        assert sky.skyline() == ["a"]
        assert sky.group_size("a") == 1
        assert sky.total_records == 1

    def test_insert_updates_result(self):
        sky = IncrementalAggregateSkyline(dimensions=2)
        sky.insert("tarantino", (557, 9.0))
        sky.insert("wiseau", (10, 3.2))
        assert sky.skyline() == ["tarantino"]
        # A late masterpiece rescues Wiseau.
        sky.insert("wiseau", (600, 9.5))
        assert set(sky.skyline()) == {"tarantino", "wiseau"}

    def test_delete_restores_previous_state(self):
        sky = IncrementalAggregateSkyline(dimensions=2)
        sky.insert("a", (5, 5))
        sky.insert("b", (1, 1))
        sky.insert("b", (9, 9))
        assert set(sky.skyline()) == {"a", "b"}
        sky.delete("b", (9, 9))
        assert sky.skyline() == ["a"]

    def test_delete_last_record_drops_group(self):
        sky = IncrementalAggregateSkyline(dimensions=1)
        sky.insert("solo", (1.0,))
        sky.delete("solo", (1.0,))
        assert len(sky) == 0

    def test_delete_missing(self):
        sky = IncrementalAggregateSkyline(dimensions=1)
        sky.insert("a", (1.0,))
        with pytest.raises(KeyError):
            sky.delete("b", (1.0,))
        with pytest.raises(ValueError):
            sky.delete("a", (2.0,))

    def test_drop_group(self):
        sky = IncrementalAggregateSkyline(dimensions=1)
        sky.insert("a", (1.0,))
        sky.insert("b", (2.0,))
        sky.drop_group("b")
        assert sky.skyline() == ["a"]
        with pytest.raises(KeyError):
            sky.drop_group("b")

    def test_duplicate_records_counted(self):
        sky = IncrementalAggregateSkyline(dimensions=1)
        sky.insert("a", (5.0,))
        sky.insert("a", (5.0,))
        sky.insert("b", (1.0,))
        assert sky.pair_count("a", "b") == 2
        sky.delete("a", (5.0,))
        assert sky.pair_count("a", "b") == 1

    def test_min_directions(self):
        sky = IncrementalAggregateSkyline(dimensions=1, directions=["min"])
        sky.insert("cheap", (1.0,))
        sky.insert("pricey", (9.0,))
        assert sky.skyline() == ["cheap"]


class TestAgainstBatchOracle:
    def test_probability_matches_batch(self):
        sky = IncrementalAggregateSkyline(dimensions=2)
        sky.insert_many("t", [(557, 9.0), (313, 8.2)])
        sky.insert_many("w", [(10, 3.2), (1, 3.0)])
        assert sky.probability("t", "w") == 1
        assert sky.probability("w", "t") == 0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),   # group
                st.integers(min_value=0, max_value=4),   # x
                st.integers(min_value=0, max_value=4),   # y
            ),
            min_size=1,
            max_size=20,
        ),
        st.sampled_from([0.5, 0.75, 1.0]),
    )
    def test_streaming_inserts_match_batch(self, stream, gamma):
        sky = IncrementalAggregateSkyline(dimensions=2)
        for group, x, y in stream:
            sky.insert(f"g{group}", (float(x), float(y)))
        dataset = sky.to_dataset()
        assert dataset is not None
        expected = exact_aggregate_skyline(dataset, gamma)
        assert set(sky.skyline(gamma)) == expected

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1_000_000))
    def test_insert_then_delete_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        sky = IncrementalAggregateSkyline(dimensions=2)
        base = [
            (f"g{rng.integers(0, 3)}", (float(rng.integers(0, 4)),
                                        float(rng.integers(0, 4))))
            for _ in range(10)
        ]
        for key, record in base:
            sky.insert(key, record)
        reference = set(sky.skyline())
        extra = [
            (f"g{rng.integers(0, 3)}", (float(rng.integers(0, 4)),
                                        float(rng.integers(0, 4))))
            for _ in range(5)
        ]
        for key, record in extra:
            sky.insert(key, record)
        for key, record in reversed(extra):
            sky.delete(key, record)
        assert set(sky.skyline()) == reference

    def test_profile_matches_algorithms(self):
        sky = IncrementalAggregateSkyline(dimensions=2)
        sky.insert_many("best", [(10, 10)])
        sky.insert_many("half", [(5, 20), (5, 5)])
        sky.insert_many("worst", [(1, 1)])
        profile = sky.profile()
        assert profile.minimal_gamma("worst") is None
        assert profile.degree("half") == Fraction(1, 2)

        dataset = sky.to_dataset()
        nl = make_algorithm("NL", 0.5).compute(dataset)
        assert set(profile.skyline_at(0.5)) == nl.as_set()

    def test_to_dataset_roundtrip_with_min_directions(self):
        sky = IncrementalAggregateSkyline(dimensions=2, directions=["min", "max"])
        sky.insert("a", (2.0, 3.0))
        dataset = sky.to_dataset()
        assert dataset.original_values("a").tolist() == [[2.0, 3.0]]
