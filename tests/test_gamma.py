"""Tests for γ-dominance machinery (Definition 3, Proposition 5 tooling)."""

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gamma import (
    DominanceMatrix,
    GammaThresholds,
    as_fraction,
    count_dominating_pairs,
    dominance_holds,
    dominance_probability,
    gamma_bar,
    gamma_dominates,
)
from repro.core.groups import Group


class TestAsFraction:
    def test_float_exact(self):
        assert as_fraction(0.5) == Fraction(1, 2)
        assert as_fraction(0.75) == Fraction(3, 4)

    def test_int(self):
        assert as_fraction(1) == Fraction(1)

    def test_fraction_passthrough(self):
        f = Fraction(2, 3)
        assert as_fraction(f) is f

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("nan"))

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_fraction("0.5")


class TestGammaBar:
    def test_formula(self):
        # gamma_bar = 1 - sqrt(1 - gamma) / 2
        assert float(gamma_bar(0.5)) == pytest.approx(
            1 - math.sqrt(0.5) / 2
        )

    def test_at_one(self):
        assert gamma_bar(1.0) == Fraction(1)

    def test_monotone(self):
        previous = None
        for gamma in (0.5, 0.6, 0.7, 0.8, 0.9, 0.99):
            bar = float(gamma_bar(gamma))
            if previous is not None:
                assert bar > previous
            previous = bar

    def test_above_gamma_only_up_to_three_quarters(self):
        # gamma_bar >= gamma iff gamma <= .75 (the bound is quadratic);
        # GammaThresholds therefore clamps strong to max(gamma, gamma_bar).
        assert float(gamma_bar(0.6)) > 0.6
        assert gamma_bar(0.75) == Fraction(3, 4)
        assert float(gamma_bar(0.9)) < 0.9

    def test_strong_threshold_clamped(self):
        thresholds = GammaThresholds(0.9)
        assert thresholds.strong >= thresholds.gamma

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            gamma_bar(1.5)
        with pytest.raises(ValueError):
            gamma_bar(-0.1)


class TestThresholds:
    def test_rejects_unsound_gamma(self):
        with pytest.raises(ValueError):
            GammaThresholds(0.4)

    def test_allow_unsafe(self):
        thresholds = GammaThresholds(0.4, allow_unsafe=True)
        # Floats convert exactly (binary), so compare as float.
        assert float(thresholds.gamma) == 0.4

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            GammaThresholds(1.5)

    def test_exceeds_strict_inequality(self):
        thresholds = GammaThresholds(0.5)
        # p exactly gamma must NOT dominate (Definition 3 uses >).
        assert not thresholds.exceeds(1, 2)
        assert thresholds.exceeds(2, 3)

    def test_exceeds_p_equal_one(self):
        thresholds = GammaThresholds(1.0)
        assert thresholds.exceeds(4, 4)       # p = 1 clause
        assert not thresholds.exceeds(3, 4)

    def test_exceeds_strong(self):
        thresholds = GammaThresholds(0.5)
        # strong threshold is about .646 for gamma = .5
        assert thresholds.exceeds_strong(2, 3)
        assert not thresholds.exceeds_strong(3, 5)


class TestDominanceHolds:
    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            dominance_holds(0, 0, Fraction(1, 2))

    @given(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=1, max_value=30),
        st.fractions(min_value=0, max_value=1),
    )
    def test_matches_direct_fraction_comparison(self, count, total, threshold):
        if count > total:
            count = total
        expected = (
            Fraction(count, total) == 1 or Fraction(count, total) > threshold
        )
        assert dominance_holds(count, total, threshold) == expected


def naive_pair_count(s_values, r_values):
    count = 0
    for s in s_values:
        for r in r_values:
            if all(a >= b for a, b in zip(s, r)) and any(
                a > b for a, b in zip(s, r)
            ):
                count += 1
    return count


class TestPairCounting:
    def test_known_example(self):
        s = np.array([[2.0, 2.0], [0.0, 0.0]])
        r = np.array([[1.0, 1.0]])
        assert count_dominating_pairs(s, r) == 1

    def test_empty(self):
        assert count_dominating_pairs(np.empty((0, 2)), np.ones((3, 2))) == 0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            count_dominating_pairs(np.ones((1, 2)), np.ones((1, 3)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            count_dominating_pairs(np.ones(3), np.ones((1, 3)))

    @settings(max_examples=50)
    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_matches_naive_oracle(self, n_s, n_r, d, seed):
        rng = np.random.default_rng(seed)
        s = rng.integers(0, 4, size=(n_s, d)).astype(float)
        r = rng.integers(0, 4, size=(n_r, d)).astype(float)
        assert count_dominating_pairs(s, r) == naive_pair_count(s, r)

    def test_blocking_does_not_change_result(self, rng):
        s = rng.integers(0, 5, size=(37, 3)).astype(float)
        r = rng.integers(0, 5, size=(23, 3)).astype(float)
        full = count_dominating_pairs(s, r)
        for block in (1, 7, 64, 10_000):
            assert count_dominating_pairs(s, r, block_size=block) == full


class TestDominanceProbability:
    def test_total_domination(self):
        p = dominance_probability(
            np.array([[5.0, 5.0]]), np.array([[1.0, 1.0], [2.0, 2.0]])
        )
        assert p == 1

    def test_accepts_groups(self):
        s = Group("s", np.array([[3.0, 3.0]]))
        r = Group("r", np.array([[1.0, 1.0], [5.0, 5.0]]))
        assert dominance_probability(s, r) == Fraction(1, 2)

    def test_gamma_dominates_ties_excluded(self):
        s = np.array([[3.0, 3.0]])
        r = np.array([[1.0, 1.0], [5.0, 5.0]])
        # p = 1/2 exactly: not > .5, so no dominance at gamma = .5
        assert not gamma_dominates(s, r, 0.5)

    def test_gamma_dominates_p_one_clause_at_gamma_one(self):
        s = np.array([[3.0, 3.0]])
        r = np.array([[1.0, 1.0]])
        assert gamma_dominates(s, r, 1.0)

    def test_gamma_dominates_unsafe_gate(self):
        s = np.array([[3.0, 3.0]])
        r = np.array([[1.0, 1.0], [5.0, 5.0], [6.0, 6.0]])
        with pytest.raises(ValueError):
            gamma_dominates(s, r, 0.3)
        assert gamma_dominates(s, r, 0.3, allow_unsafe=True)


class TestDominanceMatrix:
    def test_between_matches_probability(self, rng):
        s = rng.integers(0, 4, size=(5, 2)).astype(float)
        r = rng.integers(0, 4, size=(4, 2)).astype(float)
        matrix = DominanceMatrix.between(s, r)
        assert matrix.shape == (5, 4)
        assert matrix.pos() == dominance_probability(s, r)

    def test_paper_proof_example(self):
        # The RS and ST matrices from the Proposition-5 proof.
        rs = DominanceMatrix(
            np.array([[1, 0], [1, 1], [1, 0], [1, 0]])
        )
        st_matrix = DominanceMatrix(np.array([[1, 0, 0], [1, 1, 1]]))
        rt = rs.compose(st_matrix)
        assert rs.pos() == Fraction(5, 8)
        assert st_matrix.pos() == Fraction(2, 3)
        assert rt.pos() == Fraction(1, 2)

    def test_compose_dimension_check(self):
        a = DominanceMatrix(np.ones((2, 3)))
        b = DominanceMatrix(np.ones((2, 3)))
        with pytest.raises(ValueError):
            a.compose(b)

    def test_compose_is_domination_matrix_of_composition(self, rng):
        """Product entries correspond to real record dominance (via S)."""
        r = rng.integers(0, 4, size=(4, 2)).astype(float)
        s = rng.integers(0, 4, size=(3, 2)).astype(float)
        t = rng.integers(0, 4, size=(5, 2)).astype(float)
        rs = DominanceMatrix.between(r, s)
        st_matrix = DominanceMatrix.between(s, t)
        rt_direct = DominanceMatrix.between(r, t)
        composed = rs.compose(st_matrix)
        # Every composed entry must be a true dominance (transitivity).
        assert np.all(~composed.matrix | rt_direct.matrix)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            DominanceMatrix(np.ones(3))

    def test_pos_empty_rejected(self):
        with pytest.raises(ValueError):
            DominanceMatrix(np.ones((0, 2))).pos()
