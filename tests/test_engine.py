"""The persistent engine's contract (see ``docs/engine.md``).

* **Warm parity matrix** — the 2nd and 3rd queries on a reused pool are
  bit-identical — skyline *and* every ``AlgorithmStats`` counter — to a
  fresh ``aggregate_skyline()`` call, for NL/IN/LO/PAR, worker counts 2
  and 4, fork and spawn, with stable worker pids across queries.
* **Surviving-pool reuse** — an injected single-worker crash respawns
  only the dead slot: the other workers keep their pids and pinned
  data, the recovering query and everything after it still match the
  cold path exactly.
* **Lifecycle** — deterministic close (idempotent, context manager,
  ``EngineClosedError`` afterwards), content-fingerprint attach dedup,
  resident ``dims`` projections, batching, the partitioned entry
  point's kwargs migration, and the public re-exports.

Shared-memory leak checks for engine-owned arenas live with the other
shm tests in ``tests/test_parallel_indexed.py``.
"""

from __future__ import annotations

import dataclasses
import signal
import warnings

import pytest

from repro import (
    DatasetHandle,
    EngineClosedError,
    EngineStats,
    ExecutionConfig,
    SkylineEngine,
    aggregate_skyline,
    partitioned_aggregate_skyline,
)
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.parallel import FaultSpec, WorkerCrashError

pytestmark = pytest.mark.timeout(300)

START_METHODS = ("fork", "spawn")
WORKER_COUNTS = (2, 4)
ALGORITHMS = ("NL", "IN", "LO", "PAR")
GAMMA = 0.5


@pytest.fixture(autouse=True)
def _deadlock_guard():
    """A wedged resident pool fails the test instead of hanging the run."""
    if not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):  # pragma: no cover - only on deadlock
        raise RuntimeError("engine test exceeded the 240s deadlock guard")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(240)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _require_start_method(name: str) -> None:
    if name == "fork" and not hasattr(signal, "SIGALRM"):
        pytest.skip("fork start method requires POSIX")


@pytest.fixture(scope="module")
def dataset():
    return generate_grouped(
        SyntheticSpec(
            n_records=900,
            avg_group_size=6,
            dimensions=3,
            distribution="anticorrelated",
            group_spread=0.4,
            seed=19,
        )
    )


def stats_key(result):
    """Everything the determinism contract covers except wall clock."""
    payload = dataclasses.asdict(result.stats)
    payload.pop("elapsed_seconds")
    return payload


def _cold(dataset, algorithm, execution):
    if algorithm == "NL":
        # NL rejects execution= (serial-only); the engine runs it cold too.
        return aggregate_skyline(dataset, gamma=GAMMA, algorithm="NL")
    return aggregate_skyline(
        dataset, gamma=GAMMA, algorithm=algorithm, execution=execution
    )


@pytest.fixture(scope="module")
def cold_results(dataset):
    """Fresh one-shot baselines, one per (algorithm, worker count)."""
    baselines = {}
    for workers in WORKER_COUNTS:
        execution = ExecutionConfig(workers=workers, scheduler="stealing")
        for algorithm in ALGORITHMS:
            baselines[(algorithm, workers)] = _cold(
                dataset, algorithm, execution
            )
    return baselines


# ----------------------------------------------------------------------
# warm parity matrix
# ----------------------------------------------------------------------


@pytest.mark.parametrize("start_method", START_METHODS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_warm_parity_matrix(dataset, cold_results, start_method, workers):
    _require_start_method(start_method)
    execution = ExecutionConfig(workers=workers, scheduler="stealing")
    with SkylineEngine(execution, start_method=start_method) as engine:
        handle = engine.attach(dataset)
        pids = list(engine.worker_pids)
        assert len(pids) == workers
        for round_number in (1, 2, 3):
            for algorithm in ALGORITHMS:
                result = engine.query(handle, gamma=GAMMA, algorithm=algorithm)
                cold = cold_results[(algorithm, workers)]
                assert result.keys == cold.keys, (
                    algorithm, workers, start_method, round_number,
                )
                assert stats_key(result) == stats_key(cold), (
                    algorithm, workers, start_method, round_number,
                )
        # The whole matrix ran on the same resident workers.
        assert engine.worker_pids == pids
        assert engine.pool.total_respawns == 0
        expected_warm = 3 * len([a for a in ALGORITHMS if a != "NL"])
        assert engine.stats.warm_queries == expected_warm
        assert engine.stats.cold_queries == 3  # the NL rounds


def test_warm_results_match_across_worker_counts(cold_results):
    """Sanity for the fixture itself: the deterministic two-phase /
    independent-candidate contracts make the baselines worker-agnostic."""
    for algorithm in ALGORITHMS:
        a = cold_results[(algorithm, 2)]
        b = cold_results[(algorithm, 4)]
        assert a.keys == b.keys
        assert stats_key(a) == stats_key(b)


# ----------------------------------------------------------------------
# surviving-pool reuse under injected crashes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("start_method", START_METHODS)
def test_crash_respawns_only_dead_slot(dataset, cold_results, start_method):
    _require_start_method(start_method)
    execution = ExecutionConfig(
        workers=3, scheduler="stealing", on_failure="retry", max_retries=2
    )
    with SkylineEngine(
        execution,
        start_method=start_method,
        faults=FaultSpec("crash", at_chunk=0),  # one SIGKILL, max_fires=1
    ) as engine:
        handle = engine.attach(dataset)
        pids_before = list(engine.worker_pids)
        result = engine.query(handle, gamma=GAMMA, algorithm="PAR")
        cold = cold_results[("PAR", 2)]
        assert result.keys == cold.keys
        assert stats_key(result) == stats_key(cold)

        pids_after = list(engine.worker_pids)
        assert engine.pool.total_respawns == 1
        survivors = set(pids_before) & set(pids_after)
        assert len(survivors) == len(pids_before) - 1, (
            "exactly one slot must have been replaced"
        )

        # The repaired pool keeps serving every algorithm bit-identically,
        # with no further respawns and stable pids.
        for algorithm in ALGORITHMS:
            result = engine.query(handle, gamma=GAMMA, algorithm=algorithm)
            cold = cold_results[(algorithm, 2)]
            assert result.keys == cold.keys
            assert stats_key(result) == stats_key(cold)
        assert engine.worker_pids == pids_after
        assert engine.pool.total_respawns == 1
        assert engine.stats.slot_respawns == 1


def test_on_failure_raise_fails_fast_then_repairs(dataset, cold_results):
    """The default policy surfaces the crash; the pool heals lazily."""
    execution = ExecutionConfig(workers=2, on_failure="raise")
    with SkylineEngine(
        execution, faults=FaultSpec("crash", at_chunk=0)
    ) as engine:
        handle = engine.attach(dataset)
        with pytest.raises(WorkerCrashError):
            engine.query(handle, gamma=GAMMA, algorithm="PAR")
        # ensure_healthy() respawned the dead slot before this query; the
        # injected fault is spent (max_fires=1), so it completes cleanly.
        result = engine.query(handle, gamma=GAMMA, algorithm="PAR")
        cold = cold_results[("PAR", 2)]
        assert result.keys == cold.keys
        assert stats_key(result) == stats_key(cold)
        assert engine.pool.total_respawns == 1


# ----------------------------------------------------------------------
# lifecycle, handles, batching
# ----------------------------------------------------------------------


def test_close_is_idempotent_and_use_after_close_raises(dataset):
    engine = SkylineEngine(ExecutionConfig(workers=2))
    handle = engine.attach(dataset)
    engine.query(handle, gamma=GAMMA, algorithm="LO")
    engine.close()
    engine.close()
    assert engine.closed
    with pytest.raises(EngineClosedError):
        engine.query(handle, gamma=GAMMA)
    with pytest.raises(EngineClosedError):
        engine.attach(dataset)


def test_context_manager_closes(dataset):
    with SkylineEngine(ExecutionConfig(workers=2)) as engine:
        engine.query(dataset, gamma=GAMMA, algorithm="LO")
    assert engine.closed


def test_attach_is_content_deduplicated(dataset):
    with SkylineEngine(ExecutionConfig(workers=2)) as engine:
        first = engine.attach(dataset)
        second = engine.attach(dataset)
        assert first is second
        assert engine.stats.attaches == 1


def test_handle_from_another_engine_is_rejected(dataset):
    with SkylineEngine(ExecutionConfig(workers=2)) as one:
        handle = one.attach(dataset)
        with SkylineEngine(ExecutionConfig(workers=2)) as two:
            with pytest.raises(ValueError, match="different engine"):
                two.query(handle, gamma=GAMMA)


def test_dims_projection_is_resident_and_exact(dataset):
    dims = (0, 2)
    projected = {
        group.key: group.values[:, dims] for group in dataset.groups
    }
    cold = aggregate_skyline(
        projected,
        gamma=GAMMA,
        algorithm="LO",
        execution=ExecutionConfig(workers=2),
    )
    serial = aggregate_skyline(projected, gamma=GAMMA, algorithm="LO")
    assert cold.keys == serial.keys
    with SkylineEngine(ExecutionConfig(workers=2)) as engine:
        handle = engine.attach(dataset)
        attaches_before = engine.stats.attaches
        first = engine.query(handle, gamma=GAMMA, algorithm="LO", dims=dims)
        second = engine.query(handle, gamma=GAMMA, algorithm="LO", dims=dims)
        assert first.keys == cold.keys == second.keys
        assert stats_key(first) == stats_key(cold) == stats_key(second)
        # One projection attach, reused by the second query.
        assert engine.stats.attaches == attaches_before + 1
        with pytest.raises(ValueError, match="out of range"):
            engine.query(handle, gamma=GAMMA, dims=(0, 9))
        with pytest.raises(ValueError, match="repeat"):
            engine.query(handle, gamma=GAMMA, dims=(1, 1))


def test_submit_batch_matches_individual_queries(dataset):
    specs = [
        {"gamma": 0.5, "algorithm": "LO"},
        {"gamma": 0.6, "algorithm": "PAR"},
        {"gamma": 0.55, "algorithm": "IN"},
    ]
    with SkylineEngine(ExecutionConfig(workers=2)) as engine:
        handle = engine.attach(dataset)
        batch = engine.submit_batch(handle, specs)
        assert len(batch) == len(specs)
        assert engine.stats.batches == 1
        assert engine.stats.queries == len(specs)
        for spec, result in zip(specs, batch):
            cold = aggregate_skyline(
                dataset,
                gamma=spec["gamma"],
                algorithm=spec["algorithm"],
                execution=ExecutionConfig(workers=2),
            )
            assert result.keys == cold.keys
            assert stats_key(result) == stats_key(cold)


def test_engine_stats_shape(dataset):
    with SkylineEngine(ExecutionConfig(workers=2)) as engine:
        handle = engine.attach(dataset)
        engine.query(handle, gamma=GAMMA, algorithm="LO")
        engine.query(handle, gamma=GAMMA, algorithm="NL")
        stats = engine.stats
        assert isinstance(stats, EngineStats)
        assert stats.queries == 2
        assert stats.warm_queries == 1
        assert stats.cold_queries == 1
        assert stats.attaches == 1
        assert stats.slot_respawns == 0


def test_serial_engine_never_spawns_a_pool(dataset):
    with SkylineEngine(ExecutionConfig(workers=1)) as engine:
        result = engine.query(dataset, gamma=GAMMA, algorithm="LO")
        assert engine.pool is None
        assert engine.worker_pids == []
        cold = aggregate_skyline(dataset, gamma=GAMMA, algorithm="LO")
        assert result.keys == cold.keys


# ----------------------------------------------------------------------
# the one-shot wrapper and the kwargs migration
# ----------------------------------------------------------------------


def test_aggregate_skyline_is_ephemeral_engine_parity(dataset):
    """The wrapper must behave exactly like the legacy implementation:
    serial default for LO, explicit execution still honoured."""
    from repro.core.algorithms import make_algorithm

    direct = make_algorithm("LO", GAMMA).compute(dataset)
    wrapped = aggregate_skyline(dataset, gamma=GAMMA, algorithm="LO")
    assert wrapped.keys == direct.keys
    assert stats_key(wrapped) == stats_key(direct)

    direct_pooled = make_algorithm(
        "LO", GAMMA, execution=ExecutionConfig(workers=2)
    ).compute(dataset)
    pooled = aggregate_skyline(
        dataset, gamma=GAMMA, algorithm="LO", execution="workers=2"
    )
    assert pooled.keys == direct.keys
    assert stats_key(pooled) == stats_key(direct_pooled)


def test_partitioned_execution_kwarg(dataset):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        serial = partitioned_aggregate_skyline(
            dataset, gamma=GAMMA, partitions=3
        )
        pooled = partitioned_aggregate_skyline(
            dataset, gamma=GAMMA, partitions=3, execution="workers=2"
        )
    assert serial.as_set() == pooled.as_set()


def test_partitioned_legacy_kwargs_warn_once(dataset):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = partitioned_aggregate_skyline(
            dataset, gamma=GAMMA, partitions=3, processes=2, pool_timeout=60.0
        )
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert "workers" in message and "pool_timeout" in message
    reference = partitioned_aggregate_skyline(
        dataset, gamma=GAMMA, partitions=3
    )
    assert legacy.as_set() == reference.as_set()


def test_public_surface_reexported():
    import repro

    for name in (
        "SkylineEngine",
        "DatasetHandle",
        "EngineStats",
        "EngineClosedError",
        "aggregate_skyline",
        "gamma_profile",
        "ExecutionConfig",
    ):
        assert name in repro.__all__
        assert hasattr(repro, name)
    assert DatasetHandle is repro.DatasetHandle
