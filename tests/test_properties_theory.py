"""Executable versions of the paper's theoretical results (Section 2-3).

Covers: Proposition 1 (asymmetry for γ >= .5, inconsistency below),
Property 2 (stability to updates, with the corrected ε — see DESIGN.md),
Proposition 2 (stability to monotone transformations), Proposition 3
(skyline containment fails, the paper's exact counterexample), Theorem 1
(the tension between containment and stability, concrete witness),
Proposition 4 (non-transitivity, the Figure-6 configuration) and
Proposition 5 (weak transitivity at γ̄).
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import make_algorithm
from repro.core.gamma import (
    GammaThresholds,
    dominance_holds,
    dominance_probability,
    gamma_bar,
    gamma_dominates,
)
from repro.core.groups import GroupedDataset
from repro.core.skyline import skyline_mask


# ----------------------------------------------------------------------
# Proposition 1: asymmetry
# ----------------------------------------------------------------------


class TestAsymmetry:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.sampled_from([0.5, 0.6, 0.8, 1.0]),
        st.integers(min_value=0, max_value=100_000),
    )
    def test_no_mutual_domination_at_half_or_above(self, n1, n2, gamma, seed):
        rng = np.random.default_rng(seed)
        s = rng.integers(0, 4, size=(n1, 2)).astype(float)
        r = rng.integers(0, 4, size=(n2, 2)).astype(float)
        assert not (
            gamma_dominates(s, r, gamma) and gamma_dominates(r, s, gamma)
        )

    def test_mutual_domination_possible_below_half(self):
        """The inconsistency the paper warns about for γ < .5."""
        r = np.array([[2.0, 2.0], [0.0, 0.0]])
        s = np.array([[1.0, 1.0], [1.0, 1.0]])
        gamma = 0.4
        assert gamma_dominates(r, s, gamma, allow_unsafe=True)
        assert gamma_dominates(s, r, gamma, allow_unsafe=True)


# ----------------------------------------------------------------------
# Property 2: stability to updates
# ----------------------------------------------------------------------


class TestUpdateStability:
    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=100_000),
    )
    def test_bound_on_random_removals(self, n_r, n_s, seed):
        """γ(1-ε) <= γ' <= γ(1+ε) with ε = (|R|-|R'|) / |R'|.

        The paper states ε with denominator |R|, but its own algebra
        (γ' <= γ·|R|/|R'|) only matches ε = (|R|-|R'|)/|R'|; removing the
        dominated half of a group can double γ, violating the |R| version.
        """
        rng = np.random.default_rng(seed)
        r = rng.integers(0, 5, size=(n_r, 2)).astype(float)
        s = rng.integers(0, 5, size=(n_s, 2)).astype(float)
        keep = max(1, int(rng.integers(1, n_r + 1)))
        r_prime = r[:keep]

        gamma = dominance_probability(r, s)
        gamma_prime = dominance_probability(r_prime, s)
        epsilon = Fraction(n_r - keep, keep)
        assert gamma_prime <= gamma * (1 + epsilon)
        assert gamma_prime >= gamma * (1 + epsilon) - epsilon

    def test_paper_epsilon_version_fails(self):
        """Witness that the printed ε = (|R|-|R'|)/|R| bound is too tight."""
        r = np.array([[9.0, 9.0], [0.0, 0.0]])
        s = np.array([[5.0, 5.0]])
        gamma = dominance_probability(r, s)       # 1/2
        r_prime = r[:1]
        gamma_prime = dominance_probability(r_prime, s)  # 1
        epsilon_paper = Fraction(1, 2)            # (|R|-|R'|) / |R|
        assert gamma_prime > gamma * (1 + epsilon_paper)

    def test_single_bad_movie_changes_little(self):
        """The motivating scenario: one flop cannot sink a great director."""
        great = np.array([[9.0, 9.0]] * 20)
        rival = np.array([[5.0, 5.0]] * 5)
        before = dominance_probability(great, rival)
        with_flop = np.vstack([great, [[0.0, 0.0]]])
        after = dominance_probability(with_flop, rival)
        assert before == 1
        assert after >= Fraction(20, 21)


# ----------------------------------------------------------------------
# Proposition 2: stability to monotone transformations
# ----------------------------------------------------------------------

MONOTONE_FUNCTIONS = [
    lambda x: x,
    lambda x: 2.0 * x + 1.0,
    lambda x: x**3,
    lambda x: np.exp(x / 4.0),
    lambda x: np.where(x > 2, x * 10.0, x),  # monotone, wildly non-linear
]


class TestMonotoneStability:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=100_000),
    )
    def test_probability_invariant(self, n1, n2, f1, f2, seed):
        rng = np.random.default_rng(seed)
        s = rng.integers(0, 5, size=(n1, 2)).astype(float)
        r = rng.integers(0, 5, size=(n2, 2)).astype(float)
        phi1 = MONOTONE_FUNCTIONS[f1]
        phi2 = MONOTONE_FUNCTIONS[f2]
        s_t = np.column_stack([phi1(s[:, 0]), phi2(s[:, 1])])
        r_t = np.column_stack([phi1(r[:, 0]), phi2(r[:, 1])])
        assert dominance_probability(s, r) == dominance_probability(s_t, r_t)

    def test_average_based_comparison_is_not_stable(self):
        """The paper's §1.3 argument: averages break under monotone maps.

        Two groups whose averages are ordered one way swap order after a
        monotone transformation, while γ-dominance is unchanged.
        """
        a = np.array([[10.0], [5.0]])
        b = np.array([[7.4], [7.4]])
        assert a.mean() > b.mean()
        squash = lambda x: np.minimum(x, 9.0)  # monotone (non-strictly)
        assert squash(a).mean() < squash(b).mean()


# ----------------------------------------------------------------------
# Proposition 3 / Theorem 1: skyline containment fails
# ----------------------------------------------------------------------


class TestSkylineContainment:
    def test_paper_counterexample(self):
        """G1 holds the record skyline point (5,5) yet is group-dominated."""
        g1 = np.array([[5.0, 5.0], [1.0, 1.0], [1.0, 2.0]])
        g2 = np.array([[2.0, 3.0]])
        assert dominance_probability(g2, g1) == Fraction(2, 3)

        dataset = GroupedDataset({"G1": g1, "G2": g2})
        result = make_algorithm("NL", 0.5).compute(dataset)
        assert result.as_set() == {"G2"}

        # ... although G1 contains the unique record-skyline maximum.
        union = np.vstack([g1, g2])
        mask = skyline_mask(union)
        assert mask.tolist() == [True, False, False, False]

    def test_theorem1_tension_witness(self):
        """Adding one superstar record cannot rescue a flooded group."""
        flooded = np.vstack([np.zeros((9, 2)), [[99.0, 99.0]]])
        rival = np.full((3, 2), 5.0)
        dataset = GroupedDataset({"flooded": flooded, "rival": rival})
        # rival dominates 9/10 of flooded's records: out at gamma=.5 even
        # though flooded contains the global skyline record.
        result = make_algorithm("NL", 0.5).compute(dataset)
        assert result.as_set() == {"rival"}
        union_mask = skyline_mask(np.vstack([flooded, rival]))
        assert union_mask[9]  # the superstar is the record skyline


# ----------------------------------------------------------------------
# Proposition 4: non-transitivity (Figure 6)
# ----------------------------------------------------------------------


def figure6_groups():
    r = np.array([[2.0, 2.0], [8.0, 1.0], [2.0, 3.0], [3.0, 2.0]])
    s = np.array([[1.0, 1.0], [7.0, 0.5]])
    t = np.array([[0.0, 0.0], [6.0, 0.0], [5.0, 0.0]])
    return r, s, t


class TestNonTransitivity:
    def test_figure6_probabilities(self):
        r, s, t = figure6_groups()
        assert dominance_probability(r, s) == Fraction(5, 8)
        assert dominance_probability(s, t) == Fraction(2, 3)
        assert dominance_probability(r, t) == Fraction(1, 2)

    def test_figure6_breaks_transitivity_at_half(self):
        r, s, t = figure6_groups()
        assert gamma_dominates(r, s, 0.5)
        assert gamma_dominates(s, t, 0.5)
        assert not gamma_dominates(r, t, 0.5)


# ----------------------------------------------------------------------
# Proposition 5: weak transitivity
# ----------------------------------------------------------------------


class TestWeakTransitivity:
    @pytest.mark.parametrize("gamma", [0.5, 0.6, 0.7, 0.75])
    def test_weak_transitivity_holds_on_random_triples(self, gamma):
        """If R >_γ̄ S and S >_γ̄ T then R >_γ T, scanned over many triples.

        Offsets between the three groups make the premises fire often; the
        test requires at least a handful of firings so it cannot pass
        vacuously.
        """
        bar = gamma_bar(gamma)
        rng = np.random.default_rng(42)
        fired = 0
        for _ in range(400):
            base = rng.uniform(0, 1, size=(3,))
            r = rng.uniform(0.5, 1.4, size=(4, 2)) + base[0]
            s = rng.uniform(0.2, 1.0, size=(3, 2)) + base[1] * 0.5
            t = rng.uniform(0.0, 0.8, size=(5, 2))
            p_rs = dominance_probability(r, s)
            p_st = dominance_probability(s, t)
            premises = dominance_holds(
                p_rs.numerator, p_rs.denominator, bar
            ) and dominance_holds(p_st.numerator, p_st.denominator, bar)
            if not premises:
                continue
            fired += 1
            p_rt = dominance_probability(r, t)
            assert dominance_holds(
                p_rt.numerator, p_rt.denominator, Fraction(gamma)
            ), (p_rs, p_st, p_rt)
        assert fired >= 5

    def test_gamma_bar_premise_is_necessary(self):
        """At plain γ the implication fails (Figure 6 again)."""
        r, s, t = figure6_groups()
        bar = gamma_bar(0.5)  # ~0.646
        p_rs = dominance_probability(r, s)  # 5/8 = .625 < γ̄
        assert not dominance_holds(p_rs.numerator, p_rs.denominator, bar)

    def test_strong_threshold_in_algorithms_at_high_gamma(self):
        """strong >= γ always (the clamp); at γ=.9, γ̄ alone would be .84."""
        thresholds = GammaThresholds(0.9)
        assert float(gamma_bar(0.9)) < 0.9
        assert thresholds.strong >= thresholds.gamma


# ----------------------------------------------------------------------
# Domination cycles: the aggregate skyline can be EMPTY
# ----------------------------------------------------------------------


class TestDominationCycles:
    """Unlike the record skyline (always non-empty), the aggregate skyline
    can be empty: asymmetry holds pairwise but transitivity does not, so
    three groups can γ-dominate each other in a cycle, leaving no group
    undominated.  The paper does not discuss this consequence; we pin it
    down and check every algorithm handles it consistently."""

    @pytest.fixture
    def cycle(self):
        # Harbor > Prairie, Summit > Harbor, Prairie > Summit (all at 2/3
        # or 5/9 > 1/2); discovered while scripting examples/sql_session.
        return GroupedDataset(
            {
                "harbor": [[52, 4.1], [55, 5.0], [49, 3.2]],
                "summit": [[60, 6.5], [23, -4.0], [58, 6.0]],
                "prairie": [[41, 0.5], [43, 0.8], [61, 7.0]],
            }
        )

    def test_cycle_probabilities(self, cycle):
        p = lambda s, r: dominance_probability(cycle[s], cycle[r])
        assert p("summit", "harbor") == Fraction(6, 9)
        assert p("harbor", "prairie") == Fraction(6, 9)
        assert p("prairie", "summit") == Fraction(5, 9)

    def test_skyline_is_empty(self, cycle):
        for name in ("NL", "TR", "SI", "IN", "LO", "AD", "SQL"):
            result = make_algorithm(name, 0.5, **(
                {} if name == "SQL" else {"prune_policy": "safe"}
            )).compute(cycle)
            assert result.keys == [], name

    def test_gamma_knob_breaks_the_cycle(self, cycle):
        # At gamma = 5/9 the weakest edge (prairie > summit) needs p > 5/9
        # and drops out: summit resurfaces alone.
        result = make_algorithm("NL", Fraction(5, 9)).compute(cycle)
        assert result.as_set() == {"summit"}
        # At gamma = 2/3 all three edges are gone: everyone is back.
        result = make_algorithm("NL", Fraction(2, 3)).compute(cycle)
        assert len(result) == 3

    def test_profile_reports_cycle_thresholds(self, cycle):
        from repro.core.api import gamma_profile

        profile = gamma_profile(cycle)
        # Nobody is admitted at .5 (the cycle), and each group enters
        # exactly at its strongest dominator's probability.
        assert profile.skyline_at(0.5) == []
        assert profile.minimal_gamma("summit") == Fraction(5, 9)
        assert profile.minimal_gamma("harbor") == Fraction(6, 9)
        assert profile.minimal_gamma("prairie") == Fraction(6, 9)
        assert set(profile.skyline_at(Fraction(2, 3))) == {
            "harbor", "summit", "prairie",
        }
