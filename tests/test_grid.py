"""Tests for the uniform grid index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.grid import GridIndex


def brute_force_window(points, low, high):
    low = np.asarray(low, dtype=float)
    high = np.asarray(high, dtype=float)
    return {
        i
        for i, p in enumerate(points)
        if bool(np.all(p >= low) and np.all(p <= high))
    }


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            GridIndex([1.0], [0.0])
        with pytest.raises(ValueError):
            GridIndex([0.0], [1.0], cells_per_dim=0)
        with pytest.raises(ValueError):
            GridIndex([0.0, 0.0], [1.0])

    def test_degenerate_domain(self):
        """All values equal in one dimension must still work."""
        index = GridIndex([0.0, 5.0], [1.0, 5.0], cells_per_dim=4)
        index.insert_point([0.5, 5.0], "x")
        assert index.search_window([0.0, 5.0], [1.0, 5.0]) == ["x"]

    def test_point_dimension_checked(self):
        index = GridIndex([0.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            index.insert_point([0.5], "x")

    def test_len(self):
        index = GridIndex([0.0], [1.0])
        index.insert_point([0.5], 1)
        index.insert_point([0.6], 2)
        assert len(index) == 2


class TestQueries:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=100_000),
    )
    def test_matches_brute_force(self, n, d, cells, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 10, size=(n, d))
        index = GridIndex([0.0] * d, [10.0] * d, cells_per_dim=cells)
        for i, p in enumerate(points):
            index.insert_point(p, i)
        corner_a = rng.uniform(0, 10, size=d)
        corner_b = rng.uniform(0, 10, size=d)
        low = np.minimum(corner_a, corner_b)
        high = np.maximum(corner_a, corner_b)
        assert set(index.search_window(low, high)) == brute_force_window(
            points, low, high
        )

    def test_window_with_infinity(self):
        index = GridIndex([0.0, 0.0], [10.0, 10.0], cells_per_dim=4)
        for i, p in enumerate([[1.0, 1.0], [5.0, 5.0], [9.0, 2.0]]):
            index.insert_point(p, i)
        found = index.search_window([2.0, 2.0], [np.inf, np.inf])
        assert set(found) == {1, 2}
        assert set(index.search_window([2.0, 3.0], [np.inf, np.inf])) == {1}

    def test_window_outside_domain(self):
        index = GridIndex([0.0], [1.0])
        index.insert_point([0.5], "x")
        assert index.search_window([2.0], [3.0]) == []

    def test_points_on_domain_border(self):
        index = GridIndex([0.0], [1.0], cells_per_dim=4)
        index.insert_point([1.0], "top")
        index.insert_point([0.0], "bottom")
        assert set(index.search_window([0.0], [1.0])) == {"top", "bottom"}
        assert index.search_window([1.0], [1.0]) == ["top"]

    def test_invalid_window_rejected(self):
        index = GridIndex([0.0], [1.0])
        with pytest.raises(ValueError):
            index.search_window([1.0], [0.0])
