"""Tests for the Database, the statement layer and the interactive shell."""

import io

import pytest

from repro.query.parser import ParseError
from repro.query.shell import Shell
from repro.query.statements import (
    CreateTable,
    DropTable,
    InsertInto,
    execute_statement,
    parse_statement,
)
from repro.relational.database import Database, DatabaseError
from repro.relational.table import Table


@pytest.fixture
def db():
    database = Database()
    database.create_table("movies", ["title", "director", "pop", "qual"])
    database.insert(
        "movies",
        [
            ("Pulp Fiction", "Tarantino", 557, 9.0),
            ("Kill Bill", "Tarantino", 313, 8.2),
            ("The Room", "Wiseau", 10, 3.2),
        ],
    )
    return database


class TestDatabase:
    def test_create_and_query(self, db):
        assert db.table_names() == ["movies"]
        assert len(db["movies"]) == 3
        assert "movies" in db
        assert db.schema("movies") == ["title", "director", "pop", "qual"]

    def test_mapping_protocol(self, db):
        assert set(db.keys()) == {"movies"}
        assert list(iter(db)) == ["movies"]
        assert len(db) == 1

    def test_duplicate_create_rejected(self, db):
        with pytest.raises(DatabaseError, match="already exists"):
            db.create_table("movies", ["x"])

    def test_invalid_names_rejected(self):
        database = Database()
        for bad in ("1table", "has space", "semi;colon", ""):
            with pytest.raises(DatabaseError):
                database.create_table(bad, ["x"])

    def test_empty_columns_rejected(self):
        with pytest.raises(DatabaseError):
            Database().create_table("t", [])

    def test_insert_width_checked(self, db):
        with pytest.raises(DatabaseError, match="columns"):
            db.insert("movies", [("too", "short")])

    def test_unknown_table(self, db):
        with pytest.raises(DatabaseError, match="no table"):
            db["nothing"]
        with pytest.raises(DatabaseError):
            db.drop_table("nothing")

    def test_drop(self, db):
        db.drop_table("movies")
        assert db.table_names() == []

    def test_register_replaces(self, db):
        db.register("movies", Table(["x"], [(1,)]))
        assert db.schema("movies") == ["x"]

    def test_save_and_load(self, db, tmp_path):
        directory = tmp_path / "store"
        db.save(directory)
        loaded = Database.load(directory)
        assert loaded.table_names() == ["movies"]
        assert loaded["movies"] == db["movies"]

    def test_load_catalogless_directory(self, db, tmp_path):
        from repro.relational.csvio import save_csv

        save_csv(db["movies"], tmp_path / "films.csv")
        loaded = Database.load(tmp_path)
        assert loaded.table_names() == ["films"]

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(DatabaseError, match="not a directory"):
            Database.load(tmp_path / "nope")

    def test_load_missing_table_file(self, db, tmp_path):
        db.save(tmp_path)
        (tmp_path / "movies.csv").unlink()
        with pytest.raises(DatabaseError, match="missing"):
            Database.load(tmp_path)


class TestStatements:
    def test_parse_create(self):
        statement = parse_statement(
            "CREATE TABLE t (a, b INTEGER, c VARCHAR NOT);"
        )
        assert statement == CreateTable("t", ("a", "b", "c"))

    def test_parse_insert_multi_row(self):
        statement = parse_statement(
            "INSERT INTO t VALUES (1, 'x', 2.5), (2, NULL, -3)"
        )
        assert isinstance(statement, InsertInto)
        assert statement.rows == ((1, "x", 2.5), (2, None, -3))

    def test_parse_drop(self):
        assert parse_statement("DROP TABLE t") == DropTable("t")

    def test_parse_select_delegates(self):
        statement = parse_statement("SELECT * FROM t;")
        from repro.query.ast_nodes import Query

        assert isinstance(statement, Query)

    def test_unknown_statement(self):
        with pytest.raises(ParseError, match="unknown statement"):
            parse_statement("ALTER TABLE t ADD COLUMN x")
        with pytest.raises(ParseError, match="empty"):
            parse_statement("  ;")

    def test_malformed_create(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE TABLE t a, b)")
        with pytest.raises(ParseError):
            parse_statement("CREATE TABLE t () trailing")

    def test_insert_rejects_expressions(self):
        with pytest.raises(ParseError, match="literal"):
            parse_statement("INSERT INTO t VALUES (a)")

    def test_execute_full_lifecycle(self):
        database = Database()
        execute_statement("CREATE TABLE t (k, v)", database)
        result = execute_statement(
            "INSERT INTO t VALUES ('a', 1), ('b', 2)", database
        )
        assert "2 row(s)" in result.message
        query = execute_statement(
            "SELECT k FROM t WHERE v > 1", database
        )
        assert query.query_result is not None
        assert query.query_result.table.rows == [("b",)]
        execute_statement("DROP TABLE t", database)
        assert database.table_names() == []

    def test_execute_skyline_statement(self, db):
        result = execute_statement(
            "SELECT director FROM movies GROUP BY director"
            " SKYLINE OF pop MAX, qual MAX",
            db,
        )
        rows = {r[0] for r in result.query_result.table.rows}
        assert rows == {"Tarantino"}

    def test_to_text(self, db):
        message = execute_statement("DROP TABLE movies", db)
        assert message.to_text() == "dropped table movies"


def run_script(script: str, database=None):
    out = io.StringIO()
    shell = Shell(
        database=database, stdin=io.StringIO(script), stdout=out
    )
    code = shell.run()
    return code, out.getvalue(), shell


class TestShell:
    def test_create_insert_query(self):
        code, output, _ = run_script(
            "CREATE TABLE t (k, v);\n"
            "INSERT INTO t VALUES ('a', 2), ('b', 1);\n"
            "SELECT k FROM t ORDER BY v DESC;\n"
            ".quit\n"
        )
        assert code == 0
        assert "created table t" in output
        assert "inserted 2 row(s)" in output
        assert output.index("a") < output.index("b", output.index("a"))

    def test_multiline_statement(self):
        code, output, _ = run_script(
            "CREATE TABLE t (k);\n"
            "INSERT INTO t\n"
            "VALUES ('x');\n"
            "SELECT count(*) AS n FROM t GROUP BY k;\n"
            ".quit\n"
        )
        assert code == 0
        assert "inserted 1 row(s)" in output

    def test_error_recovery(self):
        code, output, _ = run_script(
            "SELECT * FROM missing;\n"
            "CREATE TABLE ok (x);\n"
            ".quit\n"
        )
        assert code == 0
        assert "error:" in output
        assert "created table ok" in output

    def test_dot_commands(self, db):
        code, output, _ = run_script(
            ".help\n.tables\n.schema movies\n.schema nope\n"
            ".timing\n.unknowncmd\n.quit\n",
            database=db,
        )
        assert code == 0
        assert ".tables" in output          # help text
        assert "movies(title, director, pop, qual)" in output
        assert "error:" in output           # .schema nope
        assert "timing on" in output
        assert "unknown command" in output

    def test_save_open_roundtrip(self, db, tmp_path):
        directory = str(tmp_path / "dbdir")
        code, output, _ = run_script(
            f".save {directory}\n.quit\n", database=db
        )
        assert "saved 1 table(s)" in output
        code, output, shell = run_script(
            f".open {directory}\n.tables\n.quit\n"
        )
        assert "opened 1 table(s)" in output
        assert "movies" in shell.database

    def test_load_csv(self, tmp_path):
        from repro.relational.csvio import save_csv

        save_csv(Table(["x"], [(1,), (2,)]), tmp_path / "nums.csv")
        code, output, shell = run_script(
            f".load {tmp_path / 'nums.csv'}\n.quit\n"
        )
        assert "loaded 2 row(s) into table nums" in output
        assert "nums" in shell.database

    def test_eof_exits_cleanly(self):
        code, output, _ = run_script("CREATE TABLE t (x);\n")
        assert code == 0

    def test_skyline_stats_line(self, db):
        code, output, _ = run_script(
            "SELECT director FROM movies GROUP BY director"
            " SKYLINE OF pop MAX, qual MAX;\n.quit\n",
            database=db,
        )
        assert "group comparisons" in output


class TestDeleteUpdate:
    @pytest.fixture
    def populated(self):
        database = Database()
        execute_statement("CREATE TABLE t (k, v)", database)
        execute_statement(
            "INSERT INTO t VALUES ('a', 1), ('b', 2), ('c', 3)", database
        )
        return database

    def test_delete_where(self, populated):
        result = execute_statement(
            "DELETE FROM t WHERE v >= 2", populated
        )
        assert "deleted 2 row(s)" in result.message
        assert populated["t"].rows == [("a", 1)]

    def test_delete_all(self, populated):
        result = execute_statement("DELETE FROM t", populated)
        assert "deleted 3 row(s)" in result.message
        assert len(populated["t"]) == 0
        # schema survives an empty delete
        assert populated.schema("t") == ["k", "v"]

    def test_delete_with_complex_where(self, populated):
        execute_statement(
            "DELETE FROM t WHERE k IN ('a', 'c') OR v BETWEEN 2 AND 2",
            populated,
        )
        assert populated["t"].rows == []

    def test_update_where(self, populated):
        result = execute_statement(
            "UPDATE t SET v = 10 WHERE k = 'a'", populated
        )
        assert "updated 1 row(s)" in result.message
        assert ("a", 10) in populated["t"].rows
        assert ("b", 2) in populated["t"].rows

    def test_update_all_multi_assign(self, populated):
        result = execute_statement(
            "UPDATE t SET v = 0, k = 'z'", populated
        )
        assert "updated 3 row(s)" in result.message
        assert populated["t"].rows == [("z", 0)] * 3

    def test_update_unknown_column(self, populated):
        with pytest.raises(KeyError):
            execute_statement("UPDATE t SET nope = 1", populated)

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_statement("DELETE t")
        with pytest.raises(ParseError):
            parse_statement("UPDATE t v = 1")
        with pytest.raises(ParseError):
            parse_statement("UPDATE t SET v = other_col")

    def test_shell_dml_flow(self):
        code, output, _ = run_script(
            "CREATE TABLE t (k, v);\n"
            "INSERT INTO t VALUES ('a', 1), ('b', 2);\n"
            "UPDATE t SET v = 5 WHERE k = 'a';\n"
            "DELETE FROM t WHERE v = 2;\n"
            "SELECT * FROM t;\n"
            ".quit\n"
        )
        assert code == 0
        assert "updated 1 row(s)" in output
        assert "deleted 1 row(s)" in output
        assert "5" in output
