"""Cross-algorithm equivalence: the heart of the correctness story.

Under ``prune_policy="safe"`` every algorithm must return exactly the
Definition-2 aggregate skyline (the brute-force oracle in conftest).  Under
the faithful ``"paper"`` policy the result may only ever be a *superset*
(see DESIGN.md); on the randomized workloads here it is almost always equal,
and the superset relation is asserted.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import make_algorithm
from repro.data.synthetic import SyntheticSpec, generate_grouped
from tests.conftest import exact_aggregate_skyline, random_grouped_dataset

NATIVE = ("NL", "TR", "SI", "IN", "LO", "AD")
ALL = NATIVE + ("SQL",)

GAMMAS = (0.5, 0.6, 0.75, 0.9, 1.0)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=3),
    st.sampled_from(GAMMAS),
    st.integers(min_value=0, max_value=1_000_000),
)
def test_safe_mode_equals_oracle(n_groups, max_size, d, gamma, seed):
    rng = np.random.default_rng(seed)
    dataset = random_grouped_dataset(
        rng, n_groups=n_groups, max_group_size=max_size, dimensions=d
    )
    expected = exact_aggregate_skyline(dataset, gamma)
    for name in NATIVE:
        result = make_algorithm(name, gamma, prune_policy="safe").compute(
            dataset
        )
        assert result.as_set() == expected, f"{name} at gamma={gamma}"


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=3),
    st.sampled_from(GAMMAS),
    st.integers(min_value=0, max_value=1_000_000),
)
def test_paper_mode_is_superset_of_oracle(n_groups, max_size, d, gamma, seed):
    rng = np.random.default_rng(seed)
    dataset = random_grouped_dataset(
        rng, n_groups=n_groups, max_group_size=max_size, dimensions=d
    )
    expected = exact_aggregate_skyline(dataset, gamma)
    for name in NATIVE:
        result = make_algorithm(name, gamma, prune_policy="paper").compute(
            dataset
        )
        assert result.as_set() >= expected, f"{name} at gamma={gamma}"


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=4),
    st.sampled_from((0.5, 0.75, 1.0)),
    st.integers(min_value=0, max_value=1_000_000),
)
def test_sql_baseline_equals_oracle(n_groups, max_size, gamma, seed):
    rng = np.random.default_rng(seed)
    dataset = random_grouped_dataset(
        rng, n_groups=n_groups, max_group_size=max_size, dimensions=2
    )
    expected = exact_aggregate_skyline(dataset, gamma)
    result = make_algorithm("SQL", gamma).compute(dataset)
    assert result.as_set() == expected


@pytest.mark.parametrize("distribution", ["independent", "correlated", "anticorrelated"])
@pytest.mark.parametrize("gamma", [0.5, 0.8])
def test_synthetic_workload_consistency(distribution, gamma):
    """Realistic workload: every algorithm and policy, one mid-size input."""
    dataset = generate_grouped(
        SyntheticSpec(
            n_records=600,
            avg_group_size=30,
            dimensions=3,
            distribution=distribution,
            seed=99,
        )
    )
    expected = exact_aggregate_skyline(dataset, gamma)
    for name in NATIVE:
        for policy in ("safe", "paper"):
            result = make_algorithm(
                name, gamma, prune_policy=policy
            ).compute(dataset)
            if policy == "safe":
                assert result.as_set() == expected, (name, policy)
            else:
                assert result.as_set() >= expected, (name, policy)
    sql = make_algorithm("SQL", gamma).compute(dataset)
    assert sql.as_set() == expected


def test_option_toggles_do_not_change_results():
    """Stopping rule, bbox, sort keys and backends are pure optimisations."""
    dataset = generate_grouped(
        SyntheticSpec(
            n_records=400,
            avg_group_size=20,
            dimensions=3,
            distribution="anticorrelated",
            seed=5,
        )
    )
    expected = exact_aggregate_skyline(dataset, 0.5)
    variants = [
        ("NL", {"use_stopping_rule": False}),
        ("NL", {"use_stopping_rule": True, "block_size": 7}),
        ("NL", {"use_bbox": True}),
        ("TR", {"prune_policy": "safe", "use_bbox": True}),
        ("SI", {"prune_policy": "safe", "sort_key": "corner_distance"}),
        ("SI", {"prune_policy": "safe", "sort_key": "size_corner"}),
        ("IN", {"prune_policy": "safe", "index_backend": "rtree"}),
        ("IN", {"prune_policy": "safe", "index_backend": "grid"}),
        ("IN", {"prune_policy": "safe", "grid_cells_per_dim": 2,
                "index_backend": "grid"}),
        ("LO", {"prune_policy": "safe", "index_backend": "grid"}),
        ("LO", {"prune_policy": "safe", "use_stopping_rule": False}),
    ]
    for name, options in variants:
        result = make_algorithm(name, 0.5, **options).compute(dataset)
        assert result.as_set() == expected, (name, options)


def test_zipfian_group_sizes_consistency():
    dataset = generate_grouped(
        SyntheticSpec(
            n_records=500,
            avg_group_size=25,
            dimensions=2,
            distribution="independent",
            size_distribution="zipf",
            seed=17,
        )
    )
    expected = exact_aggregate_skyline(dataset, 0.5)
    for name in NATIVE:
        result = make_algorithm(name, 0.5, prune_policy="safe").compute(
            dataset
        )
        assert result.as_set() == expected, name
