"""Unit and property tests for record-level dominance."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dominance import (
    Direction,
    denormalize_values,
    dominance_sign,
    dominated_mask,
    dominates,
    normalize_values,
    parse_directions,
    strictly_dominates_all,
)

records = st.lists(
    st.integers(min_value=-5, max_value=5), min_size=1, max_size=4
)


class TestDirection:
    def test_from_string_max(self):
        assert Direction.from_any("max") is Direction.MAX
        assert Direction.from_any("MAX") is Direction.MAX
        assert Direction.from_any("+") is Direction.MAX

    def test_from_string_min(self):
        assert Direction.from_any("min") is Direction.MIN
        assert Direction.from_any("-") is Direction.MIN

    def test_from_direction_is_identity(self):
        assert Direction.from_any(Direction.MIN) is Direction.MIN

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            Direction.from_any("sideways")
        with pytest.raises(ValueError):
            Direction.from_any(42)

    def test_str(self):
        assert str(Direction.MAX) == "MAX"


class TestParseDirections:
    def test_none_defaults_to_max(self):
        assert parse_directions(None, 3) == (Direction.MAX,) * 3

    def test_single_value_broadcast(self):
        assert parse_directions("min", 2) == (Direction.MIN, Direction.MIN)

    def test_sequence(self):
        assert parse_directions(["max", "min"], 2) == (
            Direction.MAX,
            Direction.MIN,
        )

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            parse_directions(["max"], 2)

    def test_zero_dimensions_raises(self):
        with pytest.raises(ValueError):
            parse_directions(None, 0)


class TestNormalize:
    def test_min_columns_negated(self):
        values = normalize_values(
            [[1.0, 2.0], [3.0, 4.0]], (Direction.MAX, Direction.MIN)
        )
        assert values.tolist() == [[1.0, -2.0], [3.0, -4.0]]

    def test_roundtrip(self):
        directions = (Direction.MIN, Direction.MAX, Direction.MIN)
        original = np.array([[1.0, 2.0, 3.0], [-1.0, 0.0, 5.0]])
        there = normalize_values(original, directions)
        back = denormalize_values(there, directions)
        assert np.array_equal(back, original)

    def test_one_dimensional_input_promoted(self):
        values = normalize_values([1.0, 2.0], (Direction.MAX, Direction.MAX))
        assert values.shape == (1, 2)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            normalize_values([[1.0, 2.0]], (Direction.MAX,))

    def test_does_not_mutate_input(self):
        original = np.array([[1.0, 2.0]])
        normalize_values(original, (Direction.MIN, Direction.MIN))
        assert original.tolist() == [[1.0, 2.0]]


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([2, 2], [1, 1])

    def test_dominance_with_tie(self):
        assert dominates([2, 1], [1, 1])

    def test_equal_records_do_not_dominate(self):
        assert not dominates([1, 1], [1, 1])

    def test_incomparable(self):
        assert not dominates([2, 0], [0, 2])
        assert not dominates([0, 2], [2, 0])

    def test_paper_example_godfather_dominates_the_room(self):
        assert dominates([531, 9.2], [10, 3.2])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            dominates([1, 2], [1, 2, 3])

    @given(records)
    def test_irreflexive(self, r):
        assert not dominates(r, r)

    @given(records, records)
    def test_asymmetric(self, r, s):
        if len(r) != len(s):
            return
        assert not (dominates(r, s) and dominates(s, r))

    @given(records, records, records)
    def test_transitive(self, r, s, t):
        if not (len(r) == len(s) == len(t)):
            return
        if dominates(r, s) and dominates(s, t):
            assert dominates(r, t)


class TestDominanceSign:
    def test_positive(self):
        assert dominance_sign([2, 2], [1, 1]) == 1

    def test_negative(self):
        assert dominance_sign([1, 1], [2, 2]) == -1

    def test_incomparable_zero(self):
        assert dominance_sign([2, 0], [0, 2]) == 0

    def test_equal_zero(self):
        assert dominance_sign([1, 1], [1, 1]) == 0

    @given(records, records)
    def test_consistent_with_dominates(self, r, s):
        if len(r) != len(s):
            return
        sign = dominance_sign(r, s)
        assert (sign == 1) == dominates(r, s)
        assert (sign == -1) == dominates(s, r)


class TestMaskHelpers:
    def test_dominated_mask(self):
        points = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 0.0]])
        mask = dominated_mask(points, np.array([2.0, 2.0]))
        assert mask.tolist() == [True, False, False]

    def test_strictly_dominates_all(self):
        points = np.array([[1.0, 1.0], [0.0, 2.0]])
        assert strictly_dominates_all(np.array([2.0, 3.0]), points)
        assert not strictly_dominates_all(np.array([2.0, 1.5]), points)

    def test_strictly_dominates_all_empty(self):
        assert strictly_dominates_all(
            np.array([0.0, 0.0]), np.empty((0, 2))
        )
