"""Tests for the run-telemetry layer (tracing v2, runlog, sampler, perf).

Covers the pieces added with end-to-end run telemetry:

* span identity (trace/span/parent ids), cross-process trace merge,
  serialized round-trips and JSONL durability;
* the structured run log and its trace correlation;
* the background resource sampler (start/stop hygiene, GC hooks);
* the perf-regression tracker (``BENCH_*.json`` time series) and its CLI;
* the chunk-based ETA of pooled progress reporting;
* the OpenMetrics exposition format.
"""

import gc
import json
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.core.algorithms import make_algorithm
from repro.core.execution import ExecutionConfig
from repro.data.workloads import load_workload
from repro.obs import metrics as obs_metrics
from repro.obs import runlog as obs_runlog
from repro.obs import tracing as obs_tracing
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.perfhistory import PerfHistory, parse_threshold
from repro.obs.progress import ProgressEvent, ProgressReporter, eta_from_chunks
from repro.obs.runlog import RunLog, read_events, use_runlog
from repro.obs.sampler import ResourceSampler, profile_phase
from repro.obs.tracing import (
    InMemorySink,
    Span,
    TraceContext,
    Tracer,
    current_trace_context,
    read_jsonl,
    render_trace,
    use_tracer,
)


# ---------------------------------------------------------------------------
# Span identity
# ---------------------------------------------------------------------------


class TestSpanIdentity:
    def test_root_span_gets_fresh_ids(self):
        tracer = Tracer(InMemorySink())
        with tracer.span("root") as root:
            pass
        assert len(root.trace_id) == 32
        assert len(root.span_id) == 16
        assert root.parent_id is None

    def test_children_share_trace_and_parent(self):
        tracer = Tracer(InMemorySink())
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert len({root.span_id, child.span_id, grandchild.span_id}) == 3

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer(InMemorySink())
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_tracer_context_seeds_ids(self):
        context = TraceContext(trace_id="f" * 32, span_id="a" * 16)
        tracer = Tracer(InMemorySink(), context=context)
        with tracer.span("remote") as span:
            pass
        assert span.trace_id == context.trace_id
        assert span.parent_id == context.span_id

    def test_current_trace_context(self):
        tracer = Tracer(InMemorySink())
        with use_tracer(tracer):
            assert current_trace_context() is None
            with tracer.span("open") as span:
                context = current_trace_context()
                assert context == TraceContext(span.trace_id, span.span_id)
            assert current_trace_context() is None

    def test_ids_survive_dict_roundtrip(self):
        tracer = Tracer(InMemorySink())
        with tracer.span("root", k=1) as root:
            root.add_event("evt", n=2)
            with tracer.span("child"):
                pass
        rebuilt = Span.from_dict(json.loads(json.dumps(root.to_dict())))
        assert rebuilt.trace_id == root.trace_id
        assert rebuilt.span_id == root.span_id
        assert rebuilt.ended
        assert rebuilt.attributes == {"k": 1}
        assert rebuilt.events[0]["name"] == "evt"
        assert rebuilt.children[0].parent_id == root.span_id
        # Rebuilt spans render like local ones.
        assert "child" in render_trace(rebuilt)

    def test_adopt_grafts_finished_span(self):
        tracer = Tracer(InMemorySink())
        with tracer.span("worker-side") as remote:
            pass
        with tracer.span("parent") as parent:
            parent.adopt(Span.from_dict(remote.to_dict()))
        assert [c.name for c in parent.children] == ["worker-side"]


# ---------------------------------------------------------------------------
# JSONL durability
# ---------------------------------------------------------------------------


class TestJsonlDurability:
    def test_read_jsonl_skips_torn_trailing_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "ok"}\n{"name": "torn', encoding="utf-8")
        records = read_jsonl(path)
        assert [r["name"] for r in records] == ["ok"]

    def test_jsonl_sink_context_manager_closes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs_tracing.JsonlSink(path) as sink:
            tracer = Tracer(sink)
            with tracer.span("a"):
                pass
        assert read_jsonl(path)[0]["name"] == "a"
        # emit after close is a silent no-op, not a crash
        with tracer.span("late"):
            pass
        assert len(read_jsonl(path)) == 1


# ---------------------------------------------------------------------------
# Cross-process trace merge (the tentpole acceptance scenario)
# ---------------------------------------------------------------------------


class TestCrossProcessTraceMerge:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_pooled_run_merges_into_one_tree(
        self, tmp_path, monkeypatch, start_method
    ):
        """A ``workers=4, scheduler=stealing`` IN run on a Zipfian smoke
        dataset must produce one coherent trace tree (worker chunk spans
        grafted under the parent's ``parallel.chunks`` span) plus a JSONL
        run log whose events carry the same ``trace_id``."""
        import multiprocessing as mp

        if start_method not in mp.get_all_start_methods():
            pytest.skip(f"start method {start_method} unavailable")
        monkeypatch.setenv("REPRO_START_METHOD", start_method)
        dataset = load_workload("zipf-heavy", scale=0.05)
        sink = InMemorySink()
        log_path = tmp_path / "run.jsonl"
        execution = ExecutionConfig(workers=4, scheduler="stealing")
        with use_tracer(Tracer(sink)):
            with use_runlog(RunLog(log_path)):
                result = make_algorithm(
                    "IN", 0.5, execution=execution
                ).compute(dataset)

        assert len(sink.traces) == 1
        root = sink.traces[0]
        assert root.name == "skyline.compute"

        spans = []

        def walk(node):
            spans.append(node)
            for child in node.children:
                walk(child)

        walk(root)
        ids = {s.span_id for s in spans}
        chunks = [s for s in spans if s.name == "parallel.chunk"]
        assert chunks, "no worker chunk spans were merged"
        assert {s.trace_id for s in spans} == {root.trace_id}
        assert all(s.parent_id in ids for s in chunks)
        # Worker spans carry the scheduling attributes.
        for chunk in chunks:
            assert chunk.attributes["kind"] == "candidates"
            assert "slot" in chunk.attributes
            assert "stolen" in chunk.attributes
            assert "pid" in chunk.attributes
        # Chunk-span counters reconcile with the merged stats.
        assert (
            sum(c.attributes["pairs_examined"] for c in chunks)
            == result.stats.record_pairs_examined
        )

        events = read_events(log_path)
        names = [e["event"] for e in events]
        assert names[0] == "run_start" and names[-1] == "run_end"
        assert "pool_start" in names and "pool_end" in names
        assert {e["trace_id"] for e in events} == {root.trace_id}

    def test_untraced_pool_stays_silent(self):
        # No tracer, no runlog: the pooled path must not record anything.
        dataset = load_workload("zipf-heavy", scale=0.05)
        result = make_algorithm(
            "PAR", 0.5, execution=ExecutionConfig(workers=2)
        ).compute(dataset)
        assert result.trace is None


# ---------------------------------------------------------------------------
# Structured run log
# ---------------------------------------------------------------------------


class TestRunLog:
    def test_emit_schema_and_durability(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLog(path, clock=lambda: 123.0)
        log.emit("run_start", algorithm="NL")
        # Flushed immediately: readable before close.
        events = read_events(path)
        assert events[0]["ts"] == 123.0
        assert events[0]["event"] == "run_start"
        assert events[0]["algorithm"] == "NL"
        assert isinstance(events[0]["pid"], int)
        log.close()

    def test_trace_correlation(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(InMemorySink())
        with use_tracer(tracer):
            with use_runlog(RunLog(path)):
                obs_runlog.emit("outside")
                with tracer.span("op") as span:
                    obs_runlog.emit("inside")
        outside, inside = read_events(path)
        assert "trace_id" not in outside
        assert inside["trace_id"] == span.trace_id
        assert inside["span_id"] == span.span_id

    def test_phase_contextmanager(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with use_runlog(RunLog(path)):
            with obs_runlog.phase("bench.run", experiment="fig10"):
                pass
            with pytest.raises(ValueError):
                with obs_runlog.phase("bench.run"):
                    raise ValueError("boom")
        events = read_events(path)
        assert [e["event"] for e in events] == [
            "phase_start", "phase_end", "phase_start", "phase_end",
        ]
        assert events[1]["phase"] == "bench.run"
        assert events[1]["elapsed_seconds"] >= 0
        assert events[3]["error"] == "ValueError"

    def test_emit_error_includes_traceback(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with use_runlog(RunLog(path)):
            try:
                raise RuntimeError("kaput")
            except RuntimeError as exc:
                obs_runlog.emit_error("run_error", exc, algorithm="NL")
        (event,) = read_events(path)
        assert event["error"] == "RuntimeError"
        assert event["message"] == "kaput"
        assert "test_obs_telemetry" in event["traceback"]

    def test_unserializable_fields_coerced(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with use_runlog(RunLog(path)):
            obs_runlog.emit("odd", value=object())
        (event,) = read_events(path)
        assert "object object" in event["value"]

    def test_emit_after_close_is_noop(self, tmp_path):
        log = RunLog(tmp_path / "run.jsonl")
        log.emit("one")
        log.close()
        log.emit("two")  # must not raise
        assert [e["event"] for e in read_events(log.path)] == ["one"]

    def test_default_is_noop(self):
        log = obs_runlog.get_runlog()
        assert not log.enabled
        obs_runlog.emit("ignored")  # must not raise or write anywhere

    def test_run_events_from_compute(self, tmp_path):
        dataset = load_workload("paper-default", scale=0.05)
        path = tmp_path / "run.jsonl"
        with use_runlog(RunLog(path)):
            result = make_algorithm("NL", 0.5).compute(dataset)
        events = {e["event"]: e for e in read_events(path)}
        assert events["run_start"]["algorithm"] == "NL"
        end = events["run_end"]
        assert end["survivors"] == len(result.keys)
        assert end["group_comparisons"] == result.stats.group_comparisons
        assert end["elapsed_seconds"] > 0

    def test_cache_events_from_artifacts(self, tmp_path):
        dataset = load_workload("paper-default", scale=0.05)
        path = tmp_path / "run.jsonl"
        with use_runlog(RunLog(path)):
            make_algorithm("IN", 0.5).compute(dataset)
            make_algorithm("IN", 0.5).compute(dataset)
        names = [e["event"] for e in read_events(path)]
        assert "cache_miss" in names
        assert "cache_hit" in names


# ---------------------------------------------------------------------------
# Resource sampler
# ---------------------------------------------------------------------------


class TestResourceSampler:
    def test_start_stop_leaves_no_leaks(self):
        threads_before = threading.active_count()
        callbacks_before = len(gc.callbacks)
        sampler = ResourceSampler(interval=0.01)
        sampler.start()
        assert sampler.running
        time.sleep(0.05)
        sampler.stop()
        assert not sampler.running
        assert threading.active_count() == threads_before
        assert len(gc.callbacks) == callbacks_before
        assert sampler.samples_taken >= 1

    def test_sample_once_populates_gauges(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(
            interval=60.0, registry=registry, queue_depth_fn=lambda: 7
        )
        sampler.start()
        try:
            sampler.sample_once()
        finally:
            sampler.stop()
        assert registry.gauge("process_rss_bytes", "").value() > 0
        assert registry.gauge("process_cpu_seconds", "").value() > 0
        assert registry.gauge("pool_queue_depth", "").value() == 7
        assert (
            registry.gauge("process_rss_peak_bytes", "").value()
            >= registry.gauge("process_rss_bytes", "").value()
        )

    def test_gc_pauses_observed(self):
        registry = MetricsRegistry()
        with ResourceSampler(interval=60.0, registry=registry):
            gc.collect()
        assert (
            registry.counter(
                "gc_collections_total", "", labelnames=("generation",)
            ).value(generation="2")
            >= 1
        )
        snap = registry.histogram("gc_pause_seconds", "").snapshot()
        assert snap["count"] >= 1

    def test_restart_resets_peak_rss(self):
        # Regression: peak_rss_bytes used to carry over between
        # start/stop cycles, so a restarted sampler reported the old
        # run's high-water mark forever.
        registry = MetricsRegistry()
        sampler = ResourceSampler(interval=60.0, registry=registry)
        sampler.start()
        try:
            sampler.sample_once()
            first_peak = sampler.peak_rss_bytes
            assert first_peak > 0
        finally:
            sampler.stop()
        sampler.peak_rss_bytes = first_peak * 100  # simulate a stale peak
        sampler.start()
        try:
            assert sampler.peak_rss_bytes == 0  # reset on start
            sampler.sample_once()
            assert 0 < sampler.peak_rss_bytes < first_peak * 100
            # the gauge tracks this run's peak, not the stale one
            assert (
                registry.gauge("process_rss_peak_bytes", "").value()
                == sampler.peak_rss_bytes
            )
        finally:
            sampler.stop()

    def test_double_start_rejected(self):
        sampler = ResourceSampler(interval=60.0)
        sampler.start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()
        sampler.stop()  # idempotent

    def test_profile_phase_disabled_by_default(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_PROFILE_DIR", raising=False)
        with profile_phase("NL.candidates"):
            pass  # no env var: must be a plain no-op

    def test_profile_phase_writes_pstats(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path))
        with profile_phase("NL.candidates"):
            sum(range(1000))
        dumps = list(tmp_path.glob("NL.candidates.*.pstats"))
        assert len(dumps) == 1
        import pstats

        stats = pstats.Stats(str(dumps[0]))
        assert stats.total_calls >= 1


# ---------------------------------------------------------------------------
# Perf-regression tracker
# ---------------------------------------------------------------------------


class TestPerfHistory:
    def test_record_roundtrip(self, tmp_path):
        history = PerfHistory(tmp_path / "BENCH_t.json")
        entry = history.record(
            "fp1", "NL", 0.5,
            execution={"workers": 2},
            counters={"pairs": 100},
            label="abc123",
        )
        (loaded,) = history.load()
        assert loaded.key == entry.key
        assert loaded.elapsed_seconds == 0.5
        assert loaded.counters == {"pairs": 100.0}
        assert loaded.label == "abc123"
        assert loaded.recorded_at > 0

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"format_version": 99, "entries": []}')
        with pytest.raises(ValueError):
            PerfHistory(path).load()

    def test_injected_regression_flagged(self, tmp_path):
        """The acceptance fixture: a +25% latency regression trips a 20%
        threshold; the sibling series stays green."""
        history = PerfHistory(tmp_path / "BENCH_t.json")
        for elapsed in (1.0, 1.02, 0.98):
            history.record("fp1", "NL", elapsed)
            history.record("fp1", "IN", elapsed / 10)
        history.record("fp1", "NL", 1.25)  # the regression
        history.record("fp1", "IN", 0.101)  # within noise
        report = history.check(threshold="20%")
        assert not report.ok
        (regression,) = report.regressions
        assert regression.algorithm == "NL"
        assert regression.metric == "elapsed_seconds"
        assert regression.ratio == pytest.approx(0.25, abs=0.01)
        assert "REGRESSION" in report.describe()

    def test_no_regression_under_threshold(self, tmp_path):
        history = PerfHistory(tmp_path / "BENCH_t.json")
        for elapsed in (1.0, 1.05, 1.1):
            history.record("fp1", "NL", elapsed)
        report = history.check(threshold="20%")
        assert report.ok
        assert report.series_checked == 1

    def test_counter_regressions_checked_too(self, tmp_path):
        history = PerfHistory(tmp_path / "BENCH_t.json")
        history.record("fp1", "NL", 1.0, counters={"pairs": 1000})
        history.record("fp1", "NL", 1.0, counters={"pairs": 2000})
        report = history.check(threshold="20%")
        assert [r.metric for r in report.regressions] == ["pairs"]

    def test_short_series_skipped(self, tmp_path):
        history = PerfHistory(tmp_path / "BENCH_t.json")
        history.record("fp1", "NL", 1.0)
        report = history.check()
        assert report.ok
        assert report.series_skipped == 1

    def test_different_execution_is_a_different_series(self, tmp_path):
        history = PerfHistory(tmp_path / "BENCH_t.json")
        history.record("fp1", "IN", 1.0)
        history.record("fp1", "IN", 5.0, execution={"workers": 4})
        assert len(history.series()) == 2
        assert history.check(threshold="20%").ok

    def test_parse_threshold_spellings(self):
        assert parse_threshold("20%") == pytest.approx(0.2)
        assert parse_threshold("0.2") == pytest.approx(0.2)
        assert parse_threshold(20) == pytest.approx(0.2)
        assert parse_threshold(0.2) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            parse_threshold(-1)


class TestPerfCli:
    def test_record_report_check_roundtrip(self, tmp_path, capsys):
        history = str(tmp_path / "BENCH_cli.json")
        for _ in range(2):
            code = cli_main(
                [
                    "perf", "record",
                    "--history", history,
                    "--workload", "paper-default",
                    "--scale", "0.05",
                    "--algorithm", "NL",
                ]
            )
            assert code == 0
        out = capsys.readouterr().out
        assert "recorded NL" in out

        assert cli_main(["perf", "report", "--history", history]) == 0
        assert "NL" in capsys.readouterr().out

        assert (
            cli_main(
                ["perf", "check", "--history", history,
                 "--threshold", "1000%"]
            )
            == 0
        )
        capsys.readouterr()

        # Inject a fat regression and verify the non-zero exit.
        perf = PerfHistory(history)
        base = perf.load()[-1]
        perf.record(
            base.fingerprint,
            base.algorithm,
            base.elapsed_seconds * 10,
            counters=base.counters,
        )
        assert (
            cli_main(
                ["perf", "check", "--history", history, "--threshold", "20%"]
            )
            == 1
        )
        assert "REGRESSION" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Pooled progress / chunk ETA
# ---------------------------------------------------------------------------


class TestChunkEta:
    def test_eta_from_chunks(self):
        assert eta_from_chunks(5, 10, 2.0) == pytest.approx(2.0)
        assert eta_from_chunks(0, 10, 2.0) is None
        assert eta_from_chunks(10, 10, 2.0) == 0.0
        assert eta_from_chunks(5, None, 2.0) is None

    def test_update_prefers_chunk_eta_when_pooled(self):
        fake_time = [0.0]
        events = []
        reporter = ProgressReporter(
            events.append, min_interval=0.0, clock=lambda: fake_time[0]
        )
        fake_time[0] = 2.0
        # Pair budget says 0 left; the chunk ledger says half-way.
        reporter.update(
            5, 10,
            pairs_examined=100, pair_budget=100,
            chunks_done=5, chunks_total=10,
        )
        assert events[0].eta_seconds == pytest.approx(2.0)
        assert events[0].chunks_total == 10

    def test_describe_mentions_chunks_and_steals(self):
        event = ProgressEvent(
            phase="IN.pool", done=6, total=12,
            elapsed_seconds=1.0, chunks_done=6, chunks_total=12,
            chunks_stolen=2,
        )
        text = event.describe()
        assert "6/12 chunks" in text
        assert "2 stolen" in text

    def test_pooled_run_feeds_reporter(self):
        dataset = load_workload("zipf-heavy", scale=0.05)
        events = []
        engine = make_algorithm(
            "IN", 0.5, execution=ExecutionConfig(workers=2)
        )
        engine.progress_reporter = ProgressReporter(
            events.append, min_interval=0.0
        )
        engine.compute(dataset)
        assert events, "the pool never heartbeat"
        final = events[-1]
        assert final.chunks_total and final.chunks_done == final.chunks_total
        assert final.phase == "IN.pool"


# ---------------------------------------------------------------------------
# OpenMetrics exposition
# ---------------------------------------------------------------------------


class TestOpenMetrics:
    def test_counter_family_drops_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter(
            "runs_total", "Total runs", labelnames=("algorithm",)
        ).inc(3, algorithm="NL")
        lines = registry.to_openmetrics().splitlines()
        assert "# TYPE runs counter" in lines
        assert "# HELP runs Total runs" in lines
        assert 'runs_total{algorithm="NL"} 3' in lines
        assert lines[-1] == "# EOF"

    def test_histogram_and_gauge_families(self):
        registry = MetricsRegistry()
        registry.gauge("depth", "Depth").set(2)
        hist = registry.histogram("lat_seconds", "Lat", buckets=(0.5,))
        hist.observe(0.25)
        text = registry.to_openmetrics()
        assert "# TYPE depth gauge" in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert text.endswith("# EOF\n") or text.endswith("# EOF")


# ---------------------------------------------------------------------------
# Disabled-observability overhead guard
# ---------------------------------------------------------------------------


class TestDisabledObsOverhead:
    def test_noop_hooks_are_cheap_relative_to_nl_smoke(self):
        """With everything disabled, the telemetry hooks a run performs
        (noop runlog emits, noop span entries, enabled checks) must stay
        well under 3% of the NL smoke runtime.  Measured as min-of-N on
        both sides to shrug off scheduler noise."""
        dataset = load_workload("paper-default", scale=0.05)
        algorithm = make_algorithm("NL", 0.5)

        run_seconds = min(
            _timed(lambda: algorithm.compute(dataset)) for _ in range(3)
        )

        # A generous over-estimate of the disabled hook calls one compute()
        # makes (run/pool/cache emits + span opens + enabled checks).
        calls = 1000
        log = obs_runlog.get_runlog()
        tracer = obs_tracing.get_tracer()
        assert not log.enabled
        assert not obs_metrics.is_enabled()

        def hooks():
            for _ in range(calls):
                if log.enabled:
                    log.emit("never")
                with tracer.span("noop", a=1):
                    pass
                obs_tracing.current_trace_context()

        hook_seconds = min(_timed(hooks) for _ in range(3))
        assert hook_seconds < 0.03 * run_seconds, (
            f"disabled-obs hooks cost {hook_seconds:.6f}s vs"
            f" {run_seconds:.6f}s NL smoke run (>3%)"
        )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
