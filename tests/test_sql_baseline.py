"""Tests for the direct SQL implementation (Algorithm 1)."""

from fractions import Fraction

import pytest

from repro.core.algorithms.sql_baseline import (
    SqlBaselineAlgorithm,
    build_skyline_sql,
)
from repro.core.groups import GroupedDataset
from repro.data.movies import figure1_directors_dataset


class TestQueryText:
    def test_two_dimensions_structure(self):
        sql = build_skyline_sql(2, Fraction(1, 2))
        assert "Y.a0 >= X.a0" in sql
        assert "Y.a1 >= X.a1" in sql
        assert "Y.a0 > X.a0 OR Y.a1 > X.a1" in sql
        assert "GROUP BY X.gid, Y.gid" in sql
        # gamma = 1/2 appears as integer cross multiplication
        assert "COUNT(*) * 2 > 1 * (X.num * Y.num)" in sql
        # Definition 3's p = 1 clause
        assert "COUNT(*) = X.num * Y.num" in sql

    def test_one_dimension(self):
        sql = build_skyline_sql(1, Fraction(3, 4))
        assert "Y.a0 >= X.a0" in sql
        assert "COUNT(*) * 4 > 3 * (X.num * Y.num)" in sql

    def test_zero_dimensions_rejected(self):
        with pytest.raises(ValueError):
            build_skyline_sql(0, Fraction(1, 2))


class TestExecution:
    def test_figure4b(self):
        result = SqlBaselineAlgorithm(0.5).compute(
            figure1_directors_dataset()
        )
        assert result.as_set() == {
            "Coppola", "Jackson", "Kershner", "Tarantino"
        }

    def test_gamma_one_requires_full_domination(self):
        dataset = GroupedDataset(
            {"a": [[2, 2], [0, 0]], "b": [[1, 1]], "c": [[0.5, 0.5]]}
        )
        # b fully dominates c; a only half-dominates b.
        result = SqlBaselineAlgorithm(1.0).compute(dataset)
        assert result.as_set() == {"a", "b"}

    def test_self_comparison_excluded(self):
        # A single heterogeneous group must never eliminate itself.
        dataset = GroupedDataset({"solo": [[0, 0], [1, 1], [2, 2]]})
        result = SqlBaselineAlgorithm(0.5).compute(dataset)
        assert result.keys == ["solo"]

    def test_keys_preserved_in_dataset_order(self):
        dataset = GroupedDataset(
            {"z": [[5, 5]], "a": [[6, 6]], "m": [[5.5, 5.5]]}
        )
        result = SqlBaselineAlgorithm(0.5).compute(dataset)
        assert result.keys == ["a"]

    def test_three_dimensions(self):
        dataset = GroupedDataset(
            {
                "good": [[3, 3, 3], [4, 4, 4]],
                "bad": [[1, 1, 1], [2, 2, 2]],
                "odd": [[5, 0, 0]],
            }
        )
        result = SqlBaselineAlgorithm(0.5).compute(dataset)
        assert result.as_set() == {"good", "odd"}

    def test_create_indexes_option(self):
        dataset = GroupedDataset({"a": [[1, 1]], "b": [[2, 2]]})
        result = SqlBaselineAlgorithm(0.5, create_indexes=True).compute(
            dataset
        )
        assert result.as_set() == {"b"}

    def test_stats_reported(self):
        result = SqlBaselineAlgorithm(0.5).compute(
            GroupedDataset({"a": [[1, 1]]})
        )
        assert result.stats.algorithm == "SQL"
        assert result.stats.elapsed_seconds >= 0

    def test_min_directions_via_dataset(self):
        # Normalisation happens in GroupedDataset, the SQL sees maximise-only.
        dataset = GroupedDataset(
            {"cheap": [[1.0]], "pricey": [[9.0]]}, directions=["min"]
        )
        result = SqlBaselineAlgorithm(0.5).compute(dataset)
        assert result.as_set() == {"cheap"}
