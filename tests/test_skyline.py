"""Tests for the record-wise skyline substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.skyline import (
    skyline,
    skyline_bbs,
    skyline_bnl,
    skyline_dnc,
    skyline_mask,
    skyline_naive,
    skyline_sfs,
)
from repro.data.movies import MOVIE_ROWS

ALGORITHMS = ("naive", "bnl", "sfs", "dnc", "bbs")


class TestKnownResults:
    def test_paper_figure2(self):
        """Example 1: the Movie-table skyline is Pulp Fiction + Godfather."""
        values = [(pop, qual) for _, _, _, pop, qual in MOVIE_ROWS]
        titles = [title for title, *_ in MOVIE_ROWS]
        for algorithm in ALGORITHMS:
            mask = skyline_mask(values, algorithm=algorithm)
            surviving = {t for t, keep in zip(titles, mask) if keep}
            assert surviving == {"Pulp Fiction", "The Godfather"}

    def test_single_record(self):
        for algorithm in ALGORITHMS:
            mask = skyline_mask([[1.0, 2.0]], algorithm=algorithm)
            assert mask.tolist() == [True]

    def test_duplicates_all_kept(self):
        # Equal records do not dominate each other.
        values = [[1.0, 1.0], [1.0, 1.0], [0.0, 0.0]]
        for algorithm in ALGORITHMS:
            mask = skyline_mask(values, algorithm=algorithm)
            assert mask.tolist() == [True, True, False]

    def test_min_direction(self):
        values = [[1.0, 10.0], [2.0, 20.0]]
        # Minimising both: [1, 10] dominates [2, 20].
        mask = skyline_mask(values, directions="min")
        assert mask.tolist() == [True, False]

    def test_mixed_directions(self):
        # maximise first, minimise second
        values = [[5.0, 1.0], [5.0, 2.0], [4.0, 0.5]]
        mask = skyline_mask(values, directions=["max", "min"])
        assert mask.tolist() == [True, False, True]

    def test_skyline_returns_original_rows(self):
        values = np.array([[1.0, 1.0], [2.0, 2.0]])
        result = skyline(values)
        assert result.tolist() == [[2.0, 2.0]]

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            skyline_mask([[1.0]], algorithm="quantum")

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            skyline_mask(np.zeros((2, 2, 2)))


class TestAlgorithmAgreement:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=100_000),
    )
    def test_all_algorithms_agree(self, n, d, seed):
        rng = np.random.default_rng(seed)
        # Coarse grid: plenty of ties and duplicates.
        values = rng.integers(0, 5, size=(n, d)).astype(float)
        masks = [
            skyline_mask(values, algorithm=a).tolist() for a in ALGORITHMS
        ]
        assert all(mask == masks[0] for mask in masks[1:])

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=25),
        st.integers(min_value=0, max_value=100_000),
    )
    def test_skyline_is_undominated_and_dominates_rest(self, n, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 5, size=(n, 3)).astype(float)
        mask = skyline_mask(values)
        data = np.asarray(values, dtype=float)

        def dominated_by_any(record):
            ge = np.all(data >= record, axis=1)
            gt = np.any(data > record, axis=1)
            return bool(np.any(ge & gt))

        for record, keep in zip(data, mask):
            assert keep == (not dominated_by_any(record))
        assert mask.any()  # a skyline is never empty

    def test_internal_algorithms_on_normalised_data(self, rng):
        data = rng.integers(0, 4, size=(20, 2)).astype(float)
        assert (
            skyline_naive(data)
            == skyline_bnl(data)
            == skyline_sfs(data)
            == skyline_dnc(data)
            == skyline_bbs(data)
        )

    def test_bbs_empty(self):
        import numpy as np

        assert skyline_bbs(np.empty((0, 2))) == []
