"""End-to-end integration flows across subsystems.

Each test exercises a realistic multi-module pipeline: CLI generation →
CSV → query dialect → algorithms → persistence → reload, the way a
downstream user would chain the pieces.
"""

import pytest

from repro.cli import main
from repro.core.algorithms import make_algorithm
from repro.core.cube import skyline_cube
from repro.data.nba import STAT_COLUMNS, nba_table
from repro.data.store import load_grouped, save_grouped
from repro.harness.persistence import load_results, save_results
from repro.harness.runner import run_algorithms
from repro.query.executor import execute
from repro.query.parser import parse
from repro.query.render import render_query
from repro.relational.csvio import load_csv, save_csv
from repro.relational.operators import grouped_dataset_from_table


class TestCsvToQueryPipeline:
    def test_generate_then_query_then_rank(self, tmp_path, capsys):
        csv_path = tmp_path / "workload.csv"
        assert main(
            [
                "generate", "--records", "300", "--dims", "2",
                "--group-size", "30", "--distribution", "anticorrelated",
                "--out", str(csv_path),
            ]
        ) == 0
        capsys.readouterr()

        # Query the generated file through the SQL dialect.
        table = load_csv(csv_path)
        result = execute(
            "SELECT group, count(*) AS n FROM workload GROUP BY group"
            " SKYLINE OF a0 MAX, a1 MAX USING ALGORITHM LO PRUNE SAFE"
            " ORDER BY group",
            {"workload": table},
        )
        assert result.skyline_result is not None
        surviving_sql = {row[0] for row in result.table.rows}

        # The same computation through the Python API must agree.
        dataset = grouped_dataset_from_table(table, ["group"], ["a0", "a1"])
        api = make_algorithm("NL", 0.5, prune_policy="safe").compute(dataset)
        assert surviving_sql == api.as_set()

        # ...and the stats/rank commands run on the same file.
        assert main(
            [
                "stats", "--csv", str(csv_path),
                "--group-by", "group", "--of", "a0:max,a1:max",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "suggested algorithm" in out

    def test_nba_csv_round_trip_preserves_results(self, tmp_path):
        table = nba_table(seed=3, target_rows=600)
        path = tmp_path / "nba.csv"
        save_csv(table, path)
        reloaded = load_csv(path)
        measures = list(STAT_COLUMNS[:4])
        direct = grouped_dataset_from_table(table, ["team"], measures)
        roundtripped = grouped_dataset_from_table(
            reloaded, ["team"], measures
        )
        a = make_algorithm("LO", 0.5).compute(direct)
        b = make_algorithm("LO", 0.5).compute(roundtripped)
        assert a.as_set() == b.as_set()


class TestBinaryStoreToAlgorithms:
    def test_store_reload_compute(self, tmp_path):
        table = nba_table(seed=5, target_rows=500)
        dataset = grouped_dataset_from_table(
            table, ["pos"], ["pts", "reb", "ast"]
        )
        path = tmp_path / "nba.npz"
        save_grouped(dataset, path)
        reloaded = load_grouped(path)
        for name in ("NL", "LO", "AD"):
            original = make_algorithm(name, 0.5).compute(dataset)
            restored = make_algorithm(name, 0.5).compute(reloaded)
            assert original.as_set() == restored.as_set(), name


class TestBenchmarkingPipeline:
    def test_measure_persist_compare(self, tmp_path, capsys):
        table = nba_table(seed=9, target_rows=400)
        dataset = grouped_dataset_from_table(table, ["pos"], ["pts", "reb"])
        results = run_algorithms(
            dataset, algorithms=("NL", "LO"), experiment="e2e",
            params={"rows": 400},
        )
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        save_results(results, path_a)
        save_results(results, path_b)
        loaded = load_results(path_a)
        assert {r.algorithm for r in loaded} == {"NL", "LO"}
        assert main(["compare", str(path_a), str(path_b)]) == 0
        assert "speed-up" in capsys.readouterr().out


class TestQueryRenderingPipeline:
    def test_programmatic_query_runs(self):
        table = nba_table(seed=2, target_rows=300)
        ast = parse(
            "SELECT team FROM nba WHERE year >= 1990 GROUP BY team"
            " SKYLINE OF pts MAX, reb MAX WITH GAMMA 0.6"
        )
        rendered = render_query(ast)
        first = execute(ast, {"nba": table})
        second = execute(rendered, {"nba": table})
        assert first.table == second.table


class TestCubeOverRealSchema:
    def test_cube_matches_figure14_panels(self):
        table = nba_table(seed=7, target_rows=500)
        measures = ["pts", "reb", "ast", "stl"]
        cube = skyline_cube(
            table, ["team", "year"], measures, algorithm="LO"
        )
        # The cube's team panel equals a direct Figure-14-style run.
        direct = grouped_dataset_from_table(table, ["team"], measures)
        expected = make_algorithm("LO", 0.5).compute(direct)
        assert cube[("team",)].as_set() == expected.as_set()
        summary = cube.summary_table()
        assert len(summary) == 3
