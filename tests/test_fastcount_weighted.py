"""Tests for the Fenwick tree, 2-d counting kernel and weighted dominance."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fastcount import count_dominating_pairs_2d
from repro.core.gamma import count_dominating_pairs, dominance_probability
from repro.core.weighted import (
    count_weighted_dominating_pairs,
    weighted_aggregate_skyline,
    weighted_dominance_probability,
)
from repro.index.fenwick import FenwickTree
from tests.conftest import exact_aggregate_skyline, random_grouped_dataset


class TestFenwickTree:
    def test_empty(self):
        tree = FenwickTree(0)
        assert len(tree) == 0
        assert tree.total == 0
        assert tree.suffix_sum(0) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_add_and_sums(self):
        tree = FenwickTree(5)
        tree.add(0, 2)
        tree.add(3, 5)
        tree.add(4, 1)
        assert tree.total == 8
        assert tree.prefix_sum(0) == 2
        assert tree.prefix_sum(3) == 7
        assert tree.prefix_sum(4) == 8
        assert tree.prefix_sum(-1) == 0
        assert tree.suffix_sum(0) == 8
        assert tree.suffix_sum(3) == 6
        assert tree.suffix_sum(4) == 1

    def test_out_of_range_add(self):
        tree = FenwickTree(2)
        with pytest.raises(IndexError):
            tree.add(2)

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=30))
    def test_sums_match_naive(self, additions):
        tree = FenwickTree(10)
        counts = [0] * 10
        for index in additions:
            tree.add(index)
            counts[index] += 1
        for boundary in range(10):
            assert tree.prefix_sum(boundary) == sum(counts[: boundary + 1])
            assert tree.suffix_sum(boundary) == sum(counts[boundary:])


def naive_weighted(s, ws, r, wr):
    total = 0
    for a, w_a in zip(s, ws):
        for b, w_b in zip(r, wr):
            if all(x >= y for x, y in zip(a, b)) and any(
                x > y for x, y in zip(a, b)
            ):
                total += w_a * w_b
    return total


class TestFastCount2d:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_matches_naive_with_heavy_ties(self, n_s, n_r, levels, seed):
        rng = np.random.default_rng(seed)
        s = rng.integers(0, levels, size=(n_s, 2)).astype(float)
        r = rng.integers(0, levels, size=(n_r, 2)).astype(float)
        expected = naive_weighted(s, [1] * n_s, r, [1] * n_r)
        assert count_dominating_pairs_2d(s, r) == expected

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_weighted_matches_naive(self, n_s, n_r, seed):
        rng = np.random.default_rng(seed)
        s = rng.integers(0, 4, size=(n_s, 2)).astype(float)
        r = rng.integers(0, 4, size=(n_r, 2)).astype(float)
        ws = rng.integers(0, 5, size=n_s)
        wr = rng.integers(0, 5, size=n_r)
        assert count_dominating_pairs_2d(s, r, ws, wr) == naive_weighted(
            s, ws, r, wr
        )

    def test_gamma_kernel_uses_fast_path_consistently(self, rng):
        s = rng.integers(0, 100, size=(120, 2)).astype(float)
        r = rng.integers(0, 100, size=(120, 2)).astype(float)
        # 14 400 pairs: above the fast-path threshold.
        fast = count_dominating_pairs(s, r)
        naive = naive_weighted(s, [1] * 120, r, [1] * 120)
        assert fast == naive

    def test_wrong_dimensionality_rejected(self):
        with pytest.raises(ValueError):
            count_dominating_pairs_2d(np.ones((2, 3)), np.ones((2, 3)))

    def test_weight_validation(self):
        s = np.ones((2, 2))
        with pytest.raises(ValueError):
            count_dominating_pairs_2d(s, s, np.array([1.5, 1.0]), None)
        with pytest.raises(ValueError):
            count_dominating_pairs_2d(s, s, np.array([-1, 1]), None)
        with pytest.raises(ValueError):
            count_dominating_pairs_2d(s, s, np.array([1]), None)


class TestWeightedDominance:
    def test_uniform_weights_recover_definition3(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=4, max_group_size=5)
        for s in dataset:
            for r in dataset:
                if s.key == r.key:
                    continue
                weighted = weighted_dominance_probability(
                    s.values, [1] * s.size, r.values, [1] * r.size
                )
                assert weighted == dominance_probability(s, r)

    def test_weights_shift_probability(self):
        p = weighted_dominance_probability(
            [[5, 5], [1, 1]], [9, 1], [[3, 3]], [1]
        )
        assert p == Fraction(9, 10)

    def test_zero_weight_records_ignored(self):
        p = weighted_dominance_probability(
            [[5, 5], [1, 1]], [1, 0], [[3, 3]], [2]
        )
        assert p == 1

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_dominance_probability([[1, 1]], [0], [[2, 2]], [1])

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=3, max_value=5),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_higher_dimensional_weighted_count(self, n_s, n_r, d, seed):
        rng = np.random.default_rng(seed)
        s = rng.integers(0, 3, size=(n_s, d)).astype(float)
        r = rng.integers(0, 3, size=(n_r, d)).astype(float)
        ws = rng.integers(1, 4, size=n_s)
        wr = rng.integers(1, 4, size=n_r)
        assert count_weighted_dominating_pairs(
            s, ws, r, wr
        ) == naive_weighted(s, ws, r, wr)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1_000_000))
    def test_monotone_transformation_stability(self, seed):
        rng = np.random.default_rng(seed)
        s = rng.integers(0, 5, size=(4, 2)).astype(float)
        r = rng.integers(0, 5, size=(5, 2)).astype(float)
        ws = rng.integers(1, 4, size=4)
        wr = rng.integers(1, 4, size=5)
        before = weighted_dominance_probability(s, ws, r, wr)
        after = weighted_dominance_probability(s**3, ws, r**3, wr)
        assert before == after


class TestWeightedSkyline:
    def test_uniform_weights_match_unweighted(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=6, max_group_size=4)
        weighted_input = {
            g.key: (g.values, [1] * g.size) for g in dataset
        }
        result = weighted_aggregate_skyline(weighted_input)
        assert result.as_set() == exact_aggregate_skyline(dataset, 0.5)

    def test_weights_flip_a_verdict(self):
        # Unweighted, "mixed" wins only half the pairs against "steady";
        # weighting its strong record makes it dominate.
        groups_uniform = {
            "mixed": ([[5, 5], [1, 1]], [1, 1]),
            "steady": ([[3, 3]], [1]),
        }
        both = weighted_aggregate_skyline(groups_uniform)
        assert both.as_set() == {"mixed", "steady"}
        groups_weighted = {
            "mixed": ([[5, 5], [1, 1]], [9, 1]),
            "steady": ([[3, 3]], [1]),
        }
        only_mixed = weighted_aggregate_skyline(groups_weighted)
        assert only_mixed.as_set() == {"mixed"}

    def test_directions(self):
        result = weighted_aggregate_skyline(
            {"cheap": ([[1.0]], [3]), "pricey": ([[9.0]], [3])},
            directions=["min"],
        )
        assert result.as_set() == {"cheap"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_aggregate_skyline({})

    def test_stats(self):
        result = weighted_aggregate_skyline(
            {"a": ([[1, 1]], [1]), "b": ([[2, 2]], [1])}
        )
        assert result.stats.algorithm == "WNL"
        assert result.stats.group_comparisons == 1
