"""Tests for the skyline cube and dataset diagnostics."""

import pytest

from repro.core.cube import skyline_cube
from repro.core.diagnostics import dataset_statistics, suggest_algorithm
from repro.core.groups import GroupedDataset
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.relational.operators import grouped_dataset_from_table
from repro.relational.table import Table
from tests.conftest import exact_aggregate_skyline


@pytest.fixture
def sales():
    return Table(
        ["region", "channel", "units", "margin"],
        [
            ("north", "web", 100, 20),
            ("north", "store", 80, 25),
            ("south", "web", 60, 10),
            ("south", "store", 50, 8),
            ("east", "web", 90, 22),
        ],
    )


class TestSkylineCube:
    def test_all_groupings_present(self, sales):
        cube = skyline_cube(sales, ["region", "channel"], ["units", "margin"])
        assert len(cube) == 3
        assert cube.groupings() == [
            ("channel",), ("region",), ("region", "channel"),
        ]
        assert ("region",) in cube
        assert ["region"] in cube  # sequences accepted

    def test_each_level_matches_direct_computation(self, sales):
        cube = skyline_cube(
            sales, ["region", "channel"], ["units", "margin"],
            algorithm="NL", prune_policy="safe",
        )
        for grouping in cube.groupings():
            dataset = grouped_dataset_from_table(
                sales, list(grouping), ["units", "margin"]
            )
            assert cube[grouping].as_set() == exact_aggregate_skyline(
                dataset, 0.5
            ), grouping
            assert cube.group_count(grouping) == len(dataset)

    def test_level_bounds(self, sales):
        only_single = skyline_cube(
            sales, ["region", "channel"], ["units"], max_attributes=1
        )
        assert only_single.groupings() == [("channel",), ("region",)]
        only_pairs = skyline_cube(
            sales, ["region", "channel"], ["units"], min_attributes=2
        )
        assert only_pairs.groupings() == [("region", "channel")]

    def test_summary_table(self, sales):
        cube = skyline_cube(sales, ["region"], ["units", "margin"])
        summary = cube.summary_table()
        assert summary.columns[0] == "grouping"
        assert len(summary) == 1
        row = dict(zip(summary.columns, summary.rows[0]))
        assert row["groups"] == 3

    def test_validation(self, sales):
        with pytest.raises(ValueError):
            skyline_cube(sales, [], ["units"])
        with pytest.raises(KeyError):
            skyline_cube(sales, ["planet"], ["units"])
        with pytest.raises(ValueError):
            skyline_cube(sales, ["region"], ["units"], min_attributes=0)
        with pytest.raises(ValueError):
            skyline_cube(
                sales, ["region"], ["units"],
                min_attributes=2, max_attributes=1,
            )

    def test_duplicate_attributes_deduplicated(self, sales):
        cube = skyline_cube(sales, ["region", "region"], ["units"])
        assert cube.groupings() == [("region",)]

    def test_gamma_and_directions_forwarded(self, sales):
        cube = skyline_cube(
            sales, ["region"], ["units"], gamma=1.0, directions=["min"]
        )
        assert cube.gamma == 1.0
        # minimising units: south's records are lowest
        assert "south" in cube[("region",)].as_set()


class TestDiagnostics:
    def test_statistics_fields(self):
        dataset = GroupedDataset(
            {"a": [[1, 1]], "b": [[2, 2], [3, 3], [4, 4]]}
        )
        stats = dataset_statistics(dataset)
        assert stats.groups == 2
        assert stats.records == 4
        assert stats.dimensions == 2
        assert stats.min_group_size == 1
        assert stats.max_group_size == 3
        assert stats.pair_budget == 3  # 1*3 cross pairs
        assert "2 groups" in stats.describe()

    def test_pair_budget_formula(self):
        dataset = GroupedDataset(
            {"a": [[1, 1]] * 2, "b": [[2, 2]] * 3, "c": [[3, 3]] * 4}
        )
        stats = dataset_statistics(dataset)
        # cross pairs: 2*3 + 2*4 + 3*4 = 26
        assert stats.pair_budget == 26

    def test_suggest_small_input(self):
        dataset = GroupedDataset({"a": [[1, 1]], "b": [[2, 2]]})
        assert suggest_algorithm(dataset) == "NL"

    def test_suggest_high_overlap(self):
        dataset = generate_grouped(
            SyntheticSpec(
                n_records=2000,
                avg_group_size=50,
                distribution="anticorrelated",
                group_spread=0.9,
                seed=1,
            )
        )
        assert suggest_algorithm(dataset) == "SI"

    def test_suggest_separated(self):
        dataset = generate_grouped(
            SyntheticSpec(
                n_records=2000,
                avg_group_size=50,
                distribution="anticorrelated",
                group_spread=0.05,
                seed=1,
            )
        )
        assert suggest_algorithm(dataset) == "LO"

    def test_size_skew(self):
        dataset = generate_grouped(
            SyntheticSpec(
                n_records=1000,
                avg_group_size=20,
                size_distribution="zipf",
                zipf_exponent=1.2,
                seed=0,
            )
        )
        stats = dataset_statistics(dataset)
        assert stats.size_skew > 3


class TestDiagnosticsGuards:
    """Input validation and metrics publishing of dataset_statistics."""

    def test_zero_group_dataset_rejected(self):
        class _Hollow:
            dimensions = 2
            groups = []

            def __iter__(self):
                return iter(self.groups)

            def __len__(self):
                return 0

        with pytest.raises(ValueError, match="at least one group"):
            dataset_statistics(_Hollow())

    def test_empty_group_rejected_with_key_in_message(self):
        from types import SimpleNamespace

        class _WithEmpty:
            dimensions = 2

            def __init__(self):
                self.groups = [
                    SimpleNamespace(key="full", size=3),
                    SimpleNamespace(key="hollow", size=0),
                ]

            def __iter__(self):
                return iter(self.groups)

            def __len__(self):
                return len(self.groups)

        with pytest.raises(ValueError, match="hollow"):
            dataset_statistics(_WithEmpty())

    def test_pair_budget_gauge_published(self):
        from repro.obs.metrics import use_registry

        dataset = GroupedDataset(
            {"a": [[1, 1]] * 2, "b": [[2, 2]] * 3}
        )
        with use_registry() as registry:
            stats = dataset_statistics(dataset)
            gauge = registry.get("skyline_dataset_pair_budget")
            assert gauge is not None
            assert gauge.value() == stats.pair_budget == 6
