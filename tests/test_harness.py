"""Tests for the experiment harness (runner + reporting)."""

import pytest

from repro.core.groups import GroupedDataset
from repro.harness.reporting import (
    format_figure,
    series_table,
    shape_checks,
    speedup_table,
)
from repro.harness.runner import RunResult, run_algorithms, sweep


@pytest.fixture
def dataset():
    return GroupedDataset(
        {"top": [[9, 9], [8, 8]], "mid": [[5, 5]], "low": [[1, 1]]}
    )


class TestRunner:
    def test_run_algorithms_basic(self, dataset):
        results = run_algorithms(
            dataset,
            algorithms=("NL", "LO"),
            experiment="unit",
            params={"n": 4},
        )
        assert [r.algorithm for r in results] == ["NL", "LO"]
        for result in results:
            assert result.skyline_size == 1
            assert result.skyline_keys == frozenset({"top"})
            assert result.elapsed_seconds >= 0
            assert result.params == {"n": 4}

    def test_sql_included(self, dataset):
        results = run_algorithms(dataset, algorithms=("SQL",))
        assert results[0].skyline_keys == frozenset({"top"})

    def test_repeats_keep_minimum(self, dataset):
        results = run_algorithms(dataset, algorithms=("NL",), repeats=3)
        assert len(results) == 1

    def test_repeats_validation(self, dataset):
        with pytest.raises(ValueError):
            run_algorithms(dataset, repeats=0)

    def test_verify_consistency_passes_on_agreement(self, dataset):
        run_algorithms(
            dataset,
            algorithms=("NL", "TR", "SI", "IN", "LO"),
            verify_consistency=True,
        )

    def test_algorithm_options_forwarded(self, dataset):
        results = run_algorithms(
            dataset,
            algorithms=("NL",),
            algorithm_options={"NL": {"use_stopping_rule": False}},
        )
        # Without the stopping rule every record pair is examined.
        assert results[0].record_pairs == 2 * (2 * 1 + 2 * 1 + 1 * 1)

    def test_sweep(self):
        def factory(n):
            return GroupedDataset(
                {f"g{i}": [[float(i), float(i)]] for i in range(n)}
            )

        results = sweep(
            experiment="unit",
            parameter="groups",
            values=[2, 4],
            dataset_factory=factory,
            algorithms=("NL",),
        )
        assert len(results) == 2
        assert results[0].params["groups"] == 2
        assert results[1].params["groups"] == 4


def _fake_results():
    make = lambda p, a, t: RunResult(
        experiment="x",
        params={"n": p},
        algorithm=a,
        elapsed_seconds=t,
        group_comparisons=p,
        record_pairs=p * 10,
        skyline_size=1,
    )
    return [
        make(10, "SQL", 1.0),
        make(10, "NL", 0.5),
        make(10, "LO", 0.1),
        make(20, "SQL", 4.0),
        make(20, "NL", 1.0),
        make(20, "LO", 0.2),
    ]


class TestReporting:
    def test_series_table_layout(self):
        table = series_table(_fake_results(), "n")
        assert table.columns == ("n", "SQL", "NL", "LO")
        assert [r[0] for r in table.rows] == [10, 20]
        assert table.rows[0][1] == 1.0

    def test_series_table_other_metric(self):
        table = series_table(_fake_results(), "n", metric="group_comparisons")
        assert table.rows[0][1] == 10

    def test_series_table_custom_formatter(self):
        table = series_table(
            _fake_results(), "n", formatter=lambda v: f"{v:.1f}s"
        )
        assert table.rows[0][1] == "1.0s"

    def test_speedup_table(self):
        table = speedup_table(_fake_results(), "n", baseline="SQL")
        assert table.columns == ("n", "NL vs SQL", "LO vs SQL")
        assert table.rows[0][1] == 2.0
        assert table.rows[1][2] == 20.0

    def test_speedup_unknown_baseline(self):
        with pytest.raises(ValueError):
            speedup_table(_fake_results(), "n", baseline="GPU")

    def test_shape_checks(self):
        results = _fake_results()
        assert shape_checks(results, "n", faster="LO", slower="SQL")
        assert not shape_checks(results, "n", faster="SQL", slower="LO")
        assert not shape_checks([], "n", faster="LO", slower="SQL")

    def test_format_figure(self):
        table = series_table(_fake_results(), "n")
        text = format_figure(
            "fig0", "a caption", "an expectation", [("panel", table)]
        )
        assert "fig0: a caption" in text
        assert "paper shape: an expectation" in text
        assert "-- panel --" in text
        assert "SQL" in text


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        from repro.harness.persistence import load_results, save_results

        results = _fake_results()
        path = tmp_path / "results.json"
        save_results(results, path)
        loaded = load_results(path)
        assert len(loaded) == len(results)
        for original, restored in zip(results, loaded):
            assert restored.algorithm == original.algorithm
            assert restored.params == original.params
            assert restored.elapsed_seconds == original.elapsed_seconds
            assert restored.group_comparisons == original.group_comparisons

    def test_skyline_keys_stringified(self, tmp_path):
        from repro.harness.persistence import results_from_json, results_to_json
        from repro.harness.runner import RunResult

        result = RunResult(
            "x", {"n": 1}, "NL", 0.1, 1, 1, 2,
            skyline_keys=frozenset({("team", 1999), "solo"}),
        )
        restored = results_from_json(results_to_json([result]))[0]
        assert restored.skyline_size == 2
        assert "solo" in restored.skyline_keys

    def test_version_check(self):
        from repro.harness.persistence import results_from_json

        with pytest.raises(ValueError, match="version"):
            results_from_json('{"version": 99, "results": []}')


class TestObsPayloads:
    """trace/metrics payloads flow through persistence and diff tables."""

    def _result_with_obs(self):
        return RunResult(
            experiment="x",
            params={"n": 10},
            algorithm="LO",
            elapsed_seconds=0.1,
            group_comparisons=5,
            record_pairs=50,
            skyline_size=1,
            trace={"name": "bench.run", "children": []},
            metrics={"skyline_runs_total": {"type": "counter"}},
        )

    def test_obs_payloads_roundtrip(self):
        from repro.harness.persistence import (
            results_from_json,
            results_to_json,
        )

        restored = results_from_json(
            results_to_json([self._result_with_obs()])
        )[0]
        assert restored.trace == {"name": "bench.run", "children": []}
        assert restored.metrics == {
            "skyline_runs_total": {"type": "counter"}
        }

    def test_obs_payloads_stripped_when_disabled(self):
        import json as _json

        from repro.harness.persistence import results_to_json

        payload = _json.loads(
            results_to_json([self._result_with_obs()], include_obs=False)
        )
        record = payload["results"][0]
        assert "trace" not in record and "metrics" not in record

    def test_run_algorithms_collect_obs(self):
        from repro.data.synthetic import SyntheticSpec, generate_grouped
        from repro.harness.runner import run_algorithms

        dataset = generate_grouped(
            SyntheticSpec(n_records=60, avg_group_size=10, dimensions=2)
        )
        results = run_algorithms(
            dataset, ["NL"], gamma=0.75, experiment="t",
            params={"n": 60}, collect_obs=True,
        )
        (result,) = results
        assert result.trace is not None
        # The captured payload is the algorithm's own root span.
        assert result.trace["name"] == "skyline.compute"
        assert "skyline_runs_total" in result.metrics

    def test_counter_delta_table_reports_changes(self):
        from repro.harness.reporting import counter_delta_table

        before = _fake_results()
        after = [
            RunResult(
                experiment=r.experiment,
                params=dict(r.params),
                algorithm=r.algorithm,
                elapsed_seconds=r.elapsed_seconds,
                group_comparisons=r.group_comparisons // 2 or 1,
                record_pairs=r.record_pairs,
                skyline_size=r.skyline_size,
            )
            for r in before
        ]
        table = counter_delta_table(before, after)
        assert "group_comparisons before" in table.columns
        assert len(table.rows) == len(before)
        first = table.rows[0]
        idx = table.columns.index("group_comparisons ratio")
        assert first[idx] == 0.5

    def test_counter_delta_table_empty_when_unchanged(self):
        from repro.harness.reporting import counter_delta_table

        results = _fake_results()
        table = counter_delta_table(results, results)
        assert len(table.rows) == 0
