"""End-to-end reproduction of the paper's introduction (Examples 1-3).

Runs the exact SQL of the paper (modulo the SKYLINE extension's dialect)
through the query layer and checks Figures 2, 3 and 4, plus the
introduction's arguments about why neither sequential pipeline computes the
aggregate skyline.
"""

import numpy as np
import pytest

from repro.core.dominance import dominates
from repro.core.gamma import dominance_probability
from repro.core.skyline import skyline_mask
from repro.data.movies import MOVIE_ROWS, figure1_directors_dataset, movie_table
from repro.query import execute


@pytest.fixture
def catalog():
    return {"movies": movie_table()}


class TestExample1RecordSkyline:
    def test_figure2(self, catalog):
        result = execute(
            "SELECT * FROM movies SKYLINE OF pop MAX, qual MAX", catalog
        )
        titles = {row[0] for row in result.table.rows}
        assert titles == {"Pulp Fiction", "The Godfather"}

    def test_projection(self, catalog):
        result = execute(
            "SELECT title FROM movies SKYLINE OF pop MAX, qual MAX"
            " ORDER BY title",
            catalog,
        )
        assert result.table.rows == [("Pulp Fiction",), ("The Godfather",)]


class TestExample2AggregateQuery:
    def test_figure3(self, catalog):
        result = execute(
            "SELECT director, max(pop), max(qual) FROM movies"
            " GROUP BY director HAVING max(qual) >= 8.0",
            catalog,
        )
        rows = {row[0]: (row[1], row[2]) for row in result.table.rows}
        assert rows == {
            "Cameron": (404, 8.6),
            "Nolan": (371, 8.3),
            "Tarantino": (557, 9.0),
            "Kershner": (362, 8.8),
            "Coppola": (531, 9.2),
            "Jackson": (518, 8.7),
        }


class TestExample3AggregateSkyline:
    @pytest.mark.parametrize("algorithm", ["NL", "TR", "SI", "IN", "LO"])
    def test_figure4b(self, catalog, algorithm):
        result = execute(
            "SELECT director FROM movies GROUP BY director"
            f" SKYLINE OF pop MAX, qual MAX USING ALGORITHM {algorithm}",
            catalog,
        )
        directors = {row[0] for row in result.table.rows}
        assert directors == {"Coppola", "Jackson", "Kershner", "Tarantino"}

    def test_skyline_result_attached(self, catalog):
        result = execute(
            "SELECT director FROM movies GROUP BY director"
            " SKYLINE OF pop MAX, qual MAX",
            catalog,
        )
        assert result.skyline_result is not None
        assert len(result.skyline_result) == 4


class TestSequentialPipelinesDiffer:
    def test_skyline_then_group_loses_jackson(self):
        """Figure 4(a): the record skyline keeps only 2 directors."""
        values = [(pop, qual) for *_, pop, qual in MOVIE_ROWS]
        directors = [d for _, _, d, _, _ in MOVIE_ROWS]
        mask = skyline_mask(values)
        surviving = {d for d, keep in zip(directors, mask) if keep}
        assert surviving == {"Tarantino", "Coppola"}
        # Jackson is in the aggregate skyline but not here.
        assert "Jackson" not in surviving

    def test_group_then_skyline_unfair_to_nolan(self):
        """Figure 3's maxima say Cameron beats Nolan, yet no Cameron movie
        dominates Nolan's only movie (the paper's §1.3 argument)."""
        cameron_max = (404, 8.6)
        nolan_max = (371, 8.3)
        assert dominates(cameron_max, nolan_max)

        cameron_movies = [
            (pop, qual)
            for _, _, d, pop, qual in MOVIE_ROWS
            if d == "Cameron"
        ]
        nolan_movie = next(
            (pop, qual)
            for _, _, d, pop, qual in MOVIE_ROWS
            if d == "Nolan"
        )
        assert not any(dominates(m, nolan_movie) for m in cameron_movies)

    def test_cameron_never_dominates_nolan_at_record_level(self):
        dataset = figure1_directors_dataset()
        p = dominance_probability(dataset["Cameron"], dataset["Nolan"])
        # No Cameron movie dominates Batman Begins, so the group-level
        # probability is zero - the aggregate operator cannot repeat the
        # max-aggregation mistake.
        assert p == 0

    def test_nolan_still_out_for_another_reason(self):
        """Nolan leaves the aggregate skyline only because The Lord of the
        Rings (Jackson) dominates Batman Begins outright."""
        dataset = figure1_directors_dataset()
        ejectors = [
            other
            for other in dataset.keys()
            if other != "Nolan"
            and float(
                dominance_probability(dataset[other], dataset["Nolan"])
            ) > 0.5
        ]
        assert ejectors == ["Jackson"]
        assert dominates((518, 8.7), (371, 8.3))


class TestStarsVsGalaxies:
    def test_aggregate_skyline_is_not_superset_of_record_skyline_directors(
        self,
    ):
        """The title's point: galaxies are judged as wholes.

        Every director of a record-skyline movie happens to be in the
        aggregate skyline here, but the converse fails: Jackson and
        Kershner enter only at the group level.
        """
        values = [(pop, qual) for *_, pop, qual in MOVIE_ROWS]
        directors = [d for _, _, d, _, _ in MOVIE_ROWS]
        mask = skyline_mask(values)
        star_directors = {d for d, keep in zip(directors, mask) if keep}
        galaxy_directors = {"Coppola", "Jackson", "Kershner", "Tarantino"}
        assert star_directors < galaxy_directors

    def test_proposition3_means_no_containment_either_way(self):
        """A group holding a skyline record can still be ejected."""
        dataset = {
            "G1": np.array([[5.0, 5.0], [1.0, 1.0], [1.0, 2.0]]),
            "G2": np.array([[2.0, 3.0]]),
        }
        from repro import aggregate_skyline

        result = aggregate_skyline(dataset, gamma=0.5, algorithm="NL")
        assert result.as_set() == {"G2"}
