"""Tests for the adaptive algorithm and the ASCII chart renderer."""

import pytest

from repro.core.algorithms import make_algorithm
from repro.core.algorithms.adaptive import AdaptiveAlgorithm, estimate_overlap
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.harness.plotting import ascii_chart, chart_from_results
from repro.harness.runner import RunResult
from tests.conftest import exact_aggregate_skyline


def workload(spread: float, seed: int = 0):
    return generate_grouped(
        SyntheticSpec(
            n_records=400,
            avg_group_size=20,
            dimensions=3,
            distribution="anticorrelated",
            group_spread=spread,
            seed=seed,
        )
    )


class TestEstimateOverlap:
    def test_separated_groups_near_zero(self):
        dataset = workload(spread=0.05)
        assert estimate_overlap(dataset.groups) < 0.3

    def test_overlapping_groups_near_one(self):
        dataset = workload(spread=0.9)
        assert estimate_overlap(dataset.groups) > 0.6

    def test_single_group(self):
        dataset = generate_grouped(
            SyntheticSpec(n_records=20, avg_group_size=20)
        )
        assert estimate_overlap(dataset.groups) == 0.0


class TestAdaptiveAlgorithm:
    def test_registered(self):
        assert isinstance(make_algorithm("AD"), AdaptiveAlgorithm)

    def test_picks_index_for_separated_data(self):
        algorithm = AdaptiveAlgorithm(0.5)
        algorithm.compute(workload(spread=0.05))
        assert algorithm.chosen_strategy == "LO"

    def test_picks_sorted_for_overlapping_data(self):
        algorithm = AdaptiveAlgorithm(0.5)
        algorithm.compute(workload(spread=0.9))
        assert algorithm.chosen_strategy == "SI"

    @pytest.mark.parametrize("spread", [0.05, 0.4, 0.9])
    def test_exact_in_safe_mode(self, spread):
        dataset = workload(spread=spread, seed=3)
        expected = exact_aggregate_skyline(dataset, 0.5)
        result = AdaptiveAlgorithm(0.5, prune_policy="safe").compute(dataset)
        assert result.as_set() == expected

    def test_stats_adopted_from_delegate(self):
        algorithm = AdaptiveAlgorithm(0.5)
        result = algorithm.compute(workload(spread=0.05))
        assert result.stats.group_comparisons > 0
        assert result.stats.algorithm == "AD"

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AdaptiveAlgorithm(0.5, overlap_threshold=1.5)

    def test_repeated_compute_is_stable(self):
        # Regression: an earlier version adopted the delegate's comparator
        # (and its counters) by reference, so a second compute() ran with
        # the delegate's configuration and double-counted the first run.
        algorithm = AdaptiveAlgorithm(0.5)
        dataset = workload(spread=0.05, seed=9)
        first = algorithm.compute(dataset)
        second = algorithm.compute(dataset)
        assert second.as_set() == first.as_set()
        assert (
            second.stats.group_comparisons == first.stats.group_comparisons
        )
        assert (
            second.stats.record_pairs_examined
            == first.stats.record_pairs_examined
        )

    def test_comparator_configuration_survives_compute(self):
        algorithm = AdaptiveAlgorithm(0.5, use_bbox=True, block_size=512)
        comparator = algorithm.comparator
        algorithm.compute(workload(spread=0.05))
        assert algorithm.comparator is comparator
        assert algorithm.comparator.use_bbox is True
        assert algorithm.comparator.block_size == 512

    def test_overlap_estimate_is_seeded(self):
        dataset = workload(spread=0.4, seed=2)
        # Same seed -> same estimate; the seed is a constructor parameter.
        a = AdaptiveAlgorithm(0.5, seed=42, sample_pairs=16)
        b = AdaptiveAlgorithm(0.5, seed=42, sample_pairs=16)
        a.compute(dataset)
        b.compute(dataset)
        assert a.estimated_overlap == b.estimated_overlap

    def test_overlap_sampling_deduplicates(self):
        # Budget >= pair space: the estimate is exact, hence seed-free.
        dataset = workload(spread=0.4, seed=2)
        estimates = {
            estimate_overlap(dataset.groups, sample_pairs=10**6, seed=s)
            for s in (0, 1, 7)
        }
        assert len(estimates) == 1


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        text = ascii_chart(
            [10, 20, 40],
            {"NL": [0.1, 0.4, 1.6], "LO": [0.01, 0.02, 0.05]},
        )
        assert "o=NL" in text and "x=LO" in text
        assert "log" in text
        assert "10" in text and "40" in text

    def test_linear_scale(self):
        text = ascii_chart(
            [1, 2], {"a": [1.0, 2.0]}, log_y=False, y_label="count"
        )
        assert "linear" in text
        assert "count" in text

    def test_handles_missing_points(self):
        text = ascii_chart([1, 2, 3], {"a": [1.0, None, 3.0]})
        assert "o=a" in text

    def test_empty_series(self):
        assert ascii_chart([1], {"a": [None]}) == "(no data)"
        assert ascii_chart([], {}) == "(no data)"

    def test_height_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1.0]}, height=2)

    def test_flat_series(self):
        text = ascii_chart([1, 2], {"a": [5.0, 5.0]})
        assert "o=a" in text

    def test_chart_from_results(self):
        results = [
            RunResult("x", {"n": 10}, "NL", 0.5, 1, 1, 1),
            RunResult("x", {"n": 20}, "NL", 1.5, 1, 1, 1),
            RunResult("x", {"n": 10}, "LO", 0.05, 1, 1, 1),
            RunResult("x", {"n": 20}, "LO", 0.08, 1, 1, 1),
        ]
        text = chart_from_results(results, "n")
        assert "o=NL" in text and "x=LO" in text

    def test_chart_other_metric(self):
        results = [
            RunResult("x", {"n": 10}, "NL", 0.5, 7, 100, 1),
        ]
        text = chart_from_results(
            results, "n", metric="group_comparisons", log_y=False
        )
        assert "o=NL" in text
