"""Store format v2, fingerprints, and the derived-artifact cache.

Covers the columnar-backbone satellites:

* property-based save/load round-trips (tuple keys, MIN/MAX direction
  mixes, 1-record groups) across both on-disk formats and v1↔v2
  conversions;
* the mmap fast path of v2 loads;
* ``repro dataset convert`` / ``info`` CLI round-trips;
* artifact-cache behaviour: content-keyed hits, LRU eviction, metric
  counters, and invalidation-on-update against
  :class:`~repro.core.incremental.IncrementalAggregateSkyline`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.core import artifacts
from repro.core.groups import GroupedDataset
from repro.core.incremental import IncrementalAggregateSkyline
from repro.data.store import (
    FORMAT_VERSIONS,
    load_grouped,
    read_manifest,
    save_grouped,
)
from repro.index.rtree import FlatRTree, Rect, RTree


# ----------------------------------------------------------------------
# dataset strategy: tuple/str keys, MIN/MAX mixes, 1-record groups
# ----------------------------------------------------------------------

_VALUES = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def grouped_datasets(draw):
    dims = draw(st.integers(min_value=1, max_value=4))
    directions = draw(
        st.lists(st.sampled_from(["max", "min"]), min_size=dims, max_size=dims)
    )
    n_groups = draw(st.integers(min_value=1, max_value=6))
    keys = draw(
        st.lists(
            st.one_of(
                st.text(min_size=1, max_size=8),
                st.integers(min_value=-100, max_value=100),
                st.tuples(
                    st.text(min_size=1, max_size=4),
                    st.integers(min_value=0, max_value=9),
                ),
            ),
            min_size=n_groups,
            max_size=n_groups,
            unique=True,
        )
    )
    groups = {}
    for key in keys:
        size = draw(st.integers(min_value=1, max_value=5))
        rows = draw(
            st.lists(
                st.lists(_VALUES, min_size=dims, max_size=dims),
                min_size=size,
                max_size=size,
            )
        )
        groups[key] = np.asarray(rows, dtype=np.float64)
    return GroupedDataset(groups, directions=directions)


def _assert_same_dataset(a: GroupedDataset, b: GroupedDataset) -> None:
    assert a.fingerprint() == b.fingerprint()
    assert a.keys() == b.keys()
    assert a.directions == b.directions
    assert np.array_equal(np.asarray(a.offsets), np.asarray(b.offsets))
    assert np.array_equal(np.asarray(a.matrix), np.asarray(b.matrix))
    for key in a.keys():
        assert np.array_equal(a.original_values(key), b.original_values(key))


class TestStoreRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(dataset=grouped_datasets(), version=st.sampled_from(FORMAT_VERSIONS))
    def test_save_load_round_trip(self, dataset, version, tmp_path_factory):
        path = tmp_path_factory.mktemp("store") / "archive.npz"
        save_grouped(dataset, path, version=version)
        assert read_manifest(path)["version"] == version
        loaded = load_grouped(path)
        _assert_same_dataset(dataset, loaded)

    @settings(max_examples=10, deadline=None)
    @given(dataset=grouped_datasets())
    def test_v1_v2_conversion_cycle(self, dataset, tmp_path_factory):
        base = tmp_path_factory.mktemp("conv")
        v1, v2, back = base / "a.npz", base / "b.npz", base / "c.npz"
        save_grouped(dataset, v1, version=1)
        save_grouped(load_grouped(v1), v2, version=2)
        save_grouped(load_grouped(v2, mmap=False), back, version=1)
        _assert_same_dataset(dataset, load_grouped(back))

    def test_single_record_groups_and_tuple_keys(self, tmp_path):
        dataset = GroupedDataset(
            {("a", 1): [[1.0, 2.0]], ("a", 2): [[3.0, 0.5]], "b": [[2.0, 2.0]]},
            directions=["max", "min"],
        )
        path = tmp_path / "tiny.npz"
        save_grouped(dataset, path)
        loaded = load_grouped(path)
        assert loaded.keys() == [("a", 1), ("a", 2), "b"]
        assert loaded[("a", 1)].size == 1
        _assert_same_dataset(dataset, loaded)

    @staticmethod
    def _memmap_backed(array: np.ndarray) -> bool:
        base = array
        while isinstance(base, np.ndarray):
            if isinstance(base, np.memmap):
                return True
            base = base.base
        return False

    def test_v2_load_is_mmap_backed(self, tmp_path):
        dataset = GroupedDataset({"a": [[1.0, 2.0]], "b": [[3.0, 4.0]]})
        path = tmp_path / "m.npz"
        save_grouped(dataset, path, version=2)
        assert self._memmap_backed(load_grouped(path).matrix)
        assert not self._memmap_backed(
            load_grouped(path, mmap=False).matrix
        )

    def test_unknown_version_rejected(self, tmp_path):
        dataset = GroupedDataset({"a": [[1.0]]})
        with pytest.raises(ValueError, match="version"):
            save_grouped(dataset, tmp_path / "x.npz", version=3)

    def test_non_finite_gate_round_trips(self, tmp_path):
        dataset = GroupedDataset(
            {"a": [[np.inf, 1.0]], "b": [[1.0, 1.0]]}, allow_non_finite=True
        )
        path = tmp_path / "inf.npz"
        save_grouped(dataset, path)
        with pytest.raises(ValueError, match="'a'.*infinite"):
            load_grouped(path)
        loaded = load_grouped(path, allow_non_finite=True)
        assert loaded["a"].values[0][0] == np.inf


class TestDatasetCli:
    def test_convert_round_trip_check(self, tmp_path, capsys):
        dataset = GroupedDataset(
            {("k", 0): [[1.0, 5.0], [2.0, 4.0]], "solo": [[9.0, 9.0]]},
            directions=["min", "max"],
        )
        v1 = tmp_path / "v1.npz"
        v2 = tmp_path / "v2.npz"
        save_grouped(dataset, v1, version=1)
        assert cli_main(["dataset", "convert", str(v1), str(v2)]) == 0
        out = capsys.readouterr().out
        assert "round-trip OK" in out
        assert read_manifest(v2)["version"] == 2
        _assert_same_dataset(dataset, load_grouped(v2))
        # and back down to v1
        down = tmp_path / "down.npz"
        assert (
            cli_main(["dataset", "convert", str(v2), str(down), "--to", "1"])
            == 0
        )
        assert read_manifest(down)["version"] == 1
        _assert_same_dataset(dataset, load_grouped(down))

    def test_info(self, tmp_path, capsys):
        dataset = GroupedDataset({"a": [[1.0, 2.0]], "b": [[2.0, 1.0]]})
        path = tmp_path / "ds.npz"
        save_grouped(dataset, path)
        assert cli_main(["dataset", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "format version : 2" in out
        assert "groups         : 2" in out
        assert dataset.fingerprint() in out


class TestFingerprint:
    def test_content_identity(self):
        a = GroupedDataset({"x": [[1.0, 2.0]], "y": [[2.0, 1.0]]})
        b = GroupedDataset({"x": [[1.0, 2.0]], "y": [[2.0, 1.0]]})
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_values_keys_directions_layout(self):
        base = GroupedDataset({"x": [[1.0, 2.0]], "y": [[2.0, 1.0]]})
        assert (
            base.fingerprint()
            != GroupedDataset({"x": [[1.0, 2.5]], "y": [[2.0, 1.0]]}).fingerprint()
        )
        assert (
            base.fingerprint()
            != GroupedDataset({"x2": [[1.0, 2.0]], "y": [[2.0, 1.0]]}).fingerprint()
        )
        assert (
            base.fingerprint()
            != GroupedDataset(
                {"x": [[1.0, 2.0]], "y": [[2.0, 1.0]]}, directions=["max", "min"]
            ).fingerprint()
        )
        # same flat records, different group boundaries
        one = GroupedDataset({"x": [[1.0, 2.0], [2.0, 1.0]]})
        two = GroupedDataset({"x": [[1.0, 2.0]], "y": [[2.0, 1.0]]})
        assert one.fingerprint() != two.fingerprint()


class TestFlatRTreeBulkLoad:
    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=200),
        dims=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_bit_identical_to_object_build(self, n, dims, seed):
        rng = np.random.default_rng(seed)
        points = rng.random((n, dims))
        reference = RTree.bulk_load(
            ((Rect.point(points[i]), i) for i in range(n))
        ).pack()
        direct = FlatRTree.bulk_load_points(points)
        for name in FlatRTree._ARRAY_FIELDS:
            assert np.array_equal(
                getattr(reference, name), getattr(direct, name)
            ), name


@pytest.fixture()
def fresh_cache():
    cache = artifacts.ArtifactCache(maxsize=8)
    artifacts.set_cache(cache)
    artifacts.configure(True)
    try:
        yield cache
    finally:
        artifacts.set_cache(None)
        artifacts.configure(True)


class TestArtifactCache:
    def test_hit_miss_and_counters(self, fresh_cache):
        dataset = GroupedDataset({"a": [[1.0, 2.0]], "b": [[2.0, 1.0]]})
        first = artifacts.packed_rtree(dataset)
        second = artifacts.packed_rtree(dataset)
        assert fresh_cache.stats()["misses"] == 1
        assert fresh_cache.stats()["hits"] == 1
        # re-hydrated instances share arrays but have fresh counters
        assert first is not second
        assert first.entry_items is second.entry_items
        assert second.window_queries == 0

    def test_content_keyed_across_equal_datasets(self, fresh_cache):
        a = GroupedDataset({"a": [[1.0, 2.0]], "b": [[2.0, 1.0]]})
        b = GroupedDataset({"a": [[1.0, 2.0]], "b": [[2.0, 1.0]]})
        artifacts.packed_rtree(a)
        artifacts.packed_rtree(b)
        assert fresh_cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_lru_eviction(self, fresh_cache):
        rng = np.random.default_rng(0)
        for i in range(fresh_cache.maxsize + 3):
            dataset = GroupedDataset({"g": rng.random((2, 2))})
            artifacts.packed_rtree(dataset)
        stats = fresh_cache.stats()
        assert stats["entries"] == fresh_cache.maxsize
        assert stats["evictions"] == 3

    def test_disabled_cache_builds_every_time(self, fresh_cache):
        artifacts.configure(False)
        dataset = GroupedDataset({"a": [[1.0, 2.0]], "b": [[2.0, 1.0]]})
        artifacts.packed_rtree(dataset)
        artifacts.packed_rtree(dataset)
        assert fresh_cache.stats()["misses"] == 0  # never consulted
        assert len(fresh_cache) == 0

    def test_sort_order_artifact(self, fresh_cache):
        from repro.core.algorithms.sorted_access import SORT_KEYS

        dataset = GroupedDataset(
            {"a": [[1.0, 2.0], [0.5, 0.5]], "b": [[2.0, 1.0]]}
        )
        key = SORT_KEYS["size_corner"]
        order = artifacts.sort_order(dataset, "size_corner", key)
        again = artifacts.sort_order(dataset, "size_corner", key)
        groups = dataset.groups
        assert list(order) == sorted(
            range(len(groups)), key=lambda i: key(groups[i])
        )
        assert again is order
        assert fresh_cache.stats()["hits"] == 1


class TestCacheInvalidationOnUpdate:
    """The incremental structure's version bump invalidates artifacts."""

    def test_snapshot_memoised_until_mutation(self):
        sky = IncrementalAggregateSkyline(dimensions=2)
        sky.insert("a", (1.0, 2.0))
        sky.insert("b", (2.0, 1.0))
        version = sky.version
        snap1 = sky.to_dataset()
        snap2 = sky.to_dataset()
        assert snap1 is snap2
        assert sky.version == version
        sky.insert("a", (3.0, 3.0))
        assert sky.version > version
        snap3 = sky.to_dataset()
        assert snap3 is not snap1
        assert snap3.fingerprint() != snap1.fingerprint()

    def test_artifacts_rebuilt_after_update(self, fresh_cache):
        sky = IncrementalAggregateSkyline(dimensions=2)
        sky.insert("a", (1.0, 2.0))
        sky.insert("b", (2.0, 1.0))
        artifacts.packed_rtree(sky.to_dataset())
        artifacts.packed_rtree(sky.to_dataset())
        assert fresh_cache.stats()["hits"] == 1
        assert fresh_cache.stats()["misses"] == 1
        sky.insert("c", (0.5, 0.5))
        artifacts.packed_rtree(sky.to_dataset())
        stats = fresh_cache.stats()
        assert stats["misses"] == 2  # new fingerprint -> rebuilt
        sky.delete("c", (0.5, 0.5))
        # content returned to the original state: same fingerprint, hit
        artifacts.packed_rtree(sky.to_dataset())
        assert fresh_cache.stats()["hits"] == 2

    def test_version_counter_monotonic(self):
        sky = IncrementalAggregateSkyline(dimensions=2)
        assert sky.version == 0
        sky.insert("a", (1.0, 2.0))
        sky.insert("b", (2.0, 1.0))
        assert sky.version == 2
        sky.delete("b", (2.0, 1.0))
        assert sky.version == 3
        sky.insert("b", (2.0, 1.0))
        sky.drop_group("b")
        assert sky.version == 5
