"""Tests for the pruned γ-profile computation (core.ranking)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import gamma_profile
from repro.core.comparator import DirectionalProbe
from repro.core.groups import Group, GroupedDataset
from repro.core.ranking import ProfileStats, compute_gamma_profile
from repro.data.movies import directors_dataset, figure1_directors_dataset
from tests.conftest import random_grouped_dataset


class TestDirectionalProbe:
    def test_bounds_tighten_to_exact(self):
        rng = np.random.default_rng(0)
        a = Group("a", rng.uniform(size=(20, 2)))
        b = Group("b", rng.uniform(size=(20, 2)))
        probe = DirectionalProbe(a, b)
        lower, upper = probe.bounds()
        exact = probe.exact()
        assert lower <= exact <= upper

    def test_exact_matches_brute_force(self):
        from repro.core.gamma import dominance_probability

        rng = np.random.default_rng(1)
        a = Group("a", rng.integers(0, 5, size=(8, 3)).astype(float))
        b = Group("b", rng.integers(0, 5, size=(9, 3)).astype(float))
        assert DirectionalProbe(a, b).exact() == dominance_probability(a, b)

    def test_disjoint_groups_decided_by_bounds_alone(self):
        top = Group("t", np.array([[10.0, 10.0], [11.0, 11.0]]))
        bottom = Group("b", np.array([[1.0, 1.0], [2.0, 2.0]]))
        probe = DirectionalProbe(top, bottom)
        lower, upper = probe.bounds()
        assert lower == upper == 1
        reverse = DirectionalProbe(bottom, top)
        lower, upper = reverse.bounds()
        assert lower == upper == 0


class TestComputeGammaProfile:
    def test_matches_brute_force_on_movies(self):
        dataset = directors_dataset()
        fast = compute_gamma_profile(dataset)
        slow = gamma_profile(dataset)
        for key in dataset.keys():
            assert fast.degree(key) == slow.degree(key)
            assert fast.minimal_gamma(key) == slow.minimal_gamma(key)

    def test_matches_brute_force_on_figure1(self):
        dataset = figure1_directors_dataset()
        fast = compute_gamma_profile(dataset)
        slow = gamma_profile(dataset)
        for gamma in (0.5, 0.75, 1.0):
            assert set(fast.skyline_at(gamma)) == set(slow.skyline_at(gamma))

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=7),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_matches_brute_force_randomized(self, n_groups, max_size, d, seed):
        rng = np.random.default_rng(seed)
        dataset = random_grouped_dataset(
            rng, n_groups=n_groups, max_group_size=max_size, dimensions=d
        )
        fast = compute_gamma_profile(dataset)
        slow = gamma_profile(dataset)
        for key in dataset.keys():
            assert fast.degree(key) == slow.degree(key), key
        assert {
            k for k, g in fast.ranked() if g is None
        } == {k for k, g in slow.ranked() if g is None}

    def test_pruning_happens_on_separated_groups(self):
        # A dominance chain: most probes are decided by corners alone.
        groups = {
            f"g{i}": [[float(10 * i), float(10 * i)],
                      [float(10 * i + 1), float(10 * i + 1)]]
            for i in range(8)
        }
        stats = ProfileStats()
        compute_gamma_profile(GroupedDataset(groups), stats=stats)
        assert stats.exact_counts < stats.pairs_considered
        assert stats.exact_counts == 0  # chain: everything corner-decided

    def test_bound_skips_counted(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=10, max_group_size=6)
        stats = ProfileStats()
        compute_gamma_profile(dataset, stats=stats)
        assert stats.pairs_considered == 10 * 9

    def test_accepts_mapping_and_directions(self):
        profile = compute_gamma_profile(
            {"cheap": [[1.0]], "pricey": [[9.0]]}, directions=["min"]
        )
        assert profile.minimal_gamma("pricey") is None
