"""Tests for the pairwise group comparator (stopping rule, bbox, Fig. 9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.comparator import GroupComparator
from repro.core.gamma import (
    GammaThresholds,
    dominance_holds,
    dominance_probability,
)
from repro.core.groups import Group


def make_group(key, values):
    return Group(key, np.asarray(values, dtype=float))


def oracle_flags(g1, g2, thresholds):
    """Exact verdicts straight from Definition 3."""
    p12 = dominance_probability(g1, g2)
    p21 = dominance_probability(g2, g1)
    return (
        dominance_holds(p12.numerator, p12.denominator, thresholds.gamma),
        dominance_holds(p12.numerator, p12.denominator, thresholds.strong),
        dominance_holds(p21.numerator, p21.denominator, thresholds.gamma),
        dominance_holds(p21.numerator, p21.denominator, thresholds.strong),
    )


def comparator_variants(thresholds, block_size=3):
    return [
        GroupComparator(thresholds, use_stopping_rule=False, use_bbox=False),
        GroupComparator(thresholds, use_stopping_rule=True, use_bbox=False,
                        block_size=block_size),
        GroupComparator(thresholds, use_stopping_rule=False, use_bbox=True),
        GroupComparator(thresholds, use_stopping_rule=True, use_bbox=True,
                        block_size=block_size),
    ]


class TestCorrectness:
    def test_strict_dominance(self):
        g1 = make_group("a", [[5, 5], [4, 4]])
        g2 = make_group("b", [[1, 1], [2, 2]])
        thresholds = GammaThresholds(0.5)
        for comparator in comparator_variants(thresholds):
            outcome = comparator.compare(g1, g2)
            assert outcome.d12 and outcome.d12_strong
            assert not outcome.d21 and not outcome.d21_strong
            assert not outcome.incomparable

    def test_incomparable_groups(self):
        g1 = make_group("a", [[5, 0]])
        g2 = make_group("b", [[0, 5]])
        thresholds = GammaThresholds(0.5)
        for comparator in comparator_variants(thresholds):
            outcome = comparator.compare(g1, g2)
            assert outcome.incomparable

    def test_exact_gamma_boundary_not_dominating(self):
        # p = 1/2 exactly: Definition 3 requires strictly greater.
        g1 = make_group("a", [[3, 3]])
        g2 = make_group("b", [[1, 1], [5, 5]])
        thresholds = GammaThresholds(0.5)
        for comparator in comparator_variants(thresholds):
            outcome = comparator.compare(g1, g2)
            assert not outcome.d12
            assert not outcome.d21

    def test_dimension_mismatch(self):
        comparator = GroupComparator(GammaThresholds(0.5))
        with pytest.raises(ValueError):
            comparator.compare(
                make_group("a", [[1, 2]]), make_group("b", [[1, 2, 3]])
            )

    def test_needs_at_least_one_direction(self):
        comparator = GroupComparator(GammaThresholds(0.5))
        with pytest.raises(ValueError):
            comparator.compare(
                make_group("a", [[1]]),
                make_group("b", [[2]]),
                need_forward=False,
                need_backward=False,
            )

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            GroupComparator(GammaThresholds(0.5), block_size=0)

    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=3),
        st.sampled_from([0.5, 0.55, 0.7, 0.75, 0.9, 1.0]),
        st.integers(min_value=0, max_value=100_000),
    )
    def test_all_variants_match_oracle(self, n1, n2, d, gamma, seed):
        rng = np.random.default_rng(seed)
        g1 = make_group("a", rng.integers(0, 4, size=(n1, d)).astype(float))
        g2 = make_group("b", rng.integers(0, 4, size=(n2, d)).astype(float))
        thresholds = GammaThresholds(gamma)
        expected = oracle_flags(g1, g2, thresholds)
        for comparator in comparator_variants(thresholds, block_size=2):
            outcome = comparator.compare(g1, g2)
            flags = (
                outcome.d12,
                outcome.d12_strong,
                outcome.d21,
                outcome.d21_strong,
            )
            assert flags == expected, (
                f"{comparator.use_stopping_rule=} {comparator.use_bbox=}"
            )


class TestOneDirectional:
    def test_forward_only(self):
        g1 = make_group("a", [[5, 5]])
        g2 = make_group("b", [[1, 1]])
        comparator = GroupComparator(GammaThresholds(0.5))
        outcome = comparator.compare(g1, g2, need_backward=False)
        assert outcome.d12
        assert not outcome.d21  # not computed, reported False

    def test_backward_only(self):
        g1 = make_group("a", [[1, 1]])
        g2 = make_group("b", [[5, 5]])
        comparator = GroupComparator(GammaThresholds(0.5))
        outcome = comparator.compare(g1, g2, need_forward=False)
        assert outcome.d21
        assert not outcome.d12

    def test_one_direction_costs_less(self):
        rng = np.random.default_rng(3)
        g1 = make_group("a", rng.uniform(size=(30, 3)))
        g2 = make_group("b", rng.uniform(size=(30, 3)))
        thresholds = GammaThresholds(0.5)
        both = GroupComparator(thresholds, use_stopping_rule=False)
        both.compare(g1, g2)
        single = GroupComparator(thresholds, use_stopping_rule=False)
        single.compare(g1, g2, need_backward=False)
        assert single.pairs_examined <= both.pairs_examined
        assert single.pairs_examined == 900  # 30 x 30, forward only


class TestWorkCounters:
    def test_stopping_rule_reduces_pairs_on_clear_dominance(self):
        rng = np.random.default_rng(0)
        # g1 far above g2: the verdict settles after a few blocks.
        g1 = make_group("a", rng.uniform(10, 11, size=(50, 2)))
        g2 = make_group("b", rng.uniform(0, 1, size=(50, 2)))
        thresholds = GammaThresholds(0.5)
        eager = GroupComparator(
            thresholds, use_stopping_rule=True, use_bbox=False, block_size=64
        )
        eager.compare(g1, g2)
        full = GroupComparator(
            thresholds, use_stopping_rule=False, use_bbox=False
        )
        full.compare(g1, g2)
        assert eager.pairs_examined < full.pairs_examined
        assert full.pairs_examined == 2 * 50 * 50

    def test_bbox_shortcut_on_strict_dominance(self):
        g1 = make_group("a", [[10, 10], [11, 11]])
        g2 = make_group("b", [[1, 1], [2, 2]])
        comparator = GroupComparator(GammaThresholds(0.5), use_bbox=True)
        outcome = comparator.compare(g1, g2)
        assert outcome.used_bbox_shortcut
        assert outcome.pairs_examined == 0
        assert comparator.bbox_shortcuts == 1

    def test_bbox_partial_preclassification_reduces_pairs(self):
        rng = np.random.default_rng(1)
        # Overlapping but offset groups: regions A and C are non-empty.
        g1 = make_group("a", rng.uniform(0.4, 1.0, size=(40, 2)))
        g2 = make_group("b", rng.uniform(0.0, 0.6, size=(40, 2)))
        thresholds = GammaThresholds(0.5)
        boxed = GroupComparator(
            thresholds, use_stopping_rule=False, use_bbox=True
        )
        boxed.compare(g1, g2)
        plain = GroupComparator(
            thresholds, use_stopping_rule=False, use_bbox=False
        )
        plain.compare(g1, g2)
        assert boxed.pairs_examined < plain.pairs_examined

    def test_reset_stats(self):
        comparator = GroupComparator(GammaThresholds(0.5))
        comparator.compare(make_group("a", [[1]]), make_group("b", [[2]]))
        assert comparator.comparisons == 1
        comparator.reset_stats()
        assert comparator.comparisons == 0
        assert comparator.pairs_examined == 0
        assert comparator.bbox_shortcuts == 0
