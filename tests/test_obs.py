"""Tests for the observability subsystem (repro.obs)."""

import json
import threading
import time

import pytest

from repro.core.algorithms import make_algorithm
from repro.core.groups import GroupedDataset
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.obs import metrics as obs_metrics
from repro.obs import progress as obs_progress
from repro.obs import tracing as obs_tracing
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    use_registry,
)
from repro.obs.progress import ProgressReporter, eta_from_pair_budget
from repro.obs.tracing import (
    InMemorySink,
    JsonlSink,
    NOOP_SPAN,
    NOOP_TRACER,
    Tracer,
    render_trace,
    use_tracer,
)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestCounter:
    def test_basic_increment(self):
        counter = Counter("requests_total", "Requests served")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("requests_total", "Requests served")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labels_are_independent_series(self):
        counter = Counter(
            "runs_total", "Runs", labelnames=("algorithm",)
        )
        counter.inc(algorithm="NL")
        counter.inc(3, algorithm="LO")
        assert counter.value(algorithm="NL") == 1
        assert counter.value(algorithm="LO") == 3

    def test_bound_labels(self):
        counter = Counter(
            "runs_total", "Runs", labelnames=("algorithm",)
        )
        bound = counter.labels(algorithm="SI")
        bound.inc()
        bound.inc()
        assert counter.value(algorithm="SI") == 2

    def test_wrong_label_set_rejected(self):
        counter = Counter(
            "runs_total", "Runs", labelnames=("algorithm",)
        )
        with pytest.raises(ValueError):
            counter.inc(backend="rtree")
        with pytest.raises(ValueError):
            counter.inc()  # missing the declared label


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("queue_depth", "Depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12


class TestHistogram:
    def test_log_buckets_shape(self):
        buckets = log_buckets(1.0, 10.0, 4)
        assert buckets == (1.0, 10.0, 100.0, 1000.0)

    def test_bucket_edges_le_semantics(self):
        hist = Histogram("pairs", "Pairs", buckets=(1.0, 10.0, 100.0))
        # A value exactly on an edge lands in that bucket (le semantics).
        hist.observe(1.0)
        hist.observe(10.0)
        hist.observe(50.0)
        hist.observe(1000.0)  # beyond the last edge -> +Inf bucket
        snap = hist.snapshot()
        assert snap["buckets"] == {
            1.0: 1,
            10.0: 1,
            100.0: 1,
            float("inf"): 1,
        }
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(1061.0)

    def test_empty_snapshot(self):
        hist = Histogram("pairs", "Pairs", buckets=(1.0,))
        assert hist.snapshot() == {"buckets": {}, "sum": 0.0, "count": 0}

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("pairs", "Pairs", buckets=(10.0, 1.0))


class TestMetricsRegistry:
    def test_idempotent_factory(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "A")
        second = registry.counter("a_total", "A")
        assert first is second

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A")
        with pytest.raises(ValueError):
            registry.gauge("a_total", "A")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A", labelnames=("x",))
        with pytest.raises(ValueError):
            registry.counter("a_total", "A", labelnames=("y",))

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A").inc(5)
        registry.reset()
        assert registry.counter("a_total", "A").value() == 0

    def test_as_dict_and_json(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A").inc(2)
        registry.gauge("b", "B").set(7)
        data = registry.as_dict()
        assert set(data) == {"a_total", "b"}
        assert data["a_total"]["type"] == "counter"
        assert data["a_total"]["series"] == [{"labels": {}, "value": 2.0}]
        assert data["b"]["series"] == [{"labels": {}, "value": 7.0}]
        parsed = json.loads(registry.to_json())
        assert set(parsed) == {"a_total", "b"}

    def test_thread_safety(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "Hits")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == 8000


class TestPrometheusExposition:
    def test_golden_output(self):
        registry = MetricsRegistry()
        registry.counter(
            "runs_total", "Total runs", labelnames=("algorithm",)
        ).inc(3, algorithm="NL")
        registry.gauge("depth", "Current depth").set(2)
        hist = registry.histogram(
            "latency_seconds", "Latency", buckets=(0.5, 1.0)
        )
        hist.observe(0.25)
        hist.observe(0.75)
        text = registry.to_prometheus()
        expected_lines = [
            "# HELP depth Current depth",
            "# TYPE depth gauge",
            "depth 2",
            "# HELP latency_seconds Latency",
            "# TYPE latency_seconds histogram",
            'latency_seconds_bucket{le="0.5"} 1',
            'latency_seconds_bucket{le="1"} 2',
            'latency_seconds_bucket{le="+Inf"} 2',
            "latency_seconds_sum 1",
            "latency_seconds_count 2",
            "# HELP runs_total Total runs",
            "# TYPE runs_total counter",
            'runs_total{algorithm="NL"} 3',
        ]
        for line in expected_lines:
            assert line in text.splitlines(), f"missing: {line}"

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter(
            "odd_total", "Odd", labelnames=("name",)
        ).inc(1, name='quo"te\\slash\nline')
        text = registry.to_prometheus()
        assert '\\"' in text and "\\\\" in text and "\\n" in text


class TestGlobalRegistry:
    def test_use_registry_scopes(self):
        outer = obs_metrics.get_registry()
        scoped = MetricsRegistry()
        with use_registry(scoped):
            assert obs_metrics.get_registry() is scoped
        assert obs_metrics.get_registry() is outer

    def test_enable_disable(self):
        assert not obs_metrics.is_enabled()
        obs_metrics.enable()
        try:
            assert obs_metrics.is_enabled()
        finally:
            obs_metrics.disable()
        assert not obs_metrics.is_enabled()


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestTracing:
    def test_span_nesting(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with tracer.span("root") as root:
            with tracer.span("child-a"):
                pass
            with tracer.span("child-b") as b:
                b.set_attribute("k", 1)
                b.add_event("hello")
        assert len(sink.traces) == 1
        trace = sink.traces[0]
        assert trace is root
        assert [c.name for c in trace.children] == ["child-a", "child-b"]
        assert trace.children[1].attributes["k"] == 1
        assert trace.children[1].events[0]["name"] == "hello"

    def test_current_span(self):
        tracer = Tracer(InMemorySink())
        assert tracer.current_span() is NOOP_SPAN
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is NOOP_SPAN

    def test_error_recorded(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("will-fail"):
                raise RuntimeError("boom")
        trace = sink.traces[0]
        assert trace.attributes["error"] == "RuntimeError"

    def test_to_dict_roundtrips_json(self):
        tracer = Tracer(InMemorySink())
        with tracer.span("root", x=1) as root:
            with tracer.span("child"):
                pass
        data = root.to_dict()
        assert data["name"] == "root"
        assert data["attributes"]["x"] == 1
        assert data["children"][0]["name"] == "child"
        json.dumps(data)  # must be JSON-serialisable

    def test_ring_buffer_capacity(self):
        sink = InMemorySink(capacity=2)
        tracer = Tracer(sink)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [t.name for t in sink.traces] == ["s3", "s4"]

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(path))
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "a"

    def test_render_trace(self):
        tracer = Tracer(InMemorySink())
        with tracer.span("root", algorithm="LO") as root:
            with tracer.span("child"):
                pass
        text = render_trace(root)
        assert "root" in text
        assert "child" in text
        assert "algorithm=LO" in text
        assert "└─" in text

    def test_noop_tracer_overhead_path(self):
        span = NOOP_TRACER.span("anything", a=1)
        assert span is NOOP_SPAN
        assert not span.is_recording
        with span as inner:
            inner.set_attribute("x", 1)
            inner.add_event("nothing")
        assert NOOP_TRACER.current_span() is NOOP_SPAN
        assert span.to_dict() == {}

    def test_use_tracer_scopes(self):
        outer = obs_tracing.get_tracer()
        scoped = Tracer(InMemorySink())
        with use_tracer(scoped):
            assert obs_tracing.get_tracer() is scoped
        assert obs_tracing.get_tracer() is outer


# ---------------------------------------------------------------------------
# Progress
# ---------------------------------------------------------------------------


class TestProgress:
    def test_eta_from_pair_budget(self):
        # Half the pairs done in 2 seconds -> 2 seconds remaining.
        assert eta_from_pair_budget(50, 100, 2.0) == pytest.approx(2.0)
        assert eta_from_pair_budget(0, 100, 2.0) is None
        assert eta_from_pair_budget(100, 100, 2.0) == 0.0

    def test_reporter_throttles(self):
        fake_time = [0.0]
        events = []
        reporter = ProgressReporter(
            events.append, min_interval=1.0, clock=lambda: fake_time[0]
        )
        reporter.update(1, 10)
        reporter.update(2, 10)  # same instant: suppressed
        fake_time[0] = 2.0
        reporter.update(3, 10)
        assert [e.done for e in events] == [1, 3]
        assert reporter.events_emitted == 2

    def test_final_event_always_emitted(self):
        fake_time = [0.0]
        events = []
        reporter = ProgressReporter(
            events.append, min_interval=100.0, clock=lambda: fake_time[0]
        )
        reporter.update(1, 10)
        reporter.update(10, 10)  # finished: must emit despite throttle
        assert [e.done for e in events] == [1, 10]
        assert events[-1].finished

    def test_finished_event_emitted_only_once(self):
        # Regression: callers that keep polling after completion (the
        # anytime engine's heartbeat loop does) used to re-emit a
        # "finished" line on every update.
        fake_time = [0.0]
        events = []
        reporter = ProgressReporter(
            events.append, min_interval=0.0, clock=lambda: fake_time[0]
        )
        reporter.update(5, 10)
        for _ in range(4):
            fake_time[0] += 1.0
            reporter.update(10, 10)
        finished = [e for e in events if e.finished]
        assert len(finished) == 1
        assert reporter.events_emitted == 2

    def test_describe_mentions_eta(self):
        event = obs_progress.ProgressEvent(
            phase="probe",
            done=5,
            total=10,
            pairs_examined=500,
            pair_budget=1000,
            elapsed_seconds=1.0,
            eta_seconds=1.0,
        )
        text = event.describe()
        assert "5/10" in text
        assert "left" in text  # the ETA tail


# ---------------------------------------------------------------------------
# End-to-end reconciliation: registry counters == AlgorithmStats
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def reconciliation_dataset() -> GroupedDataset:
    spec = SyntheticSpec(
        n_records=300,
        avg_group_size=25,
        dimensions=3,
        distribution="independent",
        seed=11,
    )
    return generate_grouped(spec)


class TestStatsRegistryReconciliation:
    @pytest.mark.parametrize("name", ["NL", "TR", "SI", "IN", "LO", "PAR"])
    def test_counters_match_stats(self, name, reconciliation_dataset):
        registry = MetricsRegistry()
        options = {"workers": 2} if name == "PAR" else {}
        with use_registry(registry):
            result = make_algorithm(name, 0.75, **options).compute(
                reconciliation_dataset
            )
        stats = result.stats

        def counter_value(metric: str) -> float:
            return registry.counter(
                metric,
                "",
                labelnames=("algorithm",),
            ).value(algorithm=name)

        assert counter_value("skyline_runs_total") == 1
        assert (
            counter_value("skyline_group_comparisons_total")
            == stats.group_comparisons
        )
        assert (
            counter_value("skyline_record_pairs_total")
            == stats.record_pairs_examined
        )
        assert (
            counter_value("skyline_bbox_shortcuts_total")
            == stats.bbox_shortcuts
        )
        assert (
            counter_value("skyline_stopping_rule_exits_total")
            == stats.stopping_rule_exits
        )

    def test_detailed_metrics_when_enabled(self, reconciliation_dataset):
        registry = MetricsRegistry()
        with use_registry(registry):
            obs_metrics.enable()
            try:
                result = make_algorithm("NL", 0.75).compute(
                    reconciliation_dataset
                )
            finally:
                obs_metrics.disable()
        snap = registry.histogram(
            "comparator_pairs_per_compare",
            labelnames=("algorithm",),
        ).snapshot(algorithm="NL")
        assert snap["count"] == result.stats.group_comparisons
        assert snap["sum"] == result.stats.record_pairs_examined

    def test_no_detailed_metrics_when_disabled(
        self, reconciliation_dataset
    ):
        registry = MetricsRegistry()
        with use_registry(registry):
            make_algorithm("NL", 0.75).compute(reconciliation_dataset)
        hist = registry.get("comparator_pairs_per_compare")
        assert hist is None or not hist.series_keys()

    def test_trace_attached_when_tracing_enabled(
        self, reconciliation_dataset
    ):
        tracer = Tracer(InMemorySink())
        with use_tracer(tracer):
            result = make_algorithm("LO", 0.75).compute(
                reconciliation_dataset
            )
        assert result.trace is not None
        assert result.trace.name == "skyline.compute"
        child_names = [c.name for c in result.trace.children]
        assert "skyline.candidates" in child_names
        assert result.trace.attributes["algorithm"] == "LO"
        assert (
            result.trace.attributes["group_comparisons"]
            == result.stats.group_comparisons
        )

    def test_no_trace_when_disabled(self, reconciliation_dataset):
        result = make_algorithm("NL", 0.75).compute(
            reconciliation_dataset
        )
        assert result.trace is None


# ---------------------------------------------------------------------------
# Timer (satellite: core/result.py fixes)
# ---------------------------------------------------------------------------


class TestTimerObs:
    def test_nested_reentry(self):
        from repro.core.result import Timer

        timer = Timer()
        with timer:
            with timer:
                time.sleep(0.002)
            # still running: inner exit must not stop the clock
            assert timer.running
        assert not timer.running
        assert timer.elapsed >= 0.002

    def test_live_elapsed_while_running(self):
        from repro.core.result import Timer

        timer = Timer()
        with timer:
            time.sleep(0.002)
            live = timer.elapsed
            assert live >= 0.002
        assert timer.elapsed >= live

    def test_exit_without_enter_raises(self):
        from repro.core.result import Timer

        timer = Timer()
        with pytest.raises(RuntimeError):
            timer.__exit__(None, None, None)

    def test_reset(self):
        from repro.core.result import Timer

        timer = Timer()
        with timer:
            time.sleep(0.001)
        timer.reset()
        assert timer.elapsed == 0.0
