"""Tests for the anytime aggregate skyline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anytime import AnytimeAggregateSkyline, GroupStatus
from repro.core.groups import GroupedDataset
from repro.data.synthetic import SyntheticSpec, generate_grouped
from tests.conftest import exact_aggregate_skyline, random_grouped_dataset


@pytest.fixture
def chain():
    return GroupedDataset(
        {
            "top": [[9.0, 9.0], [8.0, 8.0]],
            "mid": [[5.0, 5.0], [4.0, 4.0]],
            "low": [[1.0, 1.0], [2.0, 2.0]],
        }
    )


class TestBasics:
    def test_validation(self, chain):
        with pytest.raises(ValueError):
            AnytimeAggregateSkyline(chain, block_size=0)
        anytime = AnytimeAggregateSkyline(chain)
        with pytest.raises(ValueError):
            anytime.step(pair_budget=0)

    def test_chain_decided_by_bboxes_immediately(self, chain):
        anytime = AnytimeAggregateSkyline(chain)
        # Strict MBB domination decides every pair with zero record work.
        assert anytime.done
        assert anytime.confirmed() == ["top"]
        assert set(anytime.excluded()) == {"mid", "low"}
        assert anytime.pairs_examined == 0

    def test_single_group(self):
        dataset = GroupedDataset({"only": [[1.0, 2.0]]})
        anytime = AnytimeAggregateSkyline(dataset)
        assert anytime.done
        assert anytime.confirmed() == ["only"]
        assert anytime.progress == 1.0

    def test_status_by_key(self, chain):
        anytime = AnytimeAggregateSkyline(chain)
        assert anytime.status("top") is GroupStatus.CONFIRMED
        assert anytime.status("low") is GroupStatus.EXCLUDED


class TestProgressiveRefinement:
    @pytest.fixture
    def hard_dataset(self):
        # Heavily overlapping groups: bbox seeds decide almost nothing.
        return generate_grouped(
            SyntheticSpec(
                n_records=300,
                avg_group_size=30,
                dimensions=3,
                distribution="anticorrelated",
                group_spread=0.8,
                seed=21,
            )
        )

    def test_partial_answers_are_sound_throughout(self, hard_dataset):
        expected = exact_aggregate_skyline(hard_dataset, 0.5)
        anytime = AnytimeAggregateSkyline(
            hard_dataset, 0.5, block_size=16, use_bbox=False
        )
        seen_partial = False
        while not anytime.done:
            confirmed = set(anytime.confirmed())
            candidates = set(anytime.candidates())
            # Sound sandwich: confirmed <= truth <= candidates.
            assert confirmed <= expected
            assert expected <= candidates
            if confirmed != expected or candidates != expected:
                seen_partial = True
            anytime.step(pair_budget=200)
        assert set(anytime.confirmed()) == expected
        assert seen_partial  # the refinement actually passed through
        assert anytime.pairs_examined > 0

    def test_progress_monotone(self, hard_dataset):
        anytime = AnytimeAggregateSkyline(
            hard_dataset, 0.5, block_size=16, use_bbox=False
        )
        previous = anytime.progress
        while not anytime.done:
            anytime.step(pair_budget=500)
            assert anytime.progress >= previous
            previous = anytime.progress

    def test_run_returns_exact_result(self, hard_dataset):
        anytime = AnytimeAggregateSkyline(hard_dataset, 0.5)
        result = anytime.run()
        assert set(result) == exact_aggregate_skyline(hard_dataset, 0.5)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=5),
        st.sampled_from([0.5, 0.75, 1.0]),
        st.integers(min_value=0, max_value=1_000_000),
        st.booleans(),
    )
    def test_matches_oracle_randomized(
        self, n_groups, max_size, gamma, seed, use_bbox
    ):
        rng = np.random.default_rng(seed)
        dataset = random_grouped_dataset(
            rng, n_groups=n_groups, max_group_size=max_size
        )
        anytime = AnytimeAggregateSkyline(
            dataset, gamma, block_size=2, use_bbox=use_bbox
        )
        anytime.run(pair_budget_per_step=7)
        assert set(anytime.confirmed()) == exact_aggregate_skyline(
            dataset, gamma
        )
        assert anytime.candidates() == anytime.confirmed()


class TestProgressIntegration:
    def test_run_emits_progress_events(self, chain):
        from repro.obs.progress import ProgressReporter

        events = []
        engine = AnytimeAggregateSkyline(chain, gamma=1.0)
        reporter = ProgressReporter(events.append, min_interval=0.0)
        keys = engine.run(pair_budget_per_step=1, progress=reporter)
        assert keys  # exact answer still produced
        assert events, "run() should emit at least the final heartbeat"
        final = events[-1]
        assert final.finished
        assert final.done == final.total == 3
        assert final.phase == "anytime-skyline"

    def test_run_accepts_plain_callable(self):
        dataset = generate_grouped(
            SyntheticSpec(n_records=80, avg_group_size=8, dimensions=3,
                          distribution="anticorrelated", seed=5)
        )
        events = []
        engine = AnytimeAggregateSkyline(dataset, gamma=0.75)
        engine.run(pair_budget_per_step=64, progress=events.append)
        assert events and events[-1].finished

    def test_pair_budget_exposed(self, chain):
        engine = AnytimeAggregateSkyline(chain, gamma=1.0)
        assert engine.pair_budget >= 0
        assert engine.pairs_examined <= engine.pair_budget
