"""Differential testing: our query engine vs. sqlite on shared SQL.

For the dialect subset that standard SQL also speaks (SELECT / WHERE /
GROUP BY / HAVING / ORDER BY / LIMIT — everything except SKYLINE OF),
random tables and queries must produce identical results on our executor
and on sqlite3.  This pins the relational substrate to a reference
implementation rather than to our own expectations.
"""

import sqlite3

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.executor import execute
from repro.relational.table import Table

COLUMNS = ("grp", "a", "b")


def random_table(rng: np.random.Generator, rows: int) -> Table:
    data = [
        (
            f"g{int(rng.integers(0, 4))}",
            int(rng.integers(-5, 6)),
            int(rng.integers(0, 10)),
        )
        for _ in range(rows)
    ]
    return Table(COLUMNS, data)


def run_sqlite(table: Table, sql: str):
    connection = sqlite3.connect(":memory:")
    try:
        connection.execute("CREATE TABLE t (grp TEXT, a INTEGER, b INTEGER)")
        connection.executemany("INSERT INTO t VALUES (?, ?, ?)", table.rows)
        return [tuple(row) for row in connection.execute(sql)]
    finally:
        connection.close()


def run_ours(table: Table, sql: str):
    result = execute(sql, {"t": table})
    return [tuple(row) for row in result.table.rows]


def assert_same_rows(table: Table, sql: str, ordered: bool):
    ours = run_ours(table, sql)
    reference = run_sqlite(table, sql)
    if ordered:
        assert ours == reference, sql
    else:
        assert sorted(map(repr, ours)) == sorted(map(repr, reference)), sql


WHERE_CLAUSES = [
    "",
    "WHERE a > 0",
    "WHERE a >= 2 AND b < 7",
    "WHERE a = 1 OR b = 3",
    "WHERE NOT (a < 0)",
    "WHERE a BETWEEN -2 AND 2",
    "WHERE grp IN ('g0', 'g2')",
    "WHERE grp NOT IN ('g1')",
    "WHERE a != 0 AND (b > 2 OR grp = 'g3')",
]


class TestDifferentialSelect:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=len(WHERE_CLAUSES) - 1),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_where_filters(self, rows, clause_index, seed):
        rng = np.random.default_rng(seed)
        table = random_table(rng, rows)
        sql = f"SELECT grp, a, b FROM t {WHERE_CLAUSES[clause_index]}"
        assert_same_rows(table, sql, ordered=False)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_order_and_limit(self, rows, seed):
        rng = np.random.default_rng(seed)
        table = random_table(rng, rows)
        # Unambiguous total order: ORDER BY every column.
        sql = "SELECT grp, a, b FROM t ORDER BY grp, a, b LIMIT 7"
        assert_same_rows(table, sql, ordered=True)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_group_by_aggregates(self, rows, seed):
        rng = np.random.default_rng(seed)
        table = random_table(rng, rows)
        sql = (
            "SELECT grp, count(*), sum(a), min(b), max(b)"
            " FROM t GROUP BY grp ORDER BY grp"
        )
        assert_same_rows(table, sql, ordered=True)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_having(self, rows, seed):
        rng = np.random.default_rng(seed)
        table = random_table(rng, rows)
        sql = (
            "SELECT grp, count(*) FROM t GROUP BY grp"
            " HAVING count(*) >= 2 ORDER BY grp"
        )
        assert_same_rows(table, sql, ordered=True)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_avg_aggregate(self, rows, seed):
        rng = np.random.default_rng(seed)
        table = random_table(rng, rows)
        sql = "SELECT grp, avg(a) FROM t GROUP BY grp ORDER BY grp"
        ours = run_ours(table, sql)
        reference = run_sqlite(table, sql)
        assert len(ours) == len(reference)
        for mine, theirs in zip(ours, reference):
            assert mine[0] == theirs[0]
            assert mine[1] == pytest.approx(theirs[1])

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_projection_and_alias(self, rows, seed):
        rng = np.random.default_rng(seed)
        table = random_table(rng, rows)
        sql = "SELECT a AS alpha, b FROM t WHERE b > 4 ORDER BY alpha, b"
        ours = run_ours(table, sql)
        reference = run_sqlite(
            table, "SELECT a AS alpha, b FROM t WHERE b > 4 ORDER BY alpha, b"
        )
        assert ours == reference

    def test_multi_key_group_by(self, rng):
        table = random_table(rng, 40)
        sql = (
            "SELECT grp, a, count(*) FROM t GROUP BY grp, a"
            " ORDER BY grp, a"
        )
        assert_same_rows(table, sql, ordered=True)

    def test_distinct_semantics_via_group_by(self, rng):
        table = random_table(rng, 30)
        sql = "SELECT grp FROM t GROUP BY grp ORDER BY grp"
        assert_same_rows(table, sql, ordered=True)
