"""Tests for top-k dominating groups, representative skyline, partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gamma import gamma_dominates
from repro.core.groups import GroupedDataset
from repro.core.partitioned import partition_keys, partitioned_aggregate_skyline
from repro.core.representative import (
    domination_counts,
    representative_skyline,
    top_k_dominating_groups,
)
from repro.data.movies import figure1_directors_dataset
from tests.conftest import exact_aggregate_skyline, random_grouped_dataset


@pytest.fixture
def layered():
    return GroupedDataset(
        {
            "king": [[10.0, 10.0]],
            "duke": [[7.0, 7.0]],
            "pawn1": [[1.0, 1.0]],
            "pawn2": [[2.0, 2.0]],
            "outsider": [[0.0, 20.0]],
        }
    )


class TestDominationCounts:
    def test_counts(self, layered):
        counts = domination_counts(layered)
        assert counts["king"] == 3     # duke, pawn1, pawn2
        assert counts["duke"] == 2
        assert counts["pawn1"] == 0
        assert counts["outsider"] == 0

    def test_counts_match_bruteforce(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=8, max_group_size=5)
        counts = domination_counts(dataset, 0.5)
        for s in dataset:
            expected = sum(
                1
                for r in dataset
                if r.key != s.key and gamma_dominates(s, r, 0.5)
            )
            assert counts[s.key] == expected, s.key

    def test_directions(self):
        counts = domination_counts(
            {"cheap": [[1.0]], "pricey": [[9.0]]}, directions=["min"]
        )
        assert counts == {"cheap": 1, "pricey": 0}


class TestTopK:
    def test_order_and_truncation(self, layered):
        top = top_k_dominating_groups(layered, 2)
        assert top == [("king", 3), ("duke", 2)]

    def test_k_validation(self, layered):
        with pytest.raises(ValueError):
            top_k_dominating_groups(layered, 0)

    def test_k_larger_than_groups(self, layered):
        top = top_k_dominating_groups(layered, 100)
        assert len(top) == 5

    def test_useful_when_skyline_is_everything(self):
        # Mutually incomparable groups: the skyline is all of them, but
        # the domination ranking still distinguishes.
        dataset = GroupedDataset(
            {
                "broad": [[5.0, 5.0], [6.0, 4.0]],
                "spiky": [[9.0, 0.0]],
                "meek": [[4.0, 4.5]],
            }
        )
        top = top_k_dominating_groups(dataset, 1)
        assert top[0][0] == "broad"


class TestRepresentativeSkyline:
    def test_small_skyline_returned_whole(self, layered):
        # skyline = {king, outsider}; k bigger than that returns both.
        chosen = representative_skyline(layered, 5)
        assert set(chosen) == {"king", "outsider"}

    def test_greedy_picks_best_coverage_first(self, layered):
        chosen = representative_skyline(layered, 1)
        assert chosen == ["king"]

    def test_movie_directors(self):
        dataset = figure1_directors_dataset()
        chosen = representative_skyline(dataset, 2)
        assert len(chosen) == 2
        skyline = {"Coppola", "Jackson", "Kershner", "Tarantino"}
        assert set(chosen) <= skyline

    def test_chosen_are_skyline_members(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=9, max_group_size=4)
        skyline = exact_aggregate_skyline(dataset, 0.5)
        chosen = representative_skyline(dataset, 3)
        assert set(chosen) <= skyline
        assert len(chosen) == min(3, len(skyline))

    def test_k_validation(self, layered):
        with pytest.raises(ValueError):
            representative_skyline(layered, 0)


class TestPartitionKeys:
    def test_round_robin(self):
        assert partition_keys(["a", "b", "c", "d", "e"], 2) == [
            ["a", "c", "e"],
            ["b", "d"],
        ]

    def test_more_partitions_than_keys(self):
        assert partition_keys(["a"], 4) == [["a"]]

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_keys(["a"], 0)


class TestPartitionedSkyline:
    def test_matches_oracle(self, layered):
        result = partitioned_aggregate_skyline(layered, partitions=2)
        assert result.as_set() == exact_aggregate_skyline(layered, 0.5)
        assert result.stats.algorithm == "PART(2)"

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=5),
        st.sampled_from([0.5, 0.75, 1.0]),
        st.integers(min_value=0, max_value=1_000_000),
    )
    def test_matches_oracle_randomized(
        self, n_groups, max_size, partitions, gamma, seed
    ):
        rng = np.random.default_rng(seed)
        dataset = random_grouped_dataset(
            rng, n_groups=n_groups, max_group_size=max_size
        )
        result = partitioned_aggregate_skyline(
            dataset, gamma=gamma, partitions=partitions
        )
        assert result.as_set() == exact_aggregate_skyline(dataset, gamma)

    def test_result_preserves_group_order(self):
        dataset = GroupedDataset(
            {"z": [[1.0, 9.0]], "a": [[9.0, 1.0]], "m": [[5.0, 5.0]]}
        )
        result = partitioned_aggregate_skyline(dataset, partitions=3)
        assert result.keys == ["z", "a", "m"]

    def test_parallel_matches_serial(self, rng):
        dataset = random_grouped_dataset(rng, n_groups=10, max_group_size=5)
        serial = partitioned_aggregate_skyline(dataset, partitions=3)
        parallel = partitioned_aggregate_skyline(
            dataset, partitions=3, execution="workers=2"
        )
        assert serial.as_set() == parallel.as_set()

    def test_single_partition(self, layered):
        result = partitioned_aggregate_skyline(layered, partitions=1)
        assert result.as_set() == {"king", "outsider"}

    def test_min_directions(self):
        result = partitioned_aggregate_skyline(
            {"cheap": [[1.0]], "pricey": [[9.0]]},
            partitions=2,
            directions=["min"],
        )
        assert result.as_set() == {"cheap"}
