"""Tests for the explain API, named workloads and NaN validation."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.explain import explain
from repro.core.groups import GroupedDataset
from repro.data.movies import figure1_directors_dataset
from repro.data.workloads import WORKLOADS, load_workload, workload_names


class TestExplain:
    @pytest.fixture
    def dataset(self):
        return figure1_directors_dataset()

    def test_excluded_group(self, dataset):
        explanation = explain(dataset, "Nolan")
        assert not explanation.in_skyline
        assert [d.dominator for d in explanation.dominators] == ["Jackson"]
        assert explanation.dominators[0].is_total
        assert explanation.minimal_gamma is None
        assert "NOT in the gamma=0.5 skyline" in explanation.summary()

    def test_included_group(self, dataset):
        explanation = explain(dataset, "Tarantino")
        assert explanation.in_skyline
        assert explanation.dominators == []
        assert explanation.strongest_challenger is not None
        assert explanation.strongest_challenger.probability == Fraction(1, 2)
        assert "is in the gamma=0.5 skyline" in explanation.summary()

    def test_gamma_dependent_exclusion(self):
        dataset = GroupedDataset(
            {
                "strong": [[10, 10], [9, 9], [0, 0]],   # dominates 2/3
                "weak": [[5, 5]],
            }
        )
        at_half = explain(dataset, "weak", gamma=0.5)
        assert not at_half.in_skyline
        assert at_half.minimal_gamma == Fraction(2, 3)
        at_two_thirds = explain(dataset, "weak", gamma=Fraction(2, 3))
        assert at_two_thirds.in_skyline

    def test_singleton_universe(self):
        explanation = explain({"only": [[1.0, 1.0]]}, "only")
        assert explanation.in_skyline
        assert explanation.strongest_challenger is None
        assert "no other groups" in explanation.summary()

    def test_unknown_key(self, dataset):
        with pytest.raises(KeyError):
            explain(dataset, "Kubrick")

    def test_dominators_sorted_by_strength(self):
        dataset = GroupedDataset(
            {
                "total": [[9, 9]],
                "partial": [[6, 6], [7, 7], [0, 0]],   # p = 4/6 > .5
                "victim": [[5, 5], [4, 4]],
            }
        )
        explanation = explain(dataset, "victim")
        assert [d.dominator for d in explanation.dominators] == [
            "total", "partial",
        ]

    def test_directions(self):
        explanation = explain(
            {"cheap": [[1.0]], "pricey": [[9.0]]},
            "pricey",
            directions=["min"],
        )
        assert not explanation.in_skyline


class TestWorkloads:
    def test_names_stable(self):
        assert "paper-default" in workload_names()
        assert "high-overlap" in workload_names()
        assert workload_names() == sorted(WORKLOADS)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_all_load_at_tiny_scale(self, name):
        dataset = load_workload(name, scale=0.02)
        assert len(dataset) >= 1
        assert dataset.total_records >= 50

    def test_scale_grows_records(self):
        small = load_workload("paper-default", 0.02)
        bigger = load_workload("paper-default", 0.08)
        assert bigger.total_records > small.total_records

    def test_zipf_workload_is_heavy_tailed(self):
        dataset = load_workload("zipf-heavy", 0.1)
        sizes = sorted(group.size for group in dataset)
        assert sizes[-1] > 3 * sizes[len(sizes) // 2]

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown workload"):
            load_workload("galactic")
        with pytest.raises(ValueError, match="scale"):
            load_workload("paper-default", 0.0)


class TestNanRejection:
    def test_grouped_dataset_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            GroupedDataset({"a": [[1.0, float("nan")]]})

    def test_skyline_rejects_nan(self):
        from repro.core.skyline import skyline_mask

        with pytest.raises(ValueError, match="NaN"):
            skyline_mask(np.array([[1.0, np.nan]]))

    def test_incremental_rejects_nan(self):
        from repro.core.incremental import IncrementalAggregateSkyline

        sky = IncrementalAggregateSkyline(dimensions=2)
        with pytest.raises(ValueError, match="NaN"):
            sky.insert("a", (1.0, float("nan")))

    def test_infinite_values_rejected_by_default(self):
        # inf silently poisons dominance pair counts; the dataset now
        # rejects it up front, naming the offending group.
        with pytest.raises(ValueError, match="'a'.*infinite"):
            GroupedDataset({"a": [[np.inf, 1.0]], "b": [[1.0, 1.0]]})

    def test_infinite_values_allowed_when_gated(self):
        dataset = GroupedDataset(
            {"a": [[np.inf, 1.0]], "b": [[1.0, 1.0]]},
            allow_non_finite=True,
        )
        assert dataset["a"].values[0][0] == np.inf
