"""Tests for the figure-regeneration experiments (smoke scale)."""

import pytest

from repro.harness.experiments import (
    FIGURES,
    SCALES,
    FigureReport,
    ablations,
    figure8,
    figure13b,
    run_figure,
    table2,
)


class TestRegistry:
    def test_every_paper_figure_present(self):
        assert {
            "table2", "fig8", "fig10", "fig11", "fig12",
            "fig13a", "fig13b", "fig13c", "fig14", "ablations",
            "extensions",
        } <= set(FIGURES)

    def test_scales(self):
        assert SCALES["paper"] == 1.0
        assert SCALES["smoke"] < SCALES["small"] < 1.0

    def test_unknown_figure(self):
        with pytest.raises(ValueError, match="unknown figure"):
            run_figure("fig99")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            figure8("galactic")


class TestTable2:
    def test_report_contains_paper_values(self):
        report = table2()
        assert isinstance(report, FigureReport)
        for value in ("1.00", "0.94", "0.68", "0.00", "0.06", "0.26"):
            assert value in report.text


class TestSmokeFigures:
    def test_fig8_shape(self):
        report = figure8("smoke")
        sql = [r for r in report.results if r.algorithm == "SQL"]
        native = [r for r in report.results if r.algorithm != "SQL"]
        assert sql and native
        # the skyline agrees between SQL and native runs per sweep point
        by_point = {}
        for r in report.results:
            by_point.setdefault(r.params["n_records"], set()).add(
                r.skyline_keys
            )
        for point, skylines in by_point.items():
            assert len(skylines) == 1, point
        assert "speed-up over SQL" in report.text

    def test_fig13b_only_index_methods(self):
        report = figure13b("smoke")
        assert {r.algorithm for r in report.results} == {"IN", "LO"}

    def test_extensions_report(self):
        report = run_figure("extensions", scale="smoke")
        assert "LO (batch baseline)" in report.text
        assert "skyline layers" in report.text

    def test_ablations_results_consistent(self):
        report = ablations("smoke")
        skylines = {r.skyline_keys for r in report.results}
        assert len(skylines) == 1  # every toggle returns the same skyline
        assert "variant" in report.text

    @pytest.mark.slow
    def test_parallel_figure_identical_across_worker_counts(self):
        report = run_figure("parallel", scale="smoke")
        assert "results identical across worker counts: yes" in report.text
        skylines = {r.skyline_keys for r in report.results}
        assert len(skylines) == 1
        pair_counts = {r.record_pairs for r in report.results}
        assert len(pair_counts) == 1  # two-phase PAR does exactly NL's work

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "figure_id",
        ["fig10", "fig11", "fig12", "fig13a", "fig13c", "fig14"],
    )
    def test_remaining_figures_run_at_smoke_scale(self, figure_id):
        report = run_figure(figure_id, scale="smoke")
        assert report.results
        assert report.text.startswith("=")
        # All native algorithms agree on every workload point.
        by_point = {}
        for r in report.results:
            key = tuple(sorted(r.params.items()))
            by_point.setdefault(key, set()).add(r.skyline_keys)
        for key, skylines in by_point.items():
            assert len(skylines) == 1, (figure_id, key)
