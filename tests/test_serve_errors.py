"""Error paths of ``repro serve`` and engine teardown visibility.

* ``--batch`` validates every spec line up front: a malformed JSON
  line or an unknown/mistyped key is reported on stderr *with its line
  number*, the remaining lines still run, and the exit code is
  nonzero.  Spec files are read as UTF-8 regardless of locale.
* The REPL's ``key=value`` parser names the key, the expected type and
  an example instead of a bare ``ValueError``.
* A failing pool release during engine garbage collection emits an
  ``engine_teardown_error`` runlog event and bumps
  ``engine_teardown_errors_total`` instead of passing silently.

Pool-shaped cases run under both fork and spawn.
"""

from __future__ import annotations

import json
import signal

import pytest

from repro.cli import _serve_parse_kwargs, _serve_parse_line, main
from repro.engine import SkylineEngine
from repro.obs import metrics as obs_metrics
from repro.obs import runlog as obs_runlog
from repro.relational.csvio import save_csv
from repro.relational.table import Table

pytestmark = pytest.mark.timeout(300)

START_METHODS = ("fork", "spawn")


def _require_start_method(name: str) -> None:
    if name == "fork" and not hasattr(signal, "SIGALRM"):
        pytest.skip("fork start method requires POSIX")


@pytest.fixture
def movies_csv(tmp_path):
    rows = [
        ["Tarantino", 557, 9.0],
        ["Tarantino", 313, 8.2],
        ["Wiseau", 10, 3.2],
        ["Nolan", 400, 8.8],
        ["Nolan", 600, 8.1],
        ["Bay", 900, 5.0],
    ]
    path = tmp_path / "movies.csv"
    save_csv(Table(["director", "pop", "qual"], rows), str(path))
    return str(path)


def _serve_batch(movies_csv, batch_path, *extra):
    return main(
        [
            "serve", "--csv", movies_csv, "--group-by", "director",
            "--of", "pop:max,qual:max", "--batch", str(batch_path),
            *extra,
        ]
    )


# ----------------------------------------------------------------------
# --batch validation
# ----------------------------------------------------------------------


class TestBatchValidation:
    def test_malformed_json_line_reported_and_skipped(
        self, tmp_path, capsys, movies_csv
    ):
        batch = tmp_path / "batch.jsonl"
        batch.write_text(
            json.dumps({"gamma": 0.6}) + "\n"
            "this is not json {\n"
            + json.dumps({"gamma": 0.5}) + "\n",
            encoding="utf-8",
        )
        code = _serve_batch(movies_csv, batch)
        assert code == 1
        captured = capsys.readouterr()
        assert "line 2" in captured.err
        assert "invalid JSON" in captured.err
        # both valid lines still ran
        assert "gamma=0.6" in captured.out
        assert "gamma=0.5" in captured.out

    def test_unknown_key_reported_with_line_number(
        self, tmp_path, capsys, movies_csv
    ):
        batch = tmp_path / "batch.jsonl"
        batch.write_text(
            json.dumps({"gamma": 0.6}) + "\n"
            + json.dumps({"gamma": 0.5, "bogus": 1}) + "\n"
            + json.dumps({"gama": 0.7}) + "\n",
            encoding="utf-8",
        )
        code = _serve_batch(movies_csv, batch)
        assert code == 1
        captured = capsys.readouterr()
        assert "line 2" in captured.err
        assert "'bogus'" in captured.err
        assert "line 3" in captured.err
        assert "did you mean 'gamma'" in captured.err
        assert "gamma=0.6" in captured.out

    def test_mistyped_value_reported(self, tmp_path, capsys, movies_csv):
        batch = tmp_path / "batch.jsonl"
        batch.write_text(
            json.dumps({"gamma": "abc"}) + "\n", encoding="utf-8"
        )
        code = _serve_batch(movies_csv, batch)
        assert code == 1
        captured = capsys.readouterr()
        assert "line 1" in captured.err
        assert "gamma" in captured.err

    def test_all_lines_bad_exits_nonzero_without_running(
        self, tmp_path, capsys, movies_csv
    ):
        batch = tmp_path / "batch.jsonl"
        batch.write_text("{\n[1, 2]\n", encoding="utf-8")
        code = _serve_batch(movies_csv, batch)
        assert code == 1
        captured = capsys.readouterr()
        assert "line 1" in captured.err
        assert "line 2" in captured.err
        assert "gamma=" not in captured.out

    def test_empty_batch_is_a_no_op(self, tmp_path, capsys, movies_csv):
        batch = tmp_path / "batch.jsonl"
        batch.write_text("# only a comment\n\n", encoding="utf-8")
        code = _serve_batch(movies_csv, batch)
        assert code == 0
        captured = capsys.readouterr()
        assert "no query specs" in captured.err

    def test_valid_batch_still_exits_zero(
        self, tmp_path, capsys, movies_csv
    ):
        batch = tmp_path / "batch.jsonl"
        batch.write_text(
            json.dumps({"gamma": 0.6, "algorithm": "LO"}) + "\n",
            encoding="utf-8",
        )
        code = _serve_batch(movies_csv, batch)
        assert code == 0
        assert "gamma=0.6" in capsys.readouterr().out

    def test_batch_read_as_utf8(self, tmp_path, capsys, movies_csv):
        batch = tmp_path / "batch.jsonl"
        # a UTF-8 comment line must not trip a locale-dependent decoder
        batch.write_bytes(
            "# gammas ≥ 0.5 only\n".encode("utf-8")
            + json.dumps({"gamma": 0.75}).encode("utf-8")
            + b"\n"
        )
        code = _serve_batch(movies_csv, batch)
        assert code == 0
        assert "gamma=0.75" in capsys.readouterr().out

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_bad_lines_skipped_with_pool(
        self, tmp_path, capsys, movies_csv, start_method, monkeypatch
    ):
        """Same contract when the session actually spins up workers."""
        _require_start_method(start_method)
        monkeypatch.setenv("REPRO_START_METHOD", start_method)
        batch = tmp_path / "batch.jsonl"
        batch.write_text(
            json.dumps({"gamma": 0.6, "algorithm": "LO"}) + "\n"
            "garbage\n",
            encoding="utf-8",
        )
        code = _serve_batch(
            movies_csv, batch, "--execution", "workers=2"
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "line 2" in captured.err
        assert "gamma=0.6" in captured.out


# ----------------------------------------------------------------------
# REPL kwarg parsing
# ----------------------------------------------------------------------


class TestReplParsing:
    def test_gamma_not_a_number(self):
        with pytest.raises(ValueError) as excinfo:
            _serve_parse_kwargs(["gamma=abc"])
        message = str(excinfo.value)
        assert "gamma" in message
        assert "'abc'" in message
        assert "example" in message

    def test_dims_not_integers(self):
        with pytest.raises(ValueError) as excinfo:
            _serve_parse_kwargs(["dims=1,x"])
        message = str(excinfo.value)
        assert "dims" in message
        assert "'1,x'" in message
        assert "example" in message

    def test_missing_equals(self):
        with pytest.raises(ValueError) as excinfo:
            _serve_parse_kwargs(["gamma"])
        assert "key=value" in str(excinfo.value)

    def test_unknown_keyword_suggests(self):
        with pytest.raises(ValueError) as excinfo:
            _serve_parse_kwargs(["gama=0.6"])
        message = str(excinfo.value)
        assert "unknown query keyword" in message
        assert "did you mean 'gamma'" in message

    def test_valid_line_round_trips(self):
        command, kwargs = _serve_parse_line("gamma=0.6 algorithm=LO dims=0,1")
        assert command is None
        assert kwargs == {
            "gamma": 0.6,
            "algorithm": "LO",
            "dims": [0, 1],
        }


# ----------------------------------------------------------------------
# engine teardown-failure visibility
# ----------------------------------------------------------------------


class TestTeardownVisibility:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_failed_pool_release_is_reported(
        self, tmp_path, start_method, monkeypatch
    ):
        _require_start_method(start_method)
        log_path = tmp_path / "run.jsonl"
        registry = obs_metrics.MetricsRegistry()
        engine = SkylineEngine(
            execution="workers=2", start_method=start_method
        )
        engine.attach({"g": [[0.0, 1.0], [1.0, 0.0]]})
        pool = engine.pool
        real_close = pool.close

        def exploding_close():
            raise OSError("simulated shm unlink failure")

        with obs_metrics.use_registry(registry):
            with obs_runlog.use_runlog(obs_runlog.RunLog(log_path)):
                monkeypatch.setattr(pool, "close", exploding_close)
                engine.__del__()
        monkeypatch.setattr(pool, "close", real_close)
        engine.close()  # real cleanup

        events = obs_runlog.read_events(log_path)
        teardown = [
            e for e in events if e["event"] == "engine_teardown_error"
        ]
        assert len(teardown) == 1
        assert "simulated shm unlink failure" in teardown[0]["message"]
        counter = registry.get("engine_teardown_errors_total")
        assert counter is not None and counter.value() == 1

    def test_clean_close_reports_nothing(self, tmp_path):
        log_path = tmp_path / "run.jsonl"
        with obs_runlog.use_runlog(obs_runlog.RunLog(log_path)):
            engine = SkylineEngine()
            engine.attach({"g": [[0.0, 1.0]]})
            engine.close()
            engine.__del__()  # already closed: the safety net is a no-op
        events = obs_runlog.read_events(log_path)
        assert all(e["event"] != "engine_teardown_error" for e in events)
