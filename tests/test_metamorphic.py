"""Metamorphic properties of the aggregate-skyline operator.

Transformations with a provable effect on the result — applied to random
inputs, the operator must respond exactly as the theory predicts.  These
complement the oracle-equivalence tests: they catch bugs that a buggy
oracle would share.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import make_algorithm
from repro.core.gamma import dominance_probability
from repro.core.groups import GroupedDataset
from tests.conftest import exact_aggregate_skyline, random_grouped_dataset


def compute(dataset, gamma=0.5):
    return make_algorithm("NL", gamma, prune_policy="safe").compute(
        dataset
    ).as_set()


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000))
def test_group_order_invariance(seed):
    rng = np.random.default_rng(seed)
    dataset = random_grouped_dataset(rng, n_groups=6, max_group_size=4)
    groups = {g.key: g.values.copy() for g in dataset}
    shuffled_keys = list(groups)
    rng.shuffle(shuffled_keys)
    shuffled = GroupedDataset({k: groups[k] for k in shuffled_keys})
    assert compute(dataset) == compute(shuffled)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000))
def test_record_order_invariance(seed):
    rng = np.random.default_rng(seed)
    dataset = random_grouped_dataset(rng, n_groups=5, max_group_size=5)
    permuted = GroupedDataset(
        {
            g.key: g.values[rng.permutation(g.size)]
            for g in dataset
        }
    )
    assert compute(dataset) == compute(permuted)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=1_000_000),
    st.integers(min_value=2, max_value=4),
)
def test_uniform_record_duplication_invariance(seed, copies):
    """p(S > R) is a ratio: copying every record k times cancels out."""
    rng = np.random.default_rng(seed)
    dataset = random_grouped_dataset(rng, n_groups=5, max_group_size=4)
    duplicated = GroupedDataset(
        {g.key: np.repeat(g.values, copies, axis=0) for g in dataset}
    )
    for s in dataset:
        for r in dataset:
            if s.key == r.key:
                continue
            assert dominance_probability(
                s, r
            ) == dominance_probability(
                duplicated[s.key], duplicated[r.key]
            )
    assert compute(dataset) == compute(duplicated)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=1_000_000),
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=-5.0, max_value=5.0),
)
def test_affine_invariance(seed, scale, shift):
    """Positive scaling + translation are monotone: result unchanged."""
    rng = np.random.default_rng(seed)
    dataset = random_grouped_dataset(rng, n_groups=5, max_group_size=4)
    transformed = GroupedDataset(
        {g.key: g.values * scale + shift for g in dataset}
    )
    assert compute(dataset) == compute(transformed)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000))
def test_adding_a_floor_group_changes_nothing_else(seed):
    """A group strictly below everything dominates nobody: the rest of the
    result is untouched, and the new group is excluded (dominated)."""
    rng = np.random.default_rng(seed)
    dataset = random_grouped_dataset(rng, n_groups=5, max_group_size=4)
    before = compute(dataset)
    floor_value = min(float(g.values.min()) for g in dataset) - 10.0
    extended = GroupedDataset(
        {
            **{g.key: g.values for g in dataset},
            "__floor__": np.full((2, dataset.dimensions), floor_value),
        }
    )
    after = compute(extended)
    assert after == before


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000))
def test_adding_a_ceiling_group_excludes_everyone(seed):
    """A group strictly above everything totally dominates all groups."""
    rng = np.random.default_rng(seed)
    dataset = random_grouped_dataset(rng, n_groups=5, max_group_size=4)
    ceiling_value = max(float(g.values.max()) for g in dataset) + 10.0
    extended = GroupedDataset(
        {
            **{g.key: g.values for g in dataset},
            "__ceiling__": np.full((1, dataset.dimensions), ceiling_value),
        }
    )
    assert compute(extended, gamma=1.0) == {"__ceiling__"}


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=1_000_000),
    st.sampled_from([(0.5, 0.6), (0.6, 0.8), (0.8, 1.0)]),
)
def test_result_monotone_in_gamma(seed, gammas):
    """Raising γ makes domination harder: the skyline only grows."""
    low, high = gammas
    rng = np.random.default_rng(seed)
    dataset = random_grouped_dataset(rng, n_groups=6, max_group_size=4)
    assert compute(dataset, low) <= compute(dataset, high)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000))
def test_removing_a_group_never_shrinks_the_rest(seed):
    """Dropping a group removes a potential dominator: every remaining
    group that was in the skyline stays in it."""
    rng = np.random.default_rng(seed)
    dataset = random_grouped_dataset(rng, n_groups=5, max_group_size=4)
    before = exact_aggregate_skyline(dataset, 0.5)
    victim = dataset.keys()[0]
    if len(dataset) == 1:
        return
    reduced = GroupedDataset(
        {g.key: g.values for g in dataset if g.key != victim}
    )
    after = exact_aggregate_skyline(reduced, 0.5)
    assert (before - {victim}) <= after
