"""Tests for aggregates, GROUP BY, the skyline bridge and CSV I/O."""

import pytest

from repro.relational.aggregates import (
    AGGREGATE_FUNCTIONS,
    aggregate_label,
    apply_aggregate,
)
from repro.relational.csvio import dumps_csv, load_csv, loads_csv, save_csv
from repro.relational.operators import (
    AggregateSpec,
    group_by,
    grouped_dataset_from_table,
)
from repro.relational.table import Table


class TestAggregates:
    def test_registry(self):
        assert set(AGGREGATE_FUNCTIONS) == {"count", "sum", "avg", "min", "max"}

    def test_basic_values(self):
        values = [3, 1, 2]
        assert apply_aggregate("count", values) == 3
        assert apply_aggregate("sum", values) == 6
        assert apply_aggregate("avg", values) == 2
        assert apply_aggregate("min", values) == 1
        assert apply_aggregate("MAX", values) == 3

    def test_nones_ignored(self):
        assert apply_aggregate("count", [1, None, 2]) == 2
        assert apply_aggregate("sum", [1, None]) == 1

    def test_all_none(self):
        assert apply_aggregate("sum", [None]) is None
        assert apply_aggregate("avg", []) is None
        assert apply_aggregate("count", []) == 0

    def test_unknown(self):
        with pytest.raises(ValueError):
            apply_aggregate("median", [1])

    def test_label(self):
        assert aggregate_label("MAX", "qual") == "max(qual)"


@pytest.fixture
def sales():
    return Table(
        ["region", "product", "amount"],
        [
            ("north", "ale", 10),
            ("north", "bock", 20),
            ("south", "ale", 5),
            ("south", "bock", 7),
            ("south", "cider", 9),
        ],
    )


class TestGroupBy:
    def test_counts_and_sums(self, sales):
        result = group_by(
            sales,
            ["region"],
            aggregates=[
                AggregateSpec("count", "*"),
                AggregateSpec("sum", "amount"),
            ],
        )
        rows = {r[0]: (r[1], r[2]) for r in result.rows}
        assert rows == {"north": (2, 30), "south": (3, 21)}
        assert result.columns == ("region", "count(*)", "sum(amount)")

    def test_alias(self, sales):
        result = group_by(
            sales,
            ["region"],
            aggregates=[AggregateSpec("sum", "amount", alias="total")],
        )
        assert result.columns == ("region", "total")

    def test_having(self, sales):
        result = group_by(
            sales,
            ["region"],
            aggregates=[AggregateSpec("sum", "amount")],
            having=lambda row: row["sum(amount)"] > 25,
        )
        assert [r[0] for r in result.rows] == ["north"]

    def test_multi_key(self, sales):
        result = group_by(sales, ["region", "product"])
        assert len(result) == 5

    def test_star_only_for_count(self, sales):
        with pytest.raises(ValueError):
            group_by(
                sales, ["region"], aggregates=[AggregateSpec("sum", "*")]
            )


class TestGroupedDatasetBridge:
    def test_single_key_flat(self, sales):
        dataset = grouped_dataset_from_table(sales, ["region"], ["amount"])
        assert set(dataset.keys()) == {"north", "south"}
        assert dataset["south"].size == 3

    def test_multi_key_tuple(self, sales):
        dataset = grouped_dataset_from_table(
            sales, ["region", "product"], ["amount"]
        )
        assert ("north", "ale") in dataset

    def test_directions(self, sales):
        dataset = grouped_dataset_from_table(
            sales, ["region"], ["amount"], directions=["min"]
        )
        # normalised to higher-better: negated
        assert dataset["north"].values.max() == -10

    def test_requires_measures(self, sales):
        with pytest.raises(ValueError):
            grouped_dataset_from_table(sales, ["region"], [])


class TestCsv:
    def test_roundtrip(self, sales, tmp_path):
        path = tmp_path / "sales.csv"
        save_csv(sales, path)
        loaded = load_csv(path)
        assert loaded == sales

    def test_type_inference(self):
        table = loads_csv("a,b,c,d\n1,2.5,x,\n")
        assert table.rows == [(1, 2.5, "x", None)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            loads_csv("")

    def test_quoting(self):
        table = Table(["name"], [("a,b",), ('say "hi"',)])
        assert loads_csv(dumps_csv(table)) == table

    def test_none_serialised_as_empty(self):
        table = Table(["x", "y"], [(None, 1)])
        text = dumps_csv(table)
        assert text == "x,y\n,1\n"


class TestWeightedBridge:
    def test_weighted_groups(self, sales):
        from repro.relational.operators import weighted_groups_from_table

        groups = weighted_groups_from_table(
            sales, ["region"], ["amount"], weight="amount"
        )
        records, weights = groups["north"]
        assert records == [(10.0,), (20.0,)]
        assert weights == [10, 20]

    def test_feeds_weighted_skyline(self, sales):
        from repro.core.weighted import weighted_aggregate_skyline
        from repro.relational.operators import weighted_groups_from_table

        groups = weighted_groups_from_table(
            sales, ["region"], ["amount"], weight="amount"
        )
        result = weighted_aggregate_skyline(groups)
        assert "north" in result.as_set()

    def test_requires_measures(self, sales):
        from repro.relational.operators import weighted_groups_from_table

        with pytest.raises(ValueError):
            weighted_groups_from_table(sales, ["region"], [], weight="amount")
