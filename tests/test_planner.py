"""Plan layer: optimizer parity, plan caching, and the EXPLAIN surfaces.

The acceptance contract of the planning refactor:

- ``algorithm="auto"`` routes through the cost model and yields exactly
  the result (skyline *and* every work counter) of running the chosen
  algorithm explicitly, serial and pooled alike;
- an explicitly forced algorithm is bit-identical to the pre-planner
  behaviour (same construction path, no probe, no cache traffic);
- planner decisions are memoised per dataset fingerprint and evicted
  naturally when an incremental dataset mutates;
- the same plan tree renders from SQL ``EXPLAIN``, the dataset-level
  ``explain_dataset`` and ``SkylineEngine.explain``.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.core import artifacts
from repro.core.algorithms import make_algorithm
from repro.core.api import aggregate_skyline
from repro.core.artifacts import ArtifactCache, set_cache
from repro.core.execution import ExecutionConfig
from repro.core.groups import GroupedDataset
from repro.core.incremental import IncrementalAggregateSkyline
from repro.engine import SkylineEngine
from repro.harness.persistence import results_from_json, results_to_json
from repro.harness.runner import RunResult, run_algorithms
from repro.obs.metrics import use_registry
from repro.plan import (
    PlanDecision,
    collect_statistics,
    estimate_costs,
    explain_dataset,
    logical_for_dataset,
    optimize,
)
from repro.query.executor import execute
from repro.query.parser import parse
from repro.relational.table import Table

pytestmark = pytest.mark.timeout(180)

COUNTERS = (
    "group_comparisons",
    "record_pairs_examined",
    "bbox_shortcuts",
    "groups_skipped",
    "index_candidates",
    "stopping_rule_exits",
)


def counters_of(result):
    return {name: getattr(result.stats, name) for name in COUNTERS}


def small_dataset(groups=14, size=12, dims=3, seed=5):
    rng = np.random.default_rng(seed)
    return GroupedDataset(
        {
            f"g{i}": rng.random((size, dims)) + 0.05 * i
            for i in range(groups)
        }
    )


@pytest.fixture
def fresh_cache():
    """Isolate the process-wide artifact cache per test."""
    previous = artifacts.get_cache()
    cache = ArtifactCache()
    set_cache(cache)
    try:
        yield cache
    finally:
        set_cache(previous)


# ----------------------------------------------------------------------
# parity: auto == chosen-explicit, forced == pre-planner
# ----------------------------------------------------------------------


class TestParity:
    def test_auto_matches_explicit_serial(self, fresh_cache):
        dataset = small_dataset()
        auto = aggregate_skyline(dataset, gamma=0.5, algorithm="auto")
        chosen = auto.plan["algorithm"]
        explicit = aggregate_skyline(dataset, gamma=0.5, algorithm=chosen)
        assert auto.keys == explicit.keys
        assert counters_of(auto) == counters_of(explicit)
        assert auto.plan["forced"] is False
        assert explicit.plan["forced"] is True

    def test_auto_matches_explicit_pooled(self, fresh_cache):
        dataset = small_dataset(groups=10, size=10)
        execution = ExecutionConfig(workers=2)
        auto = aggregate_skyline(
            dataset, gamma=0.5, algorithm="auto", execution=execution
        )
        chosen = auto.plan["algorithm"]
        explicit = aggregate_skyline(
            dataset, gamma=0.5, algorithm=chosen, execution=execution
        )
        assert auto.keys == explicit.keys
        assert counters_of(auto) == counters_of(explicit)

    @pytest.mark.parametrize("name", ["NL", "TR", "SI", "IN", "LO"])
    def test_forced_bit_identical_to_direct_construction(
        self, fresh_cache, name
    ):
        """An explicit algorithm bypasses probe and cache: the pipeline
        must reproduce ``make_algorithm(name, ...).compute()`` exactly."""
        dataset = small_dataset(seed=9)
        via_pipeline = aggregate_skyline(dataset, gamma=0.6, algorithm=name)
        direct = make_algorithm(name, 0.6).compute(dataset)
        assert via_pipeline.keys == direct.keys
        assert counters_of(via_pipeline) == counters_of(direct)
        assert via_pipeline.stats.algorithm == direct.stats.algorithm
        # No statistics probe ran for the forced path: the algorithms may
        # cache their own artifacts (rtrees, sort orders) but the planner
        # must not have added decision or overlap entries.
        assert via_pipeline.plan["forced"] is True
        assert "statistics" not in via_pipeline.plan
        kinds = {key[1] for key in fresh_cache._store}
        assert "plan_choice" not in kinds
        assert "overlap_estimate" not in kinds

    def test_sql_never_auto_picked(self, fresh_cache):
        dataset = small_dataset()
        statistics = collect_statistics(dataset)
        for candidate in estimate_costs(statistics, None, 0.5):
            if candidate.algorithm == "SQL":
                assert not candidate.kept


# ----------------------------------------------------------------------
# plan cache: hits, misses, invalidation through mutation
# ----------------------------------------------------------------------


class TestPlanCache:
    def test_warm_repeat_hits_cache(self, fresh_cache):
        dataset = small_dataset()
        with use_registry() as registry:
            with SkylineEngine() as engine:
                handle = engine.attach(dataset)
                first = engine.query(handle, algorithm="auto")
                second = engine.query(handle, algorithm="auto")
        assert first.plan["cached"] is False
        assert second.plan["cached"] is True
        assert registry.counter("plan_cache_misses_total").value() == 1
        assert registry.counter("plan_cache_hits_total").value() == 1

    def test_mutation_invalidates_plans_and_probes(self, fresh_cache):
        rng = np.random.default_rng(3)
        incremental = IncrementalAggregateSkyline(dimensions=3)
        for i in range(8):
            incremental.insert_many(
                f"g{i}", rng.random((10, 3)) + 0.05 * i
            )
        before = incremental.to_dataset()
        first = aggregate_skyline(before, algorithm="auto")
        repeat = aggregate_skyline(before, algorithm="auto")
        assert first.plan["cached"] is False
        assert repeat.plan["cached"] is True

        incremental.insert("g0", [2.0, 2.0, 2.0])
        after = incremental.to_dataset()
        assert after.fingerprint() != before.fingerprint()
        fresh = aggregate_skyline(after, algorithm="auto")
        # New fingerprint, new entry: the stale plan cannot be served.
        assert fresh.plan["cached"] is False

    def test_overlap_probe_memoised_across_planner_and_adaptive(
        self, fresh_cache
    ):
        """The planner's probe and AD's estimate share one cache entry."""
        dataset = small_dataset(seed=11)
        collect_statistics(dataset)  # builds the overlap_estimate entry
        before = fresh_cache.stats()["hits"]
        result = aggregate_skyline(dataset, algorithm="AD")
        assert result.stats.algorithm.startswith("AD")
        assert fresh_cache.stats()["hits"] > before

    def test_explain_probe_reuses_cached_decision(self, fresh_cache):
        dataset = small_dataset()
        aggregate_skyline(dataset, algorithm="auto")
        text = explain_dataset(dataset, algorithm="auto")
        assert "<- chosen" in text
        # Rendering excludes entry/cached so cached and cold trees match.
        cold = ArtifactCache()
        set_cache(cold)
        assert explain_dataset(dataset, algorithm="auto") == text


# ----------------------------------------------------------------------
# EXPLAIN surfaces
# ----------------------------------------------------------------------


def movies_table():
    rows = [
        ["Tarantino", 557, 9.0],
        ["Tarantino", 313, 8.2],
        ["Wiseau", 10, 3.2],
        ["Nolan", 400, 8.8],
        ["Nolan", 600, 8.1],
        ["Bay", 900, 5.0],
    ]
    return Table(["director", "pop", "qual"], rows)


def movies_dataset():
    table = movies_table()
    groups = {}
    for director, pop, qual in table.rows:
        groups.setdefault(director, []).append((float(pop), float(qual)))
    return GroupedDataset(groups)


def annotation_block(text):
    """The skyline-node annotation lines, indentation-stripped."""
    lines = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("·"):
            lines.append(stripped.lstrip("·").strip())
    return lines


class TestExplain:
    SQL = (
        "SELECT director FROM movies GROUP BY director"
        " SKYLINE OF pop MAX, qual MAX USING ALGORITHM AUTO"
    )

    def test_parser_sets_explain_flag(self):
        assert parse("EXPLAIN " + self.SQL).explain is True
        assert parse(self.SQL).explain is False

    def test_sql_explain_returns_plan_without_executing(self, fresh_cache):
        result = execute(
            "EXPLAIN " + self.SQL, {"movies": movies_table()}
        )
        assert result.skyline_result is None
        assert result.table.columns == ("plan",) or list(
            result.table.columns
        ) == ["plan"]
        text = "\n".join(row[0] for row in result.table.rows)
        assert "aggregate-skyline" in text
        assert "<- chosen" in text
        assert "scan movies" in text

    def test_explain_kwarg_equals_explain_prefix(self, fresh_cache):
        catalog = {"movies": movies_table()}
        via_prefix = execute("EXPLAIN " + self.SQL, catalog)
        via_kwarg = execute(self.SQL, catalog, explain=True)
        assert [r[0] for r in via_prefix.table.rows] == [
            r[0] for r in via_kwarg.table.rows
        ]

    def test_same_tree_from_sql_api_and_engine(self, fresh_cache):
        """The skyline-node annotations (statistics + candidate costs)
        must agree across all three entry paths."""
        catalog = {"movies": movies_table()}
        dataset = movies_dataset()
        sql_text = "\n".join(
            row[0]
            for row in execute("EXPLAIN " + self.SQL, catalog).table.rows
        )
        api_text = explain_dataset(dataset, algorithm="auto")
        with SkylineEngine.ephemeral() as engine:
            engine_text = engine.explain(dataset, algorithm="auto")
        assert annotation_block(sql_text) == annotation_block(api_text)
        assert annotation_block(api_text) == annotation_block(engine_text)

    def test_engine_explain_does_not_execute(self, fresh_cache):
        dataset = movies_dataset()
        with SkylineEngine() as engine:
            text = engine.explain(dataset, algorithm="auto")
            assert engine.stats.queries == 0
        assert "aggregate-skyline" in text

    def test_non_skyline_queries_render_structure_only(self, fresh_cache):
        result = execute(
            "EXPLAIN SELECT director FROM movies WHERE pop > 100",
            {"movies": movies_table()},
        )
        text = "\n".join(row[0] for row in result.table.rows)
        assert "filter" in text
        assert "cost≈" not in text


class TestCliExplain:
    def write_csv(self, tmp_path):
        from repro.relational.csvio import save_csv

        path = tmp_path / "movies.csv"
        save_csv(movies_table(), str(path))
        return str(path)

    def test_skyline_explain_flag(self, tmp_path, capsys, fresh_cache):
        from repro.cli import main

        csv = self.write_csv(tmp_path)
        code = main(
            [
                "skyline", "--csv", csv, "--group-by", "director",
                "--of", "pop:max,qual:max", "--algorithm", "auto",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregate-skyline of [pop max, qual max]" in out
        assert "<- chosen" in out

    def test_query_explain_flag(self, tmp_path, capsys, fresh_cache):
        from repro.cli import main

        csv = self.write_csv(tmp_path)
        code = main(
            [
                "query", "--table", f"movies={csv}", "--explain",
                TestExplain.SQL,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregate-skyline" in out
        assert "statistics:" in out

    def test_serve_batch_explain(self, tmp_path, capsys, fresh_cache):
        from repro.cli import main

        csv = self.write_csv(tmp_path)
        batch = tmp_path / "batch.jsonl"
        batch.write_text(
            json.dumps({"explain": True, "algorithm": "auto"})
            + "\n"
            + json.dumps({"gamma": 0.5})
            + "\n"
        )
        code = main(
            [
                "serve", "--csv", csv, "--group-by", "director",
                "--of", "pop:max,qual:max", "--batch", str(batch),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregate-skyline" in out       # the explain spec
        assert "gamma=0.5" in out               # the executed query


# ----------------------------------------------------------------------
# harness integration: RunResult.plan + persistence round-trip
# ----------------------------------------------------------------------


class TestHarnessPlan:
    def test_run_algorithms_auto_records_plan(self, fresh_cache):
        dataset = small_dataset(groups=8, size=8)
        results = run_algorithms(
            dataset, algorithms=["AUTO"], experiment="planner"
        )
        assert len(results) == 1
        plan = results[0].plan
        assert plan is not None
        assert plan["requested"] == "AUTO"
        assert plan["algorithm"] in ("NL", "TR", "SI", "IN", "LO")
        assert plan["candidates"]

    def test_plan_round_trips_through_json(self):
        result = RunResult(
            experiment="planner",
            params={"n": 1},
            algorithm="AUTO",
            elapsed_seconds=0.25,
            group_comparisons=10,
            record_pairs=100,
            skyline_size=2,
            skyline_keys=frozenset({"a", "b"}),
            plan={
                "requested": "AUTO",
                "algorithm": "LO",
                "forced": False,
                "cached": False,
                "entry": "harness",
            },
        )
        text = results_to_json([result])
        (back,) = results_from_json(text)
        assert back.plan == result.plan

    def test_old_json_without_plan_still_round_trips(self):
        result = RunResult(
            experiment="legacy",
            params={},
            algorithm="LO",
            elapsed_seconds=0.1,
            group_comparisons=1,
            record_pairs=2,
            skyline_size=1,
        )
        text = results_to_json([result])
        assert '"plan"' not in text
        (back,) = results_from_json(text)
        assert back.plan is None
        # A literally pre-planner payload (no plan key anywhere) parses.
        payload = json.loads(text)
        (legacy,) = results_from_json(json.dumps(payload))
        assert legacy.plan is None


# ----------------------------------------------------------------------
# decision serialisation
# ----------------------------------------------------------------------


class TestPlanDecision:
    def test_round_trip(self, fresh_cache):
        dataset = small_dataset()
        logical = logical_for_dataset(
            dataset, gamma=0.5, algorithm="AUTO"
        )
        physical = optimize(
            logical, dataset, gamma=0.5, algorithm="AUTO", probe=True
        )
        data = physical.decision.as_dict()
        back = PlanDecision.from_dict(data)
        assert back.as_dict() == data
        assert back.algorithm == physical.decision.algorithm
