"""Tests for parallel IN/LO, shared-memory shipping and work stealing.

The contract under test (see ``docs/parallel.md``): the parallel
indexed algorithms run every candidate's window loop under the
independent-candidate discipline, so the skyline **and every work
counter** are identical to the inline ``workers=1`` kernel for any
worker count, either scheduler, and either payload-shipping mode — and
exactly the Definition-2 skyline.  Shared-memory segments must never
outlive the run, and the work-stealing ledger must hand out every chunk
exactly once under any steal order.
"""

from __future__ import annotations

import gc
import signal
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import make_algorithm
from repro.core.execution import ExecutionConfig
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.index.rtree import FlatRTree, Rect, RTree
from repro.obs.metrics import use_registry
from repro.parallel.scheduler import (
    ChunkLedger,
    assign_owners,
    guided_spans,
)
from repro.parallel.shm import (
    ShmArena,
    attach_array,
    detach_all,
    load_groups,
    ship_groups,
    shm_available,
)
from tests.conftest import exact_aggregate_skyline

COUNTERS = (
    "group_comparisons",
    "record_pairs_examined",
    "index_candidates",
    "bbox_shortcuts",
    "stopping_rule_exits",
    "groups_skipped",
)


@pytest.fixture(autouse=True)
def _deadlock_guard():
    """A wedged pool fails the test instead of hanging the suite."""
    if not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):  # pragma: no cover - only on deadlock
        raise RuntimeError("parallel test exceeded the 120s deadlock guard")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(120)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _workload(**overrides):
    spec = dict(
        n_records=300,
        avg_group_size=15,
        dimensions=3,
        distribution="anticorrelated",
        group_spread=0.4,
        seed=13,
    )
    spec.update(overrides)
    return generate_grouped(SyntheticSpec(**spec))


@pytest.fixture(scope="module")
def anticorrelated():
    return _workload()


@pytest.fixture(scope="module")
def zipfian():
    # Skewed group sizes: the workload work stealing exists for.
    return _workload(size_distribution="zipf", zipf_exponent=1.1, seed=21)


def _counters(stats):
    return {name: getattr(stats, name) for name in COUNTERS}


# ---------------------------------------------------------------------------
# Parallel IN/LO determinism + exactness
# ---------------------------------------------------------------------------


class TestParallelIndexed:
    @pytest.mark.parametrize("name", ["IN", "LO"])
    @pytest.mark.parametrize("fixture", ["anticorrelated", "zipfian"])
    def test_identical_to_inline_for_any_worker_count(
        self, name, fixture, request
    ):
        dataset = request.getfixturevalue(fixture)
        baseline = make_algorithm(
            name, execution=ExecutionConfig(workers=1)
        ).compute(dataset)
        oracle = exact_aggregate_skyline(dataset, 0.5)
        assert baseline.as_set() == oracle
        for workers in (2, 4):
            for scheduler in ("static", "stealing"):
                result = make_algorithm(
                    name,
                    execution=ExecutionConfig(
                        workers=workers, scheduler=scheduler
                    ),
                ).compute(dataset)
                context = f"{name}/{fixture}/workers={workers}/{scheduler}"
                assert result.as_set() == baseline.as_set(), context
                assert list(result.keys) == list(baseline.keys), context
                assert _counters(result.stats) == _counters(
                    baseline.stats
                ), context

    @pytest.mark.parametrize("shm", [False, True])
    def test_shipping_mode_does_not_change_anything(
        self, anticorrelated, shm
    ):
        if shm and not shm_available():  # pragma: no cover
            pytest.skip("shared_memory unavailable")
        baseline = make_algorithm(
            "IN", execution=ExecutionConfig(workers=1)
        ).compute(anticorrelated)
        pooled = make_algorithm(
            "IN",
            execution=ExecutionConfig(
                workers=2, scheduler="stealing", shm=shm
            ),
        ).compute(anticorrelated)
        assert pooled.as_set() == baseline.as_set()
        assert _counters(pooled.stats) == _counters(baseline.stats)

    def test_worker_stats_reconcile_with_parent(self, zipfian):
        engine = make_algorithm(
            "IN", execution=ExecutionConfig(workers=2, scheduler="stealing")
        )
        result = engine.compute(zipfian)
        assert engine.worker_stats, "pooled run should keep chunk stats"
        assert sum(
            stats.group_comparisons for stats in engine.worker_stats
        ) == result.stats.group_comparisons
        assert sum(
            stats.record_pairs_examined for stats in engine.worker_stats
        ) == result.stats.record_pairs_examined
        assert sum(
            stats.index_candidates for stats in engine.worker_stats
        ) == result.stats.index_candidates

    def test_metrics_registry_reconciles_after_pooled_run(self, zipfian):
        engine = make_algorithm(
            "IN", execution=ExecutionConfig(workers=2, scheduler="stealing")
        )
        with use_registry() as registry:
            result = engine.compute(zipfian)
        run = engine.last_pool_run
        assert run is not None and run.outcomes
        labels = {"algorithm": "IN", "scheduler": "stealing"}
        chunks = registry.get("parallel_chunks_total")
        assert chunks is not None
        assert chunks.value(**labels) == len(run.outcomes)
        queries = registry.get("index_window_queries_total")
        assert queries is not None
        assert queries.value(backend="rtree", algorithm="IN") == sum(
            outcome.window_queries for outcome in run.outcomes
        )
        flushed = registry.get("skyline_group_comparisons_total")
        if flushed is not None:  # always-on end-of-run flush
            assert (
                flushed.value(algorithm="IN")
                == result.stats.group_comparisons
            )

    def test_stealing_reports_present(self, zipfian):
        engine = make_algorithm(
            "IN",
            execution=ExecutionConfig(
                workers=2, scheduler="stealing", chunk_size=1
            ),
        )
        engine.compute(zipfian)
        run = engine.last_pool_run
        assert run is not None
        assert {report.slot for report in run.reports} == {0, 1}
        assert sum(report.chunks_done for report in run.reports) == len(
            run.outcomes
        )

    def test_workers_none_keeps_the_serial_path(self, anticorrelated):
        engine = make_algorithm("IN", execution=ExecutionConfig())
        result = engine.compute(anticorrelated)
        assert engine.last_pool_run is None
        serial = make_algorithm("IN").compute(anticorrelated)
        assert result.as_set() == serial.as_set()


# ---------------------------------------------------------------------------
# Work-stealing scheduler properties
# ---------------------------------------------------------------------------


class TestScheduler:
    @settings(max_examples=100, deadline=None)
    @given(
        total=st.integers(min_value=0, max_value=5_000),
        workers=st.integers(min_value=1, max_value=8),
    )
    def test_guided_spans_tile_the_range(self, total, workers):
        spans = guided_spans(total, workers)
        position = 0
        previous = None
        for start, stop in spans:
            assert start == position and stop > start
            if previous is not None:
                assert stop - start <= previous  # sizes never increase
            previous = stop - start
            position = stop
        assert position == total

    @settings(max_examples=100, deadline=None)
    @given(
        n_chunks=st.integers(min_value=0, max_value=60),
        workers=st.integers(min_value=1, max_value=6),
        data=st.data(),
    )
    def test_every_chunk_claimed_exactly_once(self, n_chunks, workers, data):
        owners = assign_owners(n_chunks, workers)
        ledger = ChunkLedger(owners, bytearray(n_chunks))
        owner_of = {
            chunk: slot for slot, queue in enumerate(owners) for chunk in queue
        }
        claimed = []
        active = list(range(workers))
        while active:
            slot = data.draw(st.sampled_from(active))
            grabbed = ledger.claim(slot)
            if grabbed is None:
                active.remove(slot)
                continue
            chunk, stolen = grabbed
            assert stolen == (owner_of[chunk] != slot)
            claimed.append(chunk)
        assert sorted(claimed) == list(range(n_chunks))
        assert ledger.remaining() == 0
        assert all(ledger.claim(slot) is None for slot in range(workers))

    def test_ledger_validates_owner_partition(self):
        with pytest.raises(ValueError):
            ChunkLedger([[0, 1], [1]], bytearray(3))
        with pytest.raises(ValueError):
            ChunkLedger([[0]], bytearray(2))


# ---------------------------------------------------------------------------
# Shared-memory shipping + leak safety
# ---------------------------------------------------------------------------


def _shm_dir() -> Path:
    return Path("/dev/shm")


def _live_segments() -> set:
    root = _shm_dir()
    if not root.is_dir():  # pragma: no cover - non-POSIX
        return set()
    return {p.name for p in root.glob("psm_*")}


@pytest.mark.skipif(not shm_available(), reason="shared_memory unavailable")
class TestShm:
    def test_share_attach_round_trip(self):
        payload = np.arange(12, dtype=np.float64).reshape(3, 4)
        with ShmArena() as arena:
            ref = arena.share(payload)
            view = attach_array(ref)
            assert np.array_equal(view, payload)
            assert not view.flags.writeable
            detach_all()
        assert arena.closed

    def test_close_is_idempotent_and_unlinks(self):
        arena = ShmArena()
        ref = arena.share(np.ones(4))
        names = set(arena.segment_names)
        assert names
        arena.close()
        arena.close()
        assert not arena.segment_names
        assert not (names & _live_segments())
        with pytest.raises(FileNotFoundError):
            attach_array(ref)

    def test_garbage_collection_unlinks(self):
        arena = ShmArena()
        arena.share(np.zeros(8))
        names = set(arena.segment_names)
        del arena
        gc.collect()
        assert not (names & _live_segments())

    def test_error_path_does_not_leak(self):
        names = set()
        with pytest.raises(RuntimeError):
            with ShmArena() as arena:
                arena.share(np.ones((2, 2)))
                names = set(arena.segment_names)
                raise RuntimeError("boom")
        assert names and not (names & _live_segments())

    def test_ship_groups_round_trip(self):
        dataset = _workload(n_records=60, seed=3)
        groups = dataset.groups
        with ShmArena() as arena:
            shipment = ship_groups(groups, arena)
            assert shipment.via_shm
            loaded = load_groups(shipment)
            assert [g.key for g in loaded] == [g.key for g in groups]
            for original, copy in zip(groups, loaded):
                assert np.array_equal(original.values, copy.values)
                assert copy.index == original.index
            detach_all()

    def test_ship_groups_inline_without_arena(self):
        dataset = _workload(n_records=60, seed=3)
        shipment = ship_groups(dataset.groups)
        assert not shipment.via_shm
        assert load_groups(shipment) is shipment.inline

    def test_pooled_run_leaves_no_segments_behind(self, anticorrelated):
        before = _live_segments()
        result = make_algorithm(
            "IN", execution=ExecutionConfig(workers=2, shm=True)
        ).compute(anticorrelated)
        assert len(result) > 0
        assert _live_segments() <= before

    def test_engine_close_releases_all_segments(self, anticorrelated):
        """Engine-owned arenas (dataset + pinned index/order) are released
        deterministically by close(), not left to interpreter exit."""
        from repro.engine import SkylineEngine

        before = _live_segments()
        engine = SkylineEngine(ExecutionConfig(workers=2, shm=True))
        handle = engine.attach(anticorrelated)
        assert handle.via_shm
        assert _live_segments() - before  # resident payload is live
        result = engine.query(handle, algorithm="LO")
        assert len(result) > 0
        engine.close()
        engine.close()  # idempotent
        assert _live_segments() <= before

    def test_engine_detach_releases_dataset_segments(self, anticorrelated):
        from repro.engine import SkylineEngine

        before = _live_segments()
        with SkylineEngine(ExecutionConfig(workers=2, shm=True)) as engine:
            handle = engine.attach(anticorrelated)
            assert _live_segments() - before
            engine.detach(handle)
            # The pool (and its queues) stays up; the dataset's arena and
            # pinned artifacts are gone already.
            assert engine.worker_pids
            assert _live_segments() <= before
        assert _live_segments() <= before

    def test_engine_garbage_collection_releases_segments(self, anticorrelated):
        """The weakref.finalize safety net covers engines never closed."""
        from repro.engine import SkylineEngine

        before = _live_segments()
        engine = SkylineEngine(ExecutionConfig(workers=2, shm=True))
        engine.attach(anticorrelated)
        created = _live_segments() - before
        assert created
        del engine
        gc.collect()
        assert not (created & _live_segments())


# ---------------------------------------------------------------------------
# FlatRTree: read-only reconstruction equivalence
# ---------------------------------------------------------------------------


class TestFlatRTree:
    def _points(self, seed=17, n=200, dims=3):
        rng = np.random.default_rng(seed)
        return rng.uniform(0.0, 1.0, size=(n, dims))

    def _windows(self, seed=29, n=25, dims=3):
        rng = np.random.default_rng(seed)
        lows = rng.uniform(0.0, 0.8, size=(n, dims))
        highs = lows + rng.uniform(0.05, 0.6, size=(n, dims))
        return list(zip(lows, highs))

    def test_matches_the_tree_on_window_queries(self):
        points = self._points()
        tree = RTree.bulk_load(
            (Rect.point(p), i) for i, p in enumerate(points)
        )
        flat = tree.pack()
        assert len(flat) == len(points)
        for low, high in self._windows():
            expected = sorted(tree.search_window(low, high))
            assert sorted(flat.search_window(low, high)) == expected
        assert flat.window_queries == tree.window_queries
        assert flat.candidates_returned == tree.candidates_returned

    def test_arrays_round_trip(self):
        points = self._points(seed=5, n=64)
        flat = RTree.bulk_load(
            (Rect.point(p), i) for i, p in enumerate(points)
        ).pack()
        clone = FlatRTree.from_arrays(flat.arrays())
        for low, high in self._windows(seed=7, n=10):
            assert sorted(clone.search_window(low, high)) == sorted(
                flat.search_window(low, high)
            )

    def test_empty_tree_packs(self):
        flat = RTree.bulk_load([]).pack()
        assert len(flat) == 0
        assert flat.search_window(np.zeros(2), np.ones(2)) == []

    def test_non_integer_payloads_rejected(self):
        tree = RTree.bulk_load([(Rect.point(np.zeros(2)), "a")])
        with pytest.raises(TypeError, match="integers"):
            tree.pack()
