"""Tests for the synthetic NBA player-season table."""

import numpy as np
import pytest

from repro.data.nba import NBA_COLUMNS, STAT_COLUMNS, nba_player_names, nba_table
from repro.relational.operators import grouped_dataset_from_table


@pytest.fixture(scope="module")
def table():
    return nba_table(seed=7, target_rows=3000)


class TestSchema:
    def test_columns(self, table):
        assert table.columns == NBA_COLUMNS
        assert len(STAT_COLUMNS) == 8  # the paper's eight attributes

    def test_row_count(self, table):
        assert len(table) == 3000

    def test_value_sanity(self, table):
        pts = table.column_values("pts")
        assert all(p >= 0 for p in pts)
        assert max(pts) < 60  # no 60-ppg seasons
        years = table.column_values("year")
        assert min(years) >= 1979
        assert max(years) <= 2010
        games = table.column_values("gp")
        assert min(games) >= 5 and max(games) <= 82
        positions = set(table.column_values("pos"))
        assert positions <= {"G", "F", "C"}

    def test_determinism(self):
        a = nba_table(seed=3, target_rows=500)
        b = nba_table(seed=3, target_rows=500)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            nba_table(target_rows=0)


class TestGroupingStructure:
    def test_player_careers_are_heavy_tailed(self, table):
        dataset = grouped_dataset_from_table(table, ["player"], ["pts"])
        sizes = [group.size for group in dataset]
        assert max(sizes) >= 10
        assert min(sizes) >= 1
        assert max(sizes) <= 20
        # many short careers, few long ones
        assert sum(1 for s in sizes if s <= 4) > sum(
            1 for s in sizes if s >= 10
        )

    def test_team_and_year_groups_are_coarse(self, table):
        by_team = grouped_dataset_from_table(table, ["team"], ["pts"])
        by_year = grouped_dataset_from_table(table, ["year"], ["pts"])
        assert len(by_team) <= 30
        assert len(by_year) <= 32
        assert max(g.size for g in by_team) > 50

    def test_positional_archetypes(self, table):
        """Centers out-rebound and out-block guards; guards out-assist."""
        rows = list(table.iter_dicts())
        guards = [r for r in rows if r["pos"] == "G"]
        centers = [r for r in rows if r["pos"] == "C"]
        mean = lambda rs, c: float(np.mean([r[c] for r in rs]))
        assert mean(centers, "reb") > mean(guards, "reb")
        assert mean(centers, "blk") > mean(guards, "blk")
        assert mean(guards, "ast") > mean(centers, "ast")
        assert mean(guards, "tpm") > mean(centers, "tpm")

    def test_three_point_era_effect(self, table):
        rows = list(table.iter_dicts())
        early = [r["tpm"] for r in rows if r["year"] < 1990]
        late = [r["tpm"] for r in rows if r["year"] > 2000]
        assert float(np.mean(late)) > float(np.mean(early))


class TestNames:
    def test_unique(self):
        rng = np.random.default_rng(0)
        names = nba_player_names(3000, rng)
        assert len(set(names)) == 3000

    def test_readable(self):
        rng = np.random.default_rng(0)
        for name in nba_player_names(50, rng):
            assert 2 <= len(name.split()) <= 4
