"""Moderate-scale stress tests (slow-marked): paper-sized code paths.

These run each main code path at sizes where the vectorised kernels, the
R-tree and the fast 2-d counting path genuinely engage, and cross-check
results between independent implementations.
"""

import numpy as np
import pytest

from repro.core.algorithms import make_algorithm
from repro.core.anytime import AnytimeAggregateSkyline
from repro.core.partitioned import partitioned_aggregate_skyline
from repro.core.ranking import compute_gamma_profile
from repro.data.nba import STAT_COLUMNS, nba_table
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.relational.operators import grouped_dataset_from_table

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def big_anticorrelated():
    return generate_grouped(
        SyntheticSpec(
            n_records=4_000,
            avg_group_size=80,
            dimensions=4,
            distribution="anticorrelated",
            seed=123,
        )
    )


def test_all_algorithms_agree_at_scale(big_anticorrelated):
    reference = make_algorithm("NL", 0.5, prune_policy="safe").compute(
        big_anticorrelated
    )
    for name in ("TR", "SI", "IN", "LO", "AD"):
        result = make_algorithm(name, 0.5, prune_policy="safe").compute(
            big_anticorrelated
        )
        assert result.as_set() == reference.as_set(), name


def test_fast_2d_path_consistent_at_scale():
    """Groups big enough that every comparison uses the Fenwick kernel."""
    dataset = generate_grouped(
        SyntheticSpec(
            n_records=3_000,
            avg_group_size=300,
            dimensions=2,
            distribution="anticorrelated",
            seed=7,
        )
    )
    fast = make_algorithm("NL", 0.5, use_stopping_rule=False).compute(dataset)
    # Route around the fast path by comparing three dimensions padded...
    # simpler: exact profile (uses probes, partially generic kernel).
    profile = compute_gamma_profile(dataset)
    assert set(profile.skyline_at(0.5)) == fast.as_set()


def test_nba_full_scale_team_grouping():
    table = nba_table(seed=7, target_rows=15_000)
    assert len(table) == 15_000
    dataset = grouped_dataset_from_table(
        table, ["team"], list(STAT_COLUMNS[:4])
    )
    lo = make_algorithm("LO", 0.5).compute(dataset)
    si = make_algorithm("SI", 0.5, prune_policy="safe").compute(dataset)
    nl = make_algorithm("NL", 0.5).compute(dataset)
    assert lo.as_set() == nl.as_set()
    assert si.as_set() == nl.as_set()


def test_extension_paths_agree_at_scale(big_anticorrelated):
    reference = make_algorithm("LO", 0.5).compute(big_anticorrelated)
    partitioned = partitioned_aggregate_skyline(
        big_anticorrelated, partitions=5
    )
    assert partitioned.as_set() == reference.as_set()
    anytime = AnytimeAggregateSkyline(big_anticorrelated, 0.5)
    anytime.run(pair_budget_per_step=200_000)
    assert set(anytime.confirmed()) == reference.as_set()


def test_gamma_sweep_monotone_at_scale(big_anticorrelated):
    sizes = []
    for gamma in (0.5, 0.7, 0.9, 1.0):
        result = make_algorithm("LO", gamma).compute(big_anticorrelated)
        sizes.append(len(result))
    assert sizes == sorted(sizes)


def test_rtree_bulk_load_large():
    from repro.index.rtree import Rect, RTree

    rng = np.random.default_rng(0)
    points = rng.uniform(size=(5_000, 3))
    tree = RTree.bulk_load(
        ((Rect.point(p), i) for i, p in enumerate(points)), max_entries=32
    )
    assert len(tree) == 5_000
    found = tree.search_window([0.25, 0.25, 0.25], [0.5, 0.5, 0.5])
    expected = {
        i
        for i, p in enumerate(points)
        if np.all(p >= 0.25) and np.all(p <= 0.5)
    }
    assert set(found) == expected
