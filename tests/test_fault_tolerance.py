"""Fault-injection matrix for the pool's crash/retry/fallback machinery.

The contract under test (``docs/parallel.md``, fault-tolerance section):

* a worker killed mid-run is *detected* by the liveness poll within
  seconds — wall-clock far below ``pool_timeout`` — and surfaces as
  :class:`~repro.parallel.WorkerCrashError` carrying the dead pids,
  signals and the undelivered chunk spans;
* ``on_failure="retry"`` re-executes only the lost chunks on a fresh
  pool, and because chunks are independent deterministic spans the
  recovered run is **bit-identical** to an unfaulted one — same chunk
  outcomes, same skyline, same ``AlgorithmStats`` counters;
* ``on_failure="serial"`` finishes the lost chunks inline on the parent
  after retries are exhausted, still producing the exact skyline;
* a *hung* worker is not a crash: the liveness poll sees a live process,
  so the run ends via ``pool_timeout`` exactly as before.

Every scenario runs under both ``fork`` and ``spawn`` (parametrized via
``REPRO_START_METHOD``), because the two start methods exercise different
shipping paths (inherited pages vs shared memory + pickled payload).
CI layers pytest-timeout on top; the autouse SIGALRM fixture below is the
local fallback so a regression hangs a test run for at most 120 seconds.
"""

from __future__ import annotations

import signal
import time

import pytest

from repro.core.algorithms import make_algorithm
from repro.core.execution import ExecutionConfig
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.obs import runlog as obs_runlog
from repro.obs import tracing as obs_tracing
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.parallel import (
    FAULTS_ENV_VAR,
    FaultSpec,
    InjectedFaultError,
    PoolTimeoutError,
    WorkerCrashError,
    WorkerConfig,
    chunk_ranges,
    pair_count,
    run_spans,
)
from repro.parallel.executor import START_METHOD_ENV_VAR
from repro.parallel.scheduler import guided_spans
from tests.conftest import exact_aggregate_skyline

pytestmark = pytest.mark.timeout(120)

START_METHODS = ("fork", "spawn")


@pytest.fixture(autouse=True)
def _deadlock_guard():
    """Per-test wall-clock ceiling: a wedged pool fails, it doesn't hang.

    CI adds pytest-timeout on top; this fixture is the local fallback for
    environments where that plugin is not installed (POSIX only).
    """
    if not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):  # pragma: no cover - only on deadlock
        raise RuntimeError("fault-tolerance test exceeded the 120s guard")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(120)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(params=START_METHODS)
def start_method(request, monkeypatch):
    if request.param == "fork" and not hasattr(signal, "SIGALRM"):
        pytest.skip("fork start method requires POSIX")
    monkeypatch.setenv(START_METHOD_ENV_VAR, request.param)
    return request.param


def workload(n_records: int = 200, seed: int = 7):
    return generate_grouped(
        SyntheticSpec(
            n_records=n_records,
            avg_group_size=10,
            dimensions=3,
            distribution="independent",
            seed=seed,
        )
    )


def outcome_key(outcome):
    """Everything a chunk outcome contributes to results and stats."""
    return (
        outcome.start,
        outcome.stop,
        tuple(outcome.verdicts),
        outcome.comparisons,
        outcome.pairs_examined,
        outcome.pairs_skipped,
        outcome.bbox_shortcuts,
        outcome.stopping_rule_exits,
        outcome.index_candidates,
    )


def run_pairs(groups, spans, workers, **kwargs):
    return run_spans(groups, WorkerConfig(gamma=0.5), spans, workers, **kwargs)


# ----------------------------------------------------------------------
# FaultSpec parsing and validation
# ----------------------------------------------------------------------


class TestFaultSpec:
    def test_from_spec_kind_only(self):
        spec = FaultSpec.from_spec("crash")
        assert spec.kind == "crash"
        assert spec.at_chunk is None and spec.probability is None
        assert spec.max_fires == 1

    def test_from_spec_at_chunk(self):
        spec = FaultSpec.from_spec("crash@3")
        assert spec.at_chunk == 3

    def test_from_spec_options(self):
        spec = FaultSpec.from_spec("exception:p=0.5,fires=4,seed=9")
        assert spec.kind == "exception"
        assert spec.probability == 0.5
        assert spec.max_fires == 4
        assert spec.seed == 9

    def test_from_spec_delay(self):
        spec = FaultSpec.from_spec("slow@0:delay=0.25")
        assert spec.kind == "slow" and spec.delay == 0.25

    @pytest.mark.parametrize(
        "bad",
        ["", "explode", "crash@x", "crash:p=2.0", "crash:fires=0", "crash:wat=1"],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.from_spec(bad)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "crash@2")
        spec = FaultSpec.from_env()
        assert spec is not None and spec.kind == "crash" and spec.at_chunk == 2
        monkeypatch.delenv(FAULTS_ENV_VAR)
        assert FaultSpec.from_env() is None

    def test_triggerless_spec_arms_every_chunk(self):
        # Neither at_chunk nor probability: the fault fires on the first
        # chunk any worker runs (budget-limited by max_fires).
        spec = FaultSpec("crash")
        assert spec.at_chunk is None and spec.probability is None
        assert spec.max_fires == 1


# ----------------------------------------------------------------------
# Crash detection: fast, informative, far below pool_timeout
# ----------------------------------------------------------------------


class TestCrashDetection:
    def test_sigkill_detected_fast_stealing(self, start_method):
        """The acceptance scenario: workers=4, stealing, pool_timeout=300 —

        an injected SIGKILL must surface as WorkerCrashError in well under
        10 seconds, not hang toward the 300s timeout.
        """
        dataset = workload()
        total = pair_count(len(dataset.groups))
        spans = guided_spans(total, 4, min_chunk=max(1, total // 64))
        started = time.monotonic()
        with pytest.raises(WorkerCrashError) as excinfo:
            run_pairs(
                dataset.groups,
                spans,
                4,
                scheduler="stealing",
                pool_timeout=300.0,
                faults=FaultSpec("crash", at_chunk=0),
            )
        elapsed = time.monotonic() - started
        assert elapsed < 10.0, f"crash detection took {elapsed:.1f}s"
        error = excinfo.value
        assert error.pids and all(pid > 0 for pid in error.pids)
        assert "SIGKILL" in str(error)
        assert error.lost_spans  # the crashed chunk was never delivered

    def test_sigkill_detected_fast_static(self, start_method):
        dataset = workload()
        total = pair_count(len(dataset.groups))
        started = time.monotonic()
        with pytest.raises(WorkerCrashError):
            run_pairs(
                dataset.groups,
                chunk_ranges(total, 8),
                2,
                pool_timeout=300.0,
                faults=FaultSpec("crash", at_chunk=0),
            )
        assert time.monotonic() - started < 10.0

    def test_crash_error_carries_signal_names(self):
        dataset = workload(n_records=120)
        total = pair_count(len(dataset.groups))
        with pytest.raises(WorkerCrashError) as excinfo:
            run_pairs(
                dataset.groups,
                chunk_ranges(total, 4),
                2,
                faults=FaultSpec("crash", at_chunk=0),
            )
        assert "SIGKILL" in excinfo.value.signals

    def test_worker_exception_raises_original_type(self, start_method):
        """on_failure='raise' re-raises the worker's own exception."""
        dataset = workload(n_records=120)
        total = pair_count(len(dataset.groups))
        with pytest.raises(InjectedFaultError):
            run_pairs(
                dataset.groups,
                chunk_ranges(total, 4),
                2,
                faults=FaultSpec("exception", at_chunk=0),
            )


# ----------------------------------------------------------------------
# Retry: recovered runs are bit-identical to unfaulted ones
# ----------------------------------------------------------------------


class TestRetry:
    @pytest.mark.parametrize("scheduler", ["static", "stealing"])
    def test_retry_bit_identical(self, start_method, scheduler):
        dataset = workload()
        total = pair_count(len(dataset.groups))
        if scheduler == "stealing":
            spans = guided_spans(total, 2, min_chunk=max(1, total // 32))
        else:
            spans = chunk_ranges(total, 8)
        clean = run_pairs(dataset.groups, spans, 2, scheduler=scheduler)
        recovered = run_pairs(
            dataset.groups,
            spans,
            2,
            scheduler=scheduler,
            faults=FaultSpec("crash", at_chunk=0),
            on_failure="retry",
            max_retries=2,
            retry_backoff=0.01,
        )
        assert [outcome_key(o) for o in clean.outcomes] == [
            outcome_key(o) for o in recovered.outcomes
        ]

    def test_retry_after_worker_exception(self, start_method):
        dataset = workload(n_records=120)
        total = pair_count(len(dataset.groups))
        spans = chunk_ranges(total, 6)
        clean = run_pairs(dataset.groups, spans, 2)
        recovered = run_pairs(
            dataset.groups,
            spans,
            2,
            faults=FaultSpec("exception", at_chunk=0),
            on_failure="retry",
            max_retries=2,
            retry_backoff=0.01,
        )
        assert [outcome_key(o) for o in clean.outcomes] == [
            outcome_key(o) for o in recovered.outcomes
        ]

    def test_retries_exhausted_raises_crash_error(self):
        """A fault that keeps firing defeats every retry; policy 'retry'
        then surfaces the final WorkerCrashError."""
        dataset = workload(n_records=120)
        total = pair_count(len(dataset.groups))
        with pytest.raises(WorkerCrashError):
            run_pairs(
                dataset.groups,
                chunk_ranges(total, 4),
                2,
                faults=FaultSpec("crash", probability=1.0, max_fires=10**6),
                on_failure="retry",
                max_retries=1,
                retry_backoff=0.01,
            )


# ----------------------------------------------------------------------
# Serial fallback: exhausted retries still produce the exact result
# ----------------------------------------------------------------------


class TestSerialFallback:
    def test_fallback_bit_identical(self, start_method):
        """Every pool attempt dies (p=1 crash, unlimited fires); the
        parent finishes the lost chunks inline and the run is still
        bit-identical to an unfaulted one."""
        dataset = workload()
        total = pair_count(len(dataset.groups))
        spans = chunk_ranges(total, 8)
        clean = run_pairs(dataset.groups, spans, 2)
        recovered = run_pairs(
            dataset.groups,
            spans,
            2,
            faults=FaultSpec("crash", probability=1.0, max_fires=10**6),
            on_failure="serial",
            max_retries=1,
            retry_backoff=0.01,
        )
        assert [outcome_key(o) for o in clean.outcomes] == [
            outcome_key(o) for o in recovered.outcomes
        ]

    def test_single_crash_recovers_via_retry_before_fallback(self):
        """on_failure='serial' retries first; a one-shot crash never
        reaches the fallback path (no pool_fallback counter tick)."""
        dataset = workload(n_records=120)
        total = pair_count(len(dataset.groups))
        registry = MetricsRegistry()
        with use_registry(registry):
            run_pairs(
                dataset.groups,
                chunk_ranges(total, 6),
                2,
                faults=FaultSpec("crash", at_chunk=0),
                on_failure="serial",
                # Generous retry headroom: the injected fault can fire
                # only once (max_fires=1), so the fallback counter may
                # tick only if several consecutive attempts fail for
                # unrelated environmental reasons.
                max_retries=3,
                retry_backoff=0.01,
            )
        assert registry.get("pool_fallbacks_total") is None
        assert registry.get("worker_crashes_total") is not None


# ----------------------------------------------------------------------
# Hang: still a timeout, not a crash
# ----------------------------------------------------------------------


class TestHang:
    def test_hang_caught_by_pool_timeout(self, start_method):
        dataset = workload(n_records=120)
        total = pair_count(len(dataset.groups))
        started = time.monotonic()
        with pytest.raises(PoolTimeoutError):
            run_pairs(
                dataset.groups,
                chunk_ranges(total, 4),
                2,
                pool_timeout=2.0,
                faults=FaultSpec("hang", at_chunk=0),
            )
        # Bounded by the timeout plus teardown, not by HANG_SECONDS.
        assert time.monotonic() - started < 30.0

    def test_hang_not_retried(self):
        """Timeouts are not retry-worthy: the pool is wedged, not dead."""
        dataset = workload(n_records=120)
        total = pair_count(len(dataset.groups))
        with pytest.raises(PoolTimeoutError):
            run_pairs(
                dataset.groups,
                chunk_ranges(total, 4),
                2,
                pool_timeout=2.0,
                faults=FaultSpec("hang", at_chunk=0),
                on_failure="retry",
                max_retries=3,
            )


# ----------------------------------------------------------------------
# Algorithm level: PAR and pooled IN recover end to end
# ----------------------------------------------------------------------


class TestAlgorithmRecovery:
    @pytest.mark.parametrize("name", ["PAR", "IN"])
    def test_env_injected_crash_recovers_bit_identical(
        self, start_method, name, monkeypatch
    ):
        """REPRO_FAULTS=crash@0 + on_failure='retry': the pooled run must
        match serial NL (skyline) and the unfaulted pooled run (stats)."""
        dataset = workload()
        serial = make_algorithm("NL", gamma=0.5)
        serial_result = serial.compute(dataset)

        execution = ExecutionConfig(
            workers=2, max_retries=2, retry_backoff=0.01, on_failure="retry"
        )
        clean = make_algorithm(name, gamma=0.5, execution=execution)
        clean_result = clean.compute(dataset)

        monkeypatch.setenv(FAULTS_ENV_VAR, "crash@0")
        faulted = make_algorithm(name, gamma=0.5, execution=execution)
        faulted_result = faulted.compute(dataset)

        expected = exact_aggregate_skyline(dataset, 0.5)
        assert faulted_result.as_set() == expected
        assert faulted_result.as_set() == serial_result.as_set()
        assert (
            faulted_result.stats.group_comparisons
            == clean_result.stats.group_comparisons
        )
        assert (
            faulted_result.stats.record_pairs_examined
            == clean_result.stats.record_pairs_examined
        )

    def test_env_injected_crash_serial_fallback(self, monkeypatch):
        """Exhausted retries + on_failure='serial' still yields the exact
        Definition-2 skyline."""
        dataset = workload(n_records=120)
        monkeypatch.setenv(FAULTS_ENV_VAR, "crash:p=1.0,fires=1000000")
        algorithm = make_algorithm(
            "PAR",
            gamma=0.5,
            execution=ExecutionConfig(
                workers=2, max_retries=1, retry_backoff=0.01, on_failure="serial"
            ),
        )
        result = algorithm.compute(dataset)
        assert result.as_set() == exact_aggregate_skyline(dataset, 0.5)

    def test_env_injected_crash_default_raises(self, monkeypatch):
        dataset = workload(n_records=120)
        monkeypatch.setenv(FAULTS_ENV_VAR, "crash@0")
        algorithm = make_algorithm(
            "PAR", gamma=0.5, execution=ExecutionConfig(workers=2)
        )
        with pytest.raises(WorkerCrashError):
            algorithm.compute(dataset)


# ----------------------------------------------------------------------
# Observability: events, counters, trace correlation
# ----------------------------------------------------------------------


class TestObservability:
    def _run_with_obs(self, tmp_path, **kwargs):
        dataset = workload(n_records=120)
        total = pair_count(len(dataset.groups))
        log_path = tmp_path / "run.jsonl"
        registry = MetricsRegistry()
        tracer = obs_tracing.Tracer()
        with use_registry(registry):
            with obs_tracing.use_tracer(tracer):
                with obs_runlog.use_runlog(obs_runlog.RunLog(log_path)):
                    with tracer.span("test.root"):
                        error = None
                        try:
                            run_pairs(
                                dataset.groups,
                                chunk_ranges(total, 6),
                                2,
                                **kwargs,
                            )
                        except Exception as exc:
                            error = exc
        return obs_runlog.read_events(log_path), registry, error

    def test_retry_events_and_counters(self, tmp_path):
        events, registry, error = self._run_with_obs(
            tmp_path,
            faults=FaultSpec("crash", at_chunk=0),
            on_failure="retry",
            max_retries=2,
            retry_backoff=0.01,
        )
        assert error is None
        names = [event["event"] for event in events]
        assert "pool_error" in names
        assert "chunk_retry" in names
        # every pool_start closed by exactly one terminal event
        starts = names.count("pool_start")
        terminals = (
            names.count("pool_end")
            + names.count("pool_timeout")
            + names.count("pool_error")
        )
        assert starts >= 2  # the crashed attempt plus the retry
        assert starts == terminals
        # all events correlate to the same trace
        trace_ids = {e["trace_id"] for e in events if "trace_id" in e}
        assert len(trace_ids) == 1
        pool_error = next(e for e in events if e["event"] == "pool_error")
        assert pool_error["error"] == "WorkerCrashError"
        assert pool_error["crashed_pids"]
        assert pool_error["lost_chunks"] >= 1
        retry = next(e for e in events if e["event"] == "chunk_retry")
        assert retry["attempt"] >= 1 and retry["chunks"] >= 1
        assert registry.get("worker_crashes_total") is not None
        assert registry.get("chunk_retries_total") is not None

    def test_worker_exception_emits_pool_error(self, tmp_path):
        events, _, error = self._run_with_obs(
            tmp_path, faults=FaultSpec("exception", at_chunk=0)
        )
        assert isinstance(error, InjectedFaultError)
        names = [event["event"] for event in events]
        assert "pool_error" in names
        assert names.count("pool_start") == (
            names.count("pool_end")
            + names.count("pool_timeout")
            + names.count("pool_error")
        )
        pool_error = next(e for e in events if e["event"] == "pool_error")
        assert pool_error["error"] == "InjectedFaultError"

    def test_fallback_event_and_counter(self, tmp_path):
        events, registry, error = self._run_with_obs(
            tmp_path,
            faults=FaultSpec("crash", probability=1.0, max_fires=10**6),
            on_failure="serial",
            max_retries=1,
            retry_backoff=0.01,
        )
        assert error is None
        names = [event["event"] for event in events]
        assert "pool_fallback" in names
        fallback = next(e for e in events if e["event"] == "pool_fallback")
        assert fallback["chunks"] >= 1
        assert registry.get("pool_fallbacks_total") is not None

    def test_clean_run_emits_no_fault_events(self, tmp_path):
        events, registry, error = self._run_with_obs(tmp_path)
        assert error is None
        names = [event["event"] for event in events]
        assert "pool_error" not in names
        assert "chunk_retry" not in names
        assert "pool_fallback" not in names
        assert names.count("pool_start") == names.count("pool_end") == 1
        assert registry.get("worker_crashes_total") is None
