"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.relational.csvio import load_csv, save_csv
from repro.relational.table import Table


@pytest.fixture
def movies_csv(tmp_path):
    table = Table(
        ["title", "director", "pop", "qual"],
        [
            ("Pulp Fiction", "Tarantino", 557, 9.0),
            ("Kill Bill", "Tarantino", 313, 8.2),
            ("The Room", "Wiseau", 10, 3.2),
            ("The Godfather", "Coppola", 531, 9.2),
        ],
    )
    path = tmp_path / "movies.csv"
    save_csv(table, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "x.csv"])
        assert args.records == 10_000
        assert args.distribution == "independent"

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestQueryCommand:
    def test_aggregate_skyline_query(self, movies_csv, capsys):
        code = main(
            [
                "query",
                "--table",
                f"movies={movies_csv}",
                "SELECT director FROM movies GROUP BY director"
                " SKYLINE OF pop MAX, qual MAX",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Tarantino" in out and "Coppola" in out
        assert "Wiseau" not in out.replace("groups in the skyline", "")
        assert "group comparisons" in out

    def test_plain_query(self, movies_csv, capsys):
        code = main(
            [
                "query",
                "--table",
                f"movies={movies_csv}",
                "SELECT title FROM movies WHERE qual > 9.0",
            ]
        )
        assert code == 0
        assert "The Godfather" in capsys.readouterr().out

    def test_bad_table_binding(self, capsys):
        code = main(["query", "--table", "oops", "SELECT * FROM t"])
        assert code == 2
        assert "NAME=CSV" in capsys.readouterr().err


class TestSkylineCommand:
    def test_basic(self, movies_csv, capsys):
        code = main(
            [
                "skyline",
                "--csv", movies_csv,
                "--group-by", "director",
                "--of", "pop:max,qual:max",
                "--algorithm", "NL",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Tarantino" in out
        assert "gamma=0.5" in out

    def test_min_direction(self, movies_csv, capsys):
        code = main(
            [
                "skyline",
                "--csv", movies_csv,
                "--group-by", "director",
                "--of", "pop:min",
            ]
        )
        assert code == 0
        assert "Wiseau" in capsys.readouterr().out

    def test_workers_forces_parallel_algorithm(self, movies_csv, capsys):
        code = main(
            [
                "skyline",
                "--csv", movies_csv,
                "--group-by", "director",
                "--of", "pop:max,qual:max",
                "--workers", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[PAR]" in out
        assert "Tarantino" in out and "Coppola" in out


class TestGenerateCommands:
    def test_generate(self, tmp_path, capsys):
        out_path = tmp_path / "data.csv"
        code = main(
            [
                "generate",
                "--records", "60",
                "--dims", "3",
                "--group-size", "20",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        table = load_csv(out_path)
        assert table.columns == ("group", "a0", "a1", "a2")
        assert len(table) == 60
        assert "wrote 60 records in 3 groups" in capsys.readouterr().out

    def test_nba(self, tmp_path, capsys):
        out_path = tmp_path / "nba.csv"
        code = main(["nba", "--rows", "120", "--out", str(out_path)])
        assert code == 0
        table = load_csv(out_path)
        assert len(table) == 120
        assert "player" in table.columns

    def test_generated_csv_feeds_skyline_command(self, tmp_path, capsys):
        out_path = tmp_path / "data.csv"
        main(
            [
                "generate", "--records", "40", "--dims", "2",
                "--group-size", "10", "--out", str(out_path),
            ]
        )
        code = main(
            [
                "skyline",
                "--csv", str(out_path),
                "--group-by", "group",
                "--of", "a0:max,a1:max",
            ]
        )
        assert code == 0
        assert "groups survive" in capsys.readouterr().out


class TestExperimentCommand:
    def test_table2(self, capsys):
        code = main(["experiment", "table2", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "0.94" in out and "0.68" in out


class TestRankCommand:
    def test_rank(self, movies_csv, capsys):
        code = main(
            [
                "rank",
                "--csv", movies_csv,
                "--group-by", "director",
                "--of", "pop:max,qual:max",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "minimal gamma" in out
        assert "never" in out          # Wiseau is totally dominated

    def test_rank_limit(self, movies_csv, capsys):
        code = main(
            [
                "rank",
                "--csv", movies_csv,
                "--group-by", "director",
                "--of", "pop:max",
                "--limit", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("\n") <= 4    # header + rule + one row


class TestCompareCommand:
    def _write_results(self, path, elapsed):
        from repro.harness.persistence import save_results
        from repro.harness.runner import RunResult

        save_results(
            [
                RunResult("figX", {"n": 10}, "LO", elapsed, 1, 1, 1),
            ],
            path,
        )

    def test_compare(self, tmp_path, capsys):
        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        self._write_results(before, 1.0)
        self._write_results(after, 0.25)
        code = main(["compare", str(before), str(after)])
        assert code == 0
        out = capsys.readouterr().out
        assert "speed-up" in out
        assert "0.25" in out
        last_row = out.strip().splitlines()[-1].split()
        assert last_row[-1] == "4"

    def test_compare_disjoint(self, tmp_path, capsys):
        from repro.harness.persistence import save_results
        from repro.harness.runner import RunResult

        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        save_results([RunResult("x", {"n": 1}, "NL", 1.0, 1, 1, 1)], a)
        save_results([RunResult("y", {"n": 2}, "LO", 1.0, 1, 1, 1)], b)
        code = main(["compare", str(a), str(b)])
        assert code == 1
        assert "no overlapping" in capsys.readouterr().out


class TestObsFlags:
    def test_log_json_writes_correlated_events(self, movies_csv, tmp_path):
        log_path = tmp_path / "run.jsonl"
        code = main(
            [
                "skyline",
                "--csv", movies_csv,
                "--group-by", "director",
                "--of", "pop:max,qual:max",
                f"--trace={tmp_path / 'trace.jsonl'}",
                "--log-json", str(log_path),
            ]
        )
        assert code == 0
        from repro.obs.runlog import read_events
        from repro.obs.tracing import read_jsonl

        events = read_events(log_path)
        names = [e["event"] for e in events]
        assert names[0] == "cli_start" and names[-1] == "cli_end"
        assert "run_start" in names and "run_end" in names
        (trace,) = read_jsonl(tmp_path / "trace.jsonl")
        run_events = [e for e in events if "trace_id" in e]
        assert run_events
        assert {e["trace_id"] for e in run_events} == {trace["trace_id"]}

    def test_metrics_openmetrics_format(self, capsys):
        code = main(["metrics", "--demo", "--format", "openmetrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE skyline_runs counter" in out
        assert "skyline_runs_total{" in out
        assert out.rstrip().endswith("# EOF")

    def test_progress_with_execution_uses_pooled_engine(
        self, tmp_path, capsys
    ):
        data = tmp_path / "data.csv"
        main(
            [
                "generate", "--records", "400", "--dims", "3",
                "--group-size", "20", "--sizes", "zipf", "--out", str(data),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "skyline",
                "--csv", str(data),
                "--group-by", "group",
                "--of", "a0:max,a1:max,a2:max",
                "--algorithm", "IN",
                "--execution", "workers=2",
                "--progress",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "[IN]" in captured.out        # pooled engine, not anytime
        assert "chunks" in captured.err      # chunk heartbeat on stderr

    def test_progress_without_execution_uses_anytime_engine(
        self, movies_csv, capsys
    ):
        code = main(
            [
                "skyline",
                "--csv", movies_csv,
                "--group-by", "director",
                "--of", "pop:max,qual:max",
                "--progress",
            ]
        )
        assert code == 0
        assert "[anytime]" in capsys.readouterr().out
