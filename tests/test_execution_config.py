"""Tests for the unified execution API (repro.core.execution).

Covers the frozen :class:`ExecutionConfig` dataclass (validation,
serialisation, spec parsing), the options normalizer (legacy-kwarg
lifting with one DeprecationWarning, did-you-mean rejection of unknown
options), the ``make_algorithm`` gate (only pool-backed algorithms take
an execution config), and the end-to-end threading through the harness
runner, persistence and the SQL query executor.
"""

from __future__ import annotations

import warnings

import pytest

from repro import ExecutionConfig, aggregate_skyline, make_algorithm
from repro.core.algorithms.indexed import IndexedAlgorithm
from repro.core.algorithms.parallel import ParallelSkylineAlgorithm
from repro.core.execution import coerce_execution, normalize_options, suggest
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.harness.persistence import results_from_json, results_to_json
from repro.harness.runner import run_algorithms
from repro.query.executor import execute
from repro.relational.table import Table


@pytest.fixture(scope="module")
def dataset():
    return generate_grouped(
        SyntheticSpec(n_records=240, avg_group_size=12, dimensions=3, seed=9)
    )


# ---------------------------------------------------------------------------
# ExecutionConfig construction + validation
# ---------------------------------------------------------------------------


class TestExecutionConfig:
    def test_defaults_mean_serial(self):
        config = ExecutionConfig()
        assert config.workers is None
        assert config.scheduler == "static"
        assert config.shm is None
        assert config.exchange_interval == 0
        assert config.chunk_size is None
        assert config.pool_timeout == 300.0
        assert not config.parallel

    def test_workers_makes_it_parallel(self):
        assert ExecutionConfig(workers=1).parallel
        assert ExecutionConfig(workers=4).parallel

    def test_frozen(self):
        config = ExecutionConfig()
        with pytest.raises(Exception):
            config.workers = 2  # type: ignore[misc]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"workers": -1},
            {"workers": True},
            {"workers": 2.0},
            {"exchange_interval": -1},
            {"exchange_interval": 1.5},
            {"chunk_size": 0},
            {"chunk_size": False},
            {"pool_timeout": 0.0},
            {"pool_timeout": -3},
            {"shm": "yes"},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionConfig(**kwargs)

    def test_scheduler_typo_gets_a_suggestion(self):
        with pytest.raises(ValueError, match="stealing"):
            ExecutionConfig(scheduler="staeling")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"max_retries": True},
            {"max_retries": 1.5},
            {"retry_backoff": -0.1},
            {"on_failure": "panic"},
        ],
    )
    def test_bad_fault_tolerance_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionConfig(**kwargs)

    def test_on_failure_typo_gets_a_suggestion(self):
        with pytest.raises(ValueError, match="serial"):
            ExecutionConfig(on_failure="seral")

    def test_fault_tolerance_defaults(self):
        config = ExecutionConfig()
        assert config.max_retries == 2
        assert config.retry_backoff == 0.1
        assert config.on_failure == "raise"

    def test_fault_tolerance_round_trip(self):
        config = ExecutionConfig(
            workers=4, on_failure="serial", max_retries=3, retry_backoff=0.5
        )
        assert ExecutionConfig.from_dict(config.to_dict()) == config
        assert ExecutionConfig.from_spec(
            "workers=4,on_failure=serial,max_retries=3,retry_backoff=0.5"
        ) == config

    def test_replace_revalidates(self):
        config = ExecutionConfig(workers=2)
        assert config.replace(scheduler="stealing").scheduler == "stealing"
        with pytest.raises(ValueError):
            config.replace(workers=0)

    def test_to_dict_omits_defaults(self):
        assert ExecutionConfig().to_dict() == {}
        assert ExecutionConfig(workers=2).to_dict() == {"workers": 2}
        full = ExecutionConfig(
            workers=3, scheduler="stealing", shm=True, chunk_size=7
        )
        assert full.to_dict() == {
            "workers": 3,
            "scheduler": "stealing",
            "shm": True,
            "chunk_size": 7,
        }

    def test_dict_round_trip(self):
        config = ExecutionConfig(workers=2, scheduler="stealing", shm=False)
        assert ExecutionConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionConfig.from_dict({"wokers": 2})

    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("", ExecutionConfig()),
            ("workers=4", ExecutionConfig(workers=4)),
            (
                "workers=2, scheduler=stealing",
                ExecutionConfig(workers=2, scheduler="stealing"),
            ),
            ("shm=auto", ExecutionConfig(shm=None)),
            ("shm=true", ExecutionConfig(shm=True)),
            ("shm=off", ExecutionConfig(shm=False)),
            ("chunk_size=16,pool_timeout=5.5",
             ExecutionConfig(chunk_size=16, pool_timeout=5.5)),
        ],
    )
    def test_from_spec(self, spec, expected):
        assert ExecutionConfig.from_spec(spec) == expected

    def test_from_spec_rejects_malformed_items(self):
        with pytest.raises(ValueError):
            ExecutionConfig.from_spec("workers")
        with pytest.raises(ValueError):
            ExecutionConfig.from_spec("shm=maybe")

    def test_coerce_accepts_all_shapes(self):
        config = ExecutionConfig(workers=2)
        assert coerce_execution(None) is None
        assert coerce_execution(config) is config
        assert coerce_execution("workers=2") == config
        assert coerce_execution({"workers": 2}) == config
        with pytest.raises(TypeError):
            coerce_execution(3)

    def test_suggest_cutoff(self):
        assert "static" in suggest("sttaic", ("static", "stealing"))
        assert suggest("zzz", ("static", "stealing")) == ""


# ---------------------------------------------------------------------------
# normalize_options: legacy kwargs + unknown-option rejection
# ---------------------------------------------------------------------------


class TestNormalizeOptions:
    def test_lifts_legacy_keys_with_one_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            options, execution = normalize_options(
                "PAR",
                ParallelSkylineAlgorithm,
                {"workers": 2, "scheduler": "stealing", "prune_policy": "safe"},
            )
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert options == {"prune_policy": "safe"}
        assert execution == ExecutionConfig(workers=2, scheduler="stealing")

    def test_explicit_execution_wins_but_fills_gaps(self):
        explicit = ExecutionConfig(workers=4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            _, execution = normalize_options(
                "PAR",
                ParallelSkylineAlgorithm,
                {"workers": 2, "scheduler": "stealing"},
                explicit,
            )
        assert execution.workers == 4  # explicit wins
        assert execution.scheduler == "stealing"  # gap filled

    def test_unknown_option_raises_with_suggestion(self):
        with pytest.raises(TypeError, match="sort_key"):
            normalize_options(
                "IN", IndexedAlgorithm, {"sort_kye": "size_corner"}
            )

    def test_no_warning_without_legacy_keys(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            normalize_options("IN", IndexedAlgorithm, {"sort_key": "size"})
        assert not caught


# ---------------------------------------------------------------------------
# make_algorithm gate
# ---------------------------------------------------------------------------


class TestMakeAlgorithmGate:
    def test_unknown_algorithm_suggests(self):
        with pytest.raises(ValueError, match="LO"):
            make_algorithm("LQ")

    def test_serial_algorithms_reject_execution(self):
        for name in ("NL", "TR", "SI", "SQL"):
            with pytest.raises(ValueError, match="does not accept"):
                make_algorithm(name, execution=ExecutionConfig(workers=2))

    @pytest.mark.parametrize("name", ["PAR", "IN", "LO"])
    def test_pooled_algorithms_accept_execution(self, name):
        engine = make_algorithm(name, execution=ExecutionConfig(workers=1))
        assert engine.execution == ExecutionConfig(workers=1)

    def test_spec_string_and_mapping_coerced(self):
        engine = make_algorithm("IN", execution="workers=1,scheduler=stealing")
        assert engine.execution.scheduler == "stealing"
        engine = make_algorithm("LO", execution={"workers": 1})
        assert engine.execution.workers == 1

    def test_legacy_workers_still_constructs_par(self, dataset):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine = make_algorithm("PAR", 0.5, workers=1)
        assert engine.workers == 1
        assert sum(
            issubclass(w.category, DeprecationWarning) for w in caught
        ) == 1

    def test_grid_backend_cannot_parallelise(self):
        with pytest.raises(ValueError, match="rtree"):
            make_algorithm(
                "IN",
                index_backend="grid",
                execution=ExecutionConfig(workers=2),
            )


# ---------------------------------------------------------------------------
# end-to-end threading: api, runner, persistence, SQL
# ---------------------------------------------------------------------------


class TestEndToEnd:
    def test_aggregate_skyline_execution_matches_serial(self, dataset):
        serial = aggregate_skyline(dataset, algorithm="IN")
        pooled = aggregate_skyline(
            dataset,
            algorithm="IN",
            execution=ExecutionConfig(workers=1, scheduler="stealing"),
        )
        assert pooled.as_set() == serial.as_set()

    def test_runner_threads_execution_to_supporting_algorithms(self, dataset):
        results = run_algorithms(
            dataset,
            algorithms=("NL", "IN", "PAR"),
            execution=ExecutionConfig(workers=1),
        )
        by = {r.algorithm: r for r in results}
        assert by["NL"].execution is None and by["NL"].workers is None
        assert by["IN"].execution == {"workers": 1}
        assert by["IN"].workers == 1
        assert by["PAR"].execution == {"workers": 1}
        assert by["NL"].skyline_keys == by["PAR"].skyline_keys

    def test_runner_legacy_workers_warns_and_targets_par_only(self, dataset):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = run_algorithms(
                dataset, algorithms=("NL", "PAR"), workers=1
            )
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        by = {r.algorithm: r for r in results}
        assert by["NL"].workers is None
        assert by["PAR"].workers == 1

    def test_persistence_round_trips_execution_block(self, dataset):
        results = run_algorithms(
            dataset,
            algorithms=("NL", "IN"),
            execution=ExecutionConfig(workers=1, scheduler="stealing"),
        )
        text = results_to_json(results, include_obs=False)
        loaded = results_from_json(text)
        by = {r.algorithm: r for r in loaded}
        assert by["IN"].execution == {"workers": 1, "scheduler": "stealing"}
        assert by["NL"].execution is None
        # serial records keep the pre-ExecutionConfig shape on disk
        nl_only = results_to_json([by["NL"]], include_obs=False)
        assert '"execution"' not in nl_only

    def test_query_executor_accepts_execution(self):
        rows = [
            ["a", 5.0, 4.0],
            ["a", 4.0, 5.0],
            ["b", 1.0, 1.0],
            ["c", 5.0, 5.0],
        ]
        catalog = {"t": Table(["g", "x", "y"], rows)}
        sql = (
            "SELECT g FROM t GROUP BY g"
            " SKYLINE OF x MAX, y MAX USING ALGORITHM IN"
        )
        serial = execute(sql, catalog)
        pooled = execute(sql, catalog, execution="workers=1")
        assert sorted(map(tuple, serial.table.rows)) == sorted(
            map(tuple, pooled.table.rows)
        )
