"""Record-level Pareto dominance.

This module implements Definition 1 of the paper: a record ``r`` dominates a
record ``s`` (written ``r > s`` throughout the paper) iff ``r`` is at least as
good as ``s`` in every dimension and strictly better in at least one.

Every dimension carries a direction: ``MAX`` (higher is better, the paper's
default) or ``MIN`` (lower is better).  Internally the library normalises all
data to *higher is better* by negating ``MIN`` dimensions, so the dominance
kernels only ever deal with maximisation.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence, Union

import numpy as np

__all__ = [
    "Direction",
    "parse_directions",
    "normalize_values",
    "denormalize_values",
    "dominates",
    "dominance_sign",
    "dominated_mask",
    "strictly_dominates_all",
]


class Direction(enum.Enum):
    """Optimisation direction of one skyline dimension."""

    MAX = "max"
    MIN = "min"

    @classmethod
    def from_any(cls, value: Union[str, "Direction"]) -> "Direction":
        """Coerce a user-supplied direction (``"max"``/``"MIN"``/enum)."""
        if isinstance(value, Direction):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("max", "+", "high", "desc"):
                return cls.MAX
            if lowered in ("min", "-", "low", "asc"):
                return cls.MIN
        raise ValueError(f"not a valid direction: {value!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value.upper()


def parse_directions(
    directions: Union[None, str, Direction, Sequence[Union[str, Direction]]],
    dimensions: int,
) -> tuple:
    """Normalise a direction specification into a tuple of ``Direction``.

    ``directions`` may be ``None`` (all ``MAX``, the paper's convention), a
    single value applied to every dimension, or a sequence with one entry per
    dimension.
    """
    if dimensions <= 0:
        raise ValueError("dimensions must be positive")
    if directions is None:
        return (Direction.MAX,) * dimensions
    if isinstance(directions, (str, Direction)):
        return (Direction.from_any(directions),) * dimensions
    parsed = tuple(Direction.from_any(d) for d in directions)
    if len(parsed) != dimensions:
        raise ValueError(
            f"expected {dimensions} directions, got {len(parsed)}"
        )
    return parsed


def normalize_values(
    values: np.ndarray,
    directions: Sequence[Direction],
) -> np.ndarray:
    """Return a copy of ``values`` where every dimension is *higher better*.

    ``MIN`` columns are negated.  The result is always a float64 C-contiguous
    array, the canonical internal representation.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise ValueError("values must be a 2-d array (records x dimensions)")
    if array.shape[1] != len(directions):
        raise ValueError(
            f"values have {array.shape[1]} dimensions, "
            f"expected {len(directions)}"
        )
    if np.isnan(array).any():
        raise ValueError(
            "records contain NaN values; dominance comparisons with NaN"
            " are undefined — clean or impute the data first"
        )
    result = np.ascontiguousarray(array, dtype=np.float64).copy()
    for column, direction in enumerate(directions):
        if direction is Direction.MIN:
            result[:, column] = -result[:, column]
    return result


def denormalize_values(
    values: np.ndarray,
    directions: Sequence[Direction],
) -> np.ndarray:
    """Invert :func:`normalize_values` (negation is its own inverse)."""
    return normalize_values(values, directions)


def dominates(r: Iterable[float], s: Iterable[float]) -> bool:
    """Definition 1: ``r`` dominates ``s`` (both already *higher better*)."""
    r_arr = np.asarray(r, dtype=np.float64)
    s_arr = np.asarray(s, dtype=np.float64)
    if r_arr.shape != s_arr.shape:
        raise ValueError("records must have the same dimensionality")
    return bool(np.all(r_arr >= s_arr) and np.any(r_arr > s_arr))


def dominance_sign(r: Iterable[float], s: Iterable[float]) -> int:
    """Three-way dominance comparison.

    Returns ``1`` if ``r`` dominates ``s``, ``-1`` if ``s`` dominates ``r``
    and ``0`` if the records are equal or incomparable.
    """
    r_arr = np.asarray(r, dtype=np.float64)
    s_arr = np.asarray(s, dtype=np.float64)
    r_ge = bool(np.all(r_arr >= s_arr))
    s_ge = bool(np.all(s_arr >= r_arr))
    if r_ge and not s_ge:
        return 1
    if s_ge and not r_ge:
        return -1
    return 0


def dominated_mask(points: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Boolean mask of rows of ``points`` dominated by ``reference``.

    Vectorised form of Definition 1 with a single dominating candidate.
    """
    pts = np.asarray(points, dtype=np.float64)
    ref = np.asarray(reference, dtype=np.float64)
    ge = np.all(ref >= pts, axis=1)
    gt = np.any(ref > pts, axis=1)
    return ge & gt


def strictly_dominates_all(reference: np.ndarray, points: np.ndarray) -> bool:
    """True iff ``reference`` dominates every row of ``points``."""
    if len(points) == 0:
        return True
    return bool(np.all(dominated_mask(points, reference)))
