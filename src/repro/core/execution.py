"""Unified execution configuration for parallel-capable algorithms.

This module is the single validation point for everything that controls
*how* an algorithm runs (as opposed to *what* it computes): pool size,
chunk scheduling policy, shared-memory shipping, the pruning-exchange
interval and the pool timeout.  Prior to this module the same knobs were
scattered over per-algorithm ``**options`` (``workers=`` forcing ``PAR``,
raw ``exchange_interval=`` kwargs, an ad-hoc ``processes=`` on the
partitioned baseline) — a stringly-typed surface where a misspelled
option was silently ignored.

The public surface:

* :class:`ExecutionConfig` — a frozen dataclass validated on
  construction, accepted by :func:`repro.core.api.aggregate_skyline`,
  :func:`repro.core.algorithms.make_algorithm`,
  :func:`repro.harness.runner.run_algorithms` / ``sweep`` and the SQL
  ``USING ALGORITHM`` path.
* :func:`coerce_execution` — accept ``None`` / ``ExecutionConfig`` /
  mapping / ``"k=v,k=v"`` spec string and return a validated config.
* :func:`normalize_options` — the compatibility shim: lifts legacy
  execution kwargs out of an ``**options`` dict (with a single
  :class:`DeprecationWarning`) and rejects unknown options with a
  did-you-mean suggestion instead of silently dropping them.
"""

from __future__ import annotations

import difflib
import inspect
import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping, Optional, Tuple

__all__ = [
    "ExecutionConfig",
    "SCHEDULERS",
    "ON_FAILURE_POLICIES",
    "coerce_execution",
    "normalize_options",
    "suggest",
]

#: Valid chunk-scheduling policies.
#:
#: * ``"static"`` — the PR-2 behaviour: near-equal contiguous spans, one
#:   batch per worker share, no runtime rebalancing.
#: * ``"stealing"`` — guided decreasing chunk sizes owned round-robin by
#:   worker slots; a worker that drains its own list steals from the
#:   tail of the largest remaining victim list.
SCHEDULERS: Tuple[str, ...] = ("static", "stealing")

#: What a pooled run does when a worker crashes or a chunk raises.
#:
#: * ``"raise"`` — fail fast: surface ``WorkerCrashError`` (or the worker
#:   traceback) immediately; the pre-fault-tolerance behaviour.
#: * ``"retry"`` — re-execute only the undelivered chunks on a fresh pool,
#:   up to ``max_retries`` times with exponential backoff, then raise.
#: * ``"serial"`` — like ``"retry"``, but after retries are exhausted the
#:   remaining chunks finish inline on the parent's serial engine, so the
#:   run always completes.
ON_FAILURE_POLICIES: Tuple[str, ...] = ("raise", "retry", "serial")

# Legacy per-algorithm option names that now live on ExecutionConfig.
# ``normalize_options`` lifts these out of ``**options`` dicts.
_LEGACY_EXECUTION_KEYS: Tuple[str, ...] = (
    "workers",
    "scheduler",
    "shm",
    "exchange_interval",
    "chunk_size",
    "pool_timeout",
)


def suggest(name: str, candidates) -> str:
    """Return a did-you-mean suffix for *name* against *candidates*.

    Empty string when nothing is close enough — callers can append the
    result to an error message unconditionally.
    """

    matches = difflib.get_close_matches(str(name), list(candidates), n=1, cutoff=0.6)
    if matches:
        return f" (did you mean {matches[0]!r}?)"
    return ""


@dataclass(frozen=True)
class ExecutionConfig:
    """How a parallel-capable algorithm should execute.

    All fields have conservative defaults; the zero-argument
    ``ExecutionConfig()`` means "serial, but via the unified path".

    Parameters
    ----------
    workers:
        Pool size.  ``None`` keeps the algorithm's serial code path
        untouched (byte-for-byte the pre-parallel behaviour).  ``1``
        runs the parallel kernel inline — no pool, no pickling — which
        is the degenerate case of the determinism contract.  ``>= 2``
        spins up a process pool.
    scheduler:
        ``"static"`` (near-equal contiguous chunks) or ``"stealing"``
        (guided decreasing chunks + work stealing).
    shm:
        Ship group payloads via ``multiprocessing.shared_memory``.
        ``None`` auto-selects: shm on spawn platforms (where the
        alternative is pickling the payload per worker), plain
        inheritance under fork.  ``True`` / ``False`` force it.
    exchange_interval:
        Pruning-exchange refresh period in pairs for the ``PAR`` pair
        matrix (0 disables — the deterministic two-phase mode).
    chunk_size:
        Minimum chunk size (pairs or candidate groups) for the stealing
        scheduler; ``None`` picks a heuristic from the input size.
    pool_timeout:
        Seconds to wait for pool results before raising
        :class:`repro.parallel.PoolTimeoutError`.
    max_retries:
        Fresh-pool re-executions of lost/failed chunks after a worker
        crash or worker traceback, consulted when ``on_failure`` is not
        ``"raise"``.
    retry_backoff:
        Base delay in seconds before the first retry; doubles per
        attempt (exponential backoff).
    on_failure:
        Crash policy — one of :data:`ON_FAILURE_POLICIES`
        (``"raise"`` / ``"retry"`` / ``"serial"``).
    """

    workers: Optional[int] = None
    scheduler: str = "static"
    shm: Optional[bool] = None
    exchange_interval: int = 0
    chunk_size: Optional[int] = None
    pool_timeout: float = 300.0
    max_retries: int = 2
    retry_backoff: float = 0.1
    on_failure: str = "raise"

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; expected one of "
                f"{SCHEDULERS}{suggest(self.scheduler, SCHEDULERS)}"
            )
        if self.workers is not None:
            if not isinstance(self.workers, int) or isinstance(self.workers, bool):
                raise ValueError(f"workers must be an int or None, got {self.workers!r}")
            if self.workers < 1:
                raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not isinstance(self.exchange_interval, int) or isinstance(self.exchange_interval, bool):
            raise ValueError(
                f"exchange_interval must be an int, got {self.exchange_interval!r}"
            )
        if self.exchange_interval < 0:
            raise ValueError(
                f"exchange_interval must be >= 0, got {self.exchange_interval}"
            )
        if self.chunk_size is not None:
            if not isinstance(self.chunk_size, int) or isinstance(self.chunk_size, bool):
                raise ValueError(f"chunk_size must be an int or None, got {self.chunk_size!r}")
            if self.chunk_size < 1:
                raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if not self.pool_timeout > 0:
            raise ValueError(f"pool_timeout must be > 0, got {self.pool_timeout!r}")
        if self.shm is not None and not isinstance(self.shm, bool):
            raise ValueError(f"shm must be a bool or None, got {self.shm!r}")
        if self.on_failure not in ON_FAILURE_POLICIES:
            raise ValueError(
                f"unknown on_failure policy {self.on_failure!r}; expected one"
                f" of {ON_FAILURE_POLICIES}"
                f"{suggest(self.on_failure, ON_FAILURE_POLICIES)}"
            )
        if not isinstance(self.max_retries, int) or isinstance(self.max_retries, bool):
            raise ValueError(
                f"max_retries must be an int, got {self.max_retries!r}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not self.retry_backoff >= 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff!r}"
            )

    # ------------------------------------------------------------------
    # derived views

    @property
    def parallel(self) -> bool:
        """True when a pool (or the inline parallel kernel) is requested."""

        return self.workers is not None

    def resolve_workers(self) -> int:
        """Resolve :attr:`workers` through the standard fallback chain.

        Explicit value → ``$REPRO_WORKERS`` → ``min(4, cpu_count)``.
        """

        from ..parallel.executor import resolve_workers

        return resolve_workers(self.workers)

    def replace(self, **changes: Any) -> "ExecutionConfig":
        """Return a copy with *changes* applied (re-validated)."""

        return replace(self, **changes)

    # ------------------------------------------------------------------
    # (de)serialisation

    def to_dict(self) -> dict:
        """Compact dict for persistence: defaults are omitted."""

        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionConfig":
        """Build a config from a mapping, rejecting unknown keys."""

        valid = {f.name for f in fields(cls)}
        kwargs = {}
        for key, value in dict(data).items():
            if key not in valid:
                raise ValueError(
                    f"unknown execution option {key!r}{suggest(key, valid)}"
                )
            kwargs[key] = value
        return cls(**kwargs)

    @classmethod
    def coerce(cls, execution: Any) -> Optional["ExecutionConfig"]:
        """Canonical coercion entry point (see :func:`coerce_execution`).

        Accepts ``None`` / ``ExecutionConfig`` / mapping / ``"k=v,..."``
        spec string — the shape every public entry point
        (``aggregate_skyline``, ``SkylineEngine.query``,
        ``run_algorithms`` / ``sweep``, SQL ``USING``,
        ``partitioned_aggregate_skyline``) funnels through.
        """

        return coerce_execution(execution)

    @classmethod
    def from_spec(cls, spec: str) -> "ExecutionConfig":
        """Parse a CLI-style ``"key=value,key=value"`` spec.

        Values are coerced per-field: ints for ``workers`` /
        ``exchange_interval`` / ``chunk_size`` / ``max_retries``, floats
        for ``pool_timeout`` / ``retry_backoff``, bool-ish strings for
        ``shm``; ``on_failure`` stays a string
        (``raise`` / ``retry`` / ``serial``).
        """

        data: dict = {}
        spec = spec.strip()
        if not spec:
            return cls()
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(
                    f"bad execution spec item {item!r}; expected key=value"
                )
            key, _, raw = item.partition("=")
            key = key.strip()
            raw = raw.strip()
            data[key] = _coerce_field(key, raw)
        return cls.from_dict(data)


def _coerce_field(key: str, raw: str) -> Any:
    """Coerce a string spec value to the field's type."""

    if key in ("workers", "chunk_size"):
        if raw.lower() in ("none", ""):
            return None
        return int(raw)
    if key in ("exchange_interval", "max_retries"):
        return int(raw)
    if key in ("pool_timeout", "retry_backoff"):
        return float(raw)
    if key == "shm":
        lowered = raw.lower()
        if lowered in ("none", "auto", ""):
            return None
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"bad boolean for shm: {raw!r}")
    # unknown keys fall through to from_dict's validation with the raw string
    return raw


def coerce_execution(execution: Any) -> Optional[ExecutionConfig]:
    """Accept the various ways callers may hand us an execution config.

    ``None`` → ``None`` (serial legacy path); an :class:`ExecutionConfig`
    passes through; a mapping goes through :meth:`ExecutionConfig.from_dict`;
    a string through :meth:`ExecutionConfig.from_spec`.
    """

    if execution is None:
        return None
    if isinstance(execution, ExecutionConfig):
        return execution
    if isinstance(execution, str):
        return ExecutionConfig.from_spec(execution)
    if isinstance(execution, Mapping):
        return ExecutionConfig.from_dict(execution)
    raise TypeError(
        "execution must be None, an ExecutionConfig, a mapping or a "
        f"'key=value,...' spec string, got {type(execution).__name__}"
    )


def _deprecated(message: str) -> None:
    warnings.warn(message, DeprecationWarning, stacklevel=4)


def normalize_options(
    name: str,
    cls: type,
    options: Mapping[str, Any],
    execution: Optional[ExecutionConfig] = None,
    *,
    warn: bool = True,
) -> Tuple[dict, Optional[ExecutionConfig]]:
    """Validate ``**options`` for algorithm *cls* and lift legacy keys.

    Returns ``(clean_options, execution)`` where ``clean_options``
    contains only keys accepted by ``cls.__init__`` and ``execution`` is
    the merged execution config (the explicit one wins over legacy
    kwargs).  Legacy execution keys found in *options* emit one
    :class:`DeprecationWarning` pointing at :class:`ExecutionConfig`.
    Unknown option names raise :class:`TypeError` (what the constructor
    would have raised) with a did-you-mean suggestion appended.
    """

    options = dict(options)

    # 1. lift legacy execution kwargs ----------------------------------
    legacy: dict = {}
    for key in _LEGACY_EXECUTION_KEYS:
        if key in options:
            legacy[key] = options.pop(key)
    if legacy:
        if warn:
            _deprecated(
                f"passing {sorted(legacy)} as algorithm options is deprecated; "
                "use execution=ExecutionConfig(...) instead"
            )
        if execution is None:
            execution = ExecutionConfig.from_dict(legacy)
        else:
            # explicit execution config wins; only fill gaps from legacy
            fill = {
                key: value
                for key, value in legacy.items()
                if key not in execution.to_dict()
            }
            if fill:
                execution = execution.replace(**fill)

    # 2. validate remaining option names against the constructor -------
    try:
        signature = inspect.signature(cls.__init__)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return options, execution
    params = signature.parameters
    accepts_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )
    if not accepts_kwargs:
        valid = {
            pname
            for pname, p in params.items()
            if pname != "self"
            and p.kind
            in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
        }
        for key in options:
            if key not in valid:
                hint = suggest(key, valid | set(_LEGACY_EXECUTION_KEYS))
                raise TypeError(
                    f"unknown option {key!r} for algorithm {name!r}{hint}"
                )
    return options, execution
