"""Pairwise comparison of two groups with the paper's internal optimisations.

Section 3.3 of the paper introduces two ways to cut the quadratic cost of a
single group-vs-group comparison:

* **Stopping rule** — while scanning pairs, stop as soon as the four
  predicates of interest (``g1 ≻_γ g2``, ``g1 ≻_γ̄ g2`` and symmetric) are all
  decided, because the running counts plus the number of unseen pairs bound
  the final probabilities.
* **Bounding-box pre-classification** (Figure 9) — compare the MBB corners
  first: if ``g2.min`` dominates ``g1.max`` the domination is total with no
  record comparison at all; otherwise records that the corners already decide
  (regions A and C in the figure) are counted in bulk and only the remaining
  "region B" pairs go through the nested loop.

:class:`GroupComparator` implements both, individually switchable, and
reports how many record pairs were actually examined so the benchmark
harness can count dominance checks exactly like the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Tuple

import numpy as np

from .dominance import dominated_mask
from .gamma import DEFAULT_BLOCK_SIZE, GammaThresholds
from .groups import Group

__all__ = ["ComparisonOutcome", "GroupComparator", "DirectionalProbe"]


@dataclass(frozen=True)
class ComparisonOutcome:
    """Result of comparing ``g1`` against ``g2`` at thresholds ``(γ, γ̄)``.

    ``d12``/``d21`` are Definition-3 γ-dominance verdicts, ``d12_strong`` /
    ``d21_strong`` the same at the weak-transitivity level γ̄ ("strongly
    dominated" in Algorithm 3).  ``pairs_examined`` counts record pairs that
    went through an actual dominance check; ``used_bbox_shortcut`` flags a
    comparison fully resolved by MBB corners.
    """

    d12: bool
    d12_strong: bool
    d21: bool
    d21_strong: bool
    pairs_examined: int
    used_bbox_shortcut: bool = False

    @property
    def incomparable(self) -> bool:
        return not (self.d12 or self.d21)


class _DirectionalCount:
    """Incremental dominance-pair counting for one direction (A over B).

    Maintains exact lower/upper bounds on the final pair count: every pair is
    either *known dominated*, *known not dominated* or *pending*.  The bbox
    pre-classification seeds the known sets; the nested loop then resolves
    pending pairs block by block.
    """

    def __init__(self, a: Group, b: Group, use_bbox: bool):
        self.total = a.size * b.size
        self.known = 0          # pairs known to dominate
        self.pending = 0        # pairs not yet resolved
        self.examined = 0       # pairs resolved via explicit checks
        self._a_mid: Optional[np.ndarray] = None
        self._b_mid: Optional[np.ndarray] = None
        self._cursor = 0
        self._setup(a, b, use_bbox)

    def _setup(self, a: Group, b: Group, use_bbox: bool) -> None:
        if not use_bbox:
            self._a_mid = a.values
            self._b_mid = b.values
            self.pending = self.total
            return

        a_box, b_box = a.bbox, b.bbox
        # No record of A can dominate any record of B unless A's best corner
        # dominates B's worst corner.
        if not _corner_dominates(a_box.max_corner, b_box.min_corner):
            self.pending = 0
            return
        # Total domination: A's worst corner dominates B's best corner.
        if _corner_dominates(a_box.min_corner, b_box.max_corner):
            self.known = self.total
            self.pending = 0
            return

        # Region C: records of A dominating B's best corner dominate all B.
        a_all = _rows_dominating_point(a.values, b_box.max_corner)
        # Records of A that do not dominate B's worst corner dominate nothing.
        a_some = _rows_dominating_point(a.values, b_box.min_corner)
        a_mid_mask = a_some & ~a_all
        # Region A: records of B dominated by A's worst corner are dominated
        # by every record of A.
        b_all = dominated_mask(b.values, a_box.min_corner)
        # Records of B not dominated by A's best corner are dominated by none.
        b_some = dominated_mask(b.values, a_box.max_corner)
        b_mid_mask = b_some & ~b_all

        n_a_all = int(np.count_nonzero(a_all))
        n_a_mid = int(np.count_nonzero(a_mid_mask))
        n_b_all = int(np.count_nonzero(b_all))
        n_b_mid = int(np.count_nonzero(b_mid_mask))

        self.known = n_a_all * b.size + n_a_mid * n_b_all
        self.pending = n_a_mid * n_b_mid
        if self.pending:
            self._a_mid = a.values[a_mid_mask]
            self._b_mid = b.values[b_mid_mask]

    # ------------------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        return self.pending == 0

    def advance(self, block_size: int) -> int:
        """Resolve up to ``block_size`` pending pairs; return pairs checked."""
        if self.pending == 0 or self._a_mid is None or self._b_mid is None:
            return 0
        n_b = self._b_mid.shape[0]
        rows = max(1, block_size // max(1, n_b))
        chunk = self._a_mid[self._cursor : self._cursor + rows]
        if chunk.shape[0] == 0:
            self.pending = 0
            return 0
        ge = np.all(chunk[:, None, :] >= self._b_mid[None, :, :], axis=2)
        gt = np.any(chunk[:, None, :] > self._b_mid[None, :, :], axis=2)
        dominated = int(np.count_nonzero(ge & gt))
        checked = chunk.shape[0] * n_b
        self.known += dominated
        self.pending -= checked
        self.examined += checked
        self._cursor += chunk.shape[0]
        return checked

    def finish(self) -> int:
        """Resolve everything that is still pending; return pairs checked."""
        checked = 0
        while self.pending > 0:
            step = self.advance(DEFAULT_BLOCK_SIZE)
            if step == 0:
                break
            checked += step
        return checked

    # ------------------------------------------------------------------

    def decide(self, threshold: Fraction) -> Optional[bool]:
        """Tri-state verdict for ``p = 1 or p > threshold``.

        Returns ``True``/``False`` once the bounds settle the predicate and
        ``None`` while it is still open.
        """
        lower = self.known
        upper = self.known + self.pending
        # Already above the threshold: final p only grows from `lower`.
        if lower * threshold.denominator > threshold.numerator * self.total:
            return True
        if lower == self.total:
            return True
        # Cannot reach the threshold any more, and p = 1 is impossible.
        at_most = upper * threshold.denominator <= threshold.numerator * self.total
        if at_most and upper < self.total:
            return False
        if self.pending == 0:
            # Exact: either p == 1 (upper == total == lower) or p <= threshold.
            return lower == self.total
        return None

    def probability_bounds(self) -> Tuple[Fraction, Fraction]:
        return (
            Fraction(self.known, self.total),
            Fraction(self.known + self.pending, self.total),
        )


class DirectionalProbe:
    """Public one-directional probability prober (used by the γ-profile).

    Wraps the incremental counter for ``p(A > B)``: ``bounds()`` returns the
    cheap interval implied by the MBB pre-classification alone, ``exact()``
    resolves the remaining pairs and returns the exact probability.
    """

    def __init__(self, a: Group, b: Group, use_bbox: bool = True):
        self._count = _DirectionalCount(a, b, use_bbox)
        self.pairs_examined = 0

    def bounds(self) -> Tuple[Fraction, Fraction]:
        """Current (lower, upper) bounds on ``p(A > B)``."""
        return self._count.probability_bounds()

    def exact(self) -> Fraction:
        """Resolve all pending pairs and return the exact probability."""
        self.pairs_examined += self._count.finish()
        lower, upper = self._count.probability_bounds()
        assert lower == upper
        return lower


def _corner_dominates(p: np.ndarray, q: np.ndarray) -> bool:
    return bool(np.all(p >= q) and np.any(p > q))


def _rows_dominating_point(rows: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Mask of rows that dominate ``point`` (Definition 1)."""
    ge = np.all(rows >= point, axis=1)
    gt = np.any(rows > point, axis=1)
    return ge & gt


class GroupComparator:
    """Compares two groups and classifies the four dominance predicates.

    Parameters
    ----------
    thresholds:
        The ``(γ, γ̄)`` pair to classify against.
    use_stopping_rule:
        Apply the Section-3.3 stopping rule (stop scanning pairs once all
        four predicates are decided).  With the rule off, every pending pair
        is examined — useful as a correctness oracle.
    use_bbox:
        Apply the Figure-9 bounding-box shortcut and pre-classification.
    block_size:
        Upper bound on pairs resolved per vectorised step (granularity of
        the stopping rule).
    """

    def __init__(
        self,
        thresholds: GammaThresholds,
        use_stopping_rule: bool = True,
        use_bbox: bool = False,
        block_size: int = 1024,
    ):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.thresholds = thresholds
        self.use_stopping_rule = use_stopping_rule
        self.use_bbox = use_bbox
        self.block_size = block_size
        # cumulative statistics across compare() calls
        self.comparisons = 0
        self.pairs_examined = 0
        self.bbox_shortcuts = 0
        self.stopping_rule_exits = 0
        # detailed (per-comparison) observability instruments; ``None`` keeps
        # the hot path at a single branch when metrics are disabled.
        self._obs_pairs_hist = None
        self._obs_exit_counter = None
        self._obs_shortcut_counter = None

    def reset_stats(self) -> None:
        self.comparisons = 0
        self.pairs_examined = 0
        self.bbox_shortcuts = 0
        self.stopping_rule_exits = 0

    def absorb(
        self,
        comparisons: int = 0,
        pairs_examined: int = 0,
        bbox_shortcuts: int = 0,
        stopping_rule_exits: int = 0,
    ) -> None:
        """Add externally accumulated counter *values* to this comparator.

        Used when work was done elsewhere on this comparator's behalf — a
        delegate algorithm (:class:`~repro.core.algorithms.adaptive.
        AdaptiveAlgorithm`) or a pool worker (:mod:`repro.parallel`) — so the
        owning algorithm's end-of-run statistics reflect the merged totals
        without swapping comparator objects (swapping would leak the
        delegate's configuration into later runs).
        """
        self.comparisons += int(comparisons)
        self.pairs_examined += int(pairs_examined)
        self.bbox_shortcuts += int(bbox_shortcuts)
        self.stopping_rule_exits += int(stopping_rule_exits)

    def bind_metrics(self, registry, algorithm: str = "") -> None:
        """Attach per-comparison instruments from ``registry``.

        Records a histogram of record pairs examined per comparison (its
        shape exposes the stopping rule's block granularity), plus counters
        for stopping-rule early exits and MBB shortcuts.  Costs one branch
        and up to three locked updates per ``compare()`` — only bind when
        :func:`repro.obs.metrics.enable` was requested.
        """
        from ..obs.metrics import DEFAULT_COUNT_BUCKETS

        labels = {"algorithm": algorithm or "?"}
        self._obs_pairs_hist = registry.histogram(
            "comparator_pairs_per_compare",
            "Record pairs examined by one group-vs-group comparison",
            ("algorithm",),
            buckets=DEFAULT_COUNT_BUCKETS,
        ).labels(**labels)
        self._obs_exit_counter = registry.counter(
            "comparator_stopping_rule_exits_total",
            "Comparisons decided by the stopping rule before exhaustion",
            ("algorithm",),
        ).labels(**labels)
        self._obs_shortcut_counter = registry.counter(
            "comparator_bbox_shortcut_total",
            "Comparisons fully resolved by MBB corners (Figure 9)",
            ("algorithm",),
        ).labels(**labels)

    def unbind_metrics(self) -> None:
        self._obs_pairs_hist = None
        self._obs_exit_counter = None
        self._obs_shortcut_counter = None

    def compare(
        self,
        g1: Group,
        g2: Group,
        need_forward: bool = True,
        need_backward: bool = True,
    ) -> ComparisonOutcome:
        """Classify dominance between ``g1`` and ``g2``.

        ``need_forward`` / ``need_backward`` select which directions the
        caller actually needs (``forward`` is ``g1`` over ``g2``).  A
        direction that is not needed is reported as ``False`` and costs no
        pair checks, which is how one-directional probes ("can this already
        excluded group still dominate the candidate?") stay cheap.
        """
        if g1.dimensions != g2.dimensions:
            raise ValueError("groups have different dimensionality")
        if not (need_forward or need_backward):
            raise ValueError("at least one direction must be requested")
        self.comparisons += 1
        forward = _DirectionalCount(g1, g2, self.use_bbox) if need_forward else None
        backward = _DirectionalCount(g2, g1, self.use_bbox) if need_backward else None
        shortcut = all(
            direction is None or direction.exhausted
            for direction in (forward, backward)
        )

        gamma = self.thresholds.gamma
        strong = self.thresholds.strong
        pairs = 0

        def undecided(direction: Optional[_DirectionalCount]) -> bool:
            if direction is None:
                return False
            return (
                direction.decide(gamma) is None
                or direction.decide(strong) is None
            )

        if self.use_stopping_rule:
            # Alternate between the two directions so neither starves.
            while undecided(forward) or undecided(backward):
                progressed = 0
                if undecided(forward):
                    progressed += forward.advance(self.block_size)
                if undecided(backward):
                    progressed += backward.advance(self.block_size)
                pairs += progressed
                if progressed == 0:
                    break
        else:
            if forward is not None:
                pairs += forward.finish()
            if backward is not None:
                pairs += backward.finish()

        def verdicts(direction: Optional[_DirectionalCount]) -> Tuple[bool, bool]:
            if direction is None:
                return False, False
            return bool(direction.decide(gamma)), bool(direction.decide(strong))

        d12, d12_strong = verdicts(forward)
        d21, d21_strong = verdicts(backward)
        outcome = ComparisonOutcome(
            d12=d12,
            d12_strong=d12_strong,
            d21=d21,
            d21_strong=d21_strong,
            pairs_examined=pairs,
            used_bbox_shortcut=shortcut,
        )
        self.pairs_examined += pairs
        if shortcut:
            self.bbox_shortcuts += 1
        early_exit = self.use_stopping_rule and any(
            direction is not None and direction.pending > 0
            for direction in (forward, backward)
        )
        if early_exit:
            self.stopping_rule_exits += 1
        if self._obs_pairs_hist is not None:
            self._obs_pairs_hist.observe(pairs)
            if early_exit:
                self._obs_exit_counter.inc()
            if shortcut:
                self._obs_shortcut_counter.inc()
        return outcome
