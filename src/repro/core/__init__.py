"""Core aggregate-skyline machinery (the paper's primary contribution)."""

from .api import (
    GammaProfile,
    aggregate_skyline,
    aggregate_skyline_from_records,
    gamma_profile,
)
from .execution import ExecutionConfig, coerce_execution
from .comparator import ComparisonOutcome, GroupComparator
from .contribution import RecordContribution, record_contributions, removal_impact
from .cube import SkylineCube, skyline_cube
from .sampling import (
    approximate_aggregate_skyline,
    approximate_dominance_probability,
    hoeffding_epsilon,
)
from .diagnostics import (
    DatasetStatistics,
    dataset_statistics,
    suggest_algorithm,
)
from .dominance import Direction, dominance_sign, dominates
from .gamma import (
    DominanceMatrix,
    GammaThresholds,
    dominance_probability,
    gamma_bar,
    gamma_dominates,
)
from .groups import BoundingBox, Group, GroupedDataset
from .anytime import AnytimeAggregateSkyline, GroupStatus
from .explain import Domination, Explanation, explain
from .incremental import IncrementalAggregateSkyline
from .layers import LayeredResult, skyline_layers
from .partitioned import partitioned_aggregate_skyline
from .representative import (
    domination_counts,
    representative_skyline,
    top_k_dominating_groups,
)
from .ranking import ProfileStats, compute_gamma_profile
from .result import AggregateSkylineResult, AlgorithmStats
from .weighted import (
    weighted_aggregate_skyline,
    weighted_dominance_probability,
)
from .skyline import skyline, skyline_mask

__all__ = [
    "aggregate_skyline",
    "aggregate_skyline_from_records",
    "gamma_profile",
    "GammaProfile",
    "ExecutionConfig",
    "coerce_execution",
    "GroupComparator",
    "ComparisonOutcome",
    "Direction",
    "dominates",
    "dominance_sign",
    "GammaThresholds",
    "gamma_bar",
    "gamma_dominates",
    "dominance_probability",
    "DominanceMatrix",
    "Group",
    "GroupedDataset",
    "BoundingBox",
    "AggregateSkylineResult",
    "AlgorithmStats",
    "skyline",
    "skyline_mask",
    "IncrementalAggregateSkyline",
    "compute_gamma_profile",
    "ProfileStats",
    "AnytimeAggregateSkyline",
    "GroupStatus",
    "partitioned_aggregate_skyline",
    "domination_counts",
    "top_k_dominating_groups",
    "representative_skyline",
    "explain",
    "Explanation",
    "Domination",
    "weighted_aggregate_skyline",
    "weighted_dominance_probability",
    "skyline_cube",
    "SkylineCube",
    "dataset_statistics",
    "DatasetStatistics",
    "suggest_algorithm",
    "record_contributions",
    "removal_impact",
    "RecordContribution",
    "approximate_aggregate_skyline",
    "approximate_dominance_probability",
    "hoeffding_epsilon",
    "skyline_layers",
    "LayeredResult",
]
