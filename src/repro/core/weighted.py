"""Weighted γ-dominance: records that count more than others.

Definition 3 draws the two records *uniformly*.  In many of the paper's
motivating domains that is too coarse: an NBA season of 82 games should
weigh more than a 5-game stint, a ward's outcome over 500 cases more than
one over 12.  This extension attaches a non-negative **integer** weight to
every record and replaces the uniform choice with a weight-proportional
one:

    p_w(S > R) = Σ_{s > r} w_s · w_r / (W_S · W_R)

where ``W_X`` is a group's total weight.  Uniform weights recover the
paper's definition exactly.  The theory carries over unchanged: the two
domination events stay disjoint (asymmetry for γ ≥ ½ holds) and the
probability still only consults per-dimension orderings (stability to
monotone transformations holds); both are property-tested.

Weights must be integers so probabilities remain exact rationals.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple, Union

import numpy as np

from .dominance import Direction, normalize_values, parse_directions
from .gamma import DEFAULT_BLOCK_SIZE, GammaLike, GammaThresholds, dominance_holds
from .result import AggregateSkylineResult, AlgorithmStats, Timer

__all__ = [
    "count_weighted_dominating_pairs",
    "weighted_dominance_probability",
    "weighted_aggregate_skyline",
]

WeightedGroupInput = Mapping[Hashable, Tuple[Iterable, Iterable]]


def _validate_weights(weights: Sequence, count: int) -> np.ndarray:
    arr = np.asarray(weights)
    if arr.shape != (count,):
        raise ValueError(
            f"expected {count} weights, got shape {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        if np.any(arr != np.floor(arr)):
            raise ValueError(
                "weights must be integers (exact rational arithmetic)"
            )
    arr = arr.astype(np.int64)
    if np.any(arr < 0):
        raise ValueError("weights must be non-negative")
    return arr


def count_weighted_dominating_pairs(
    s_values: np.ndarray,
    s_weights: Sequence,
    r_values: np.ndarray,
    r_weights: Sequence,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> int:
    """``Σ w_s · w_r`` over pairs with ``s > r`` (higher-better inputs)."""
    s_arr = np.asarray(s_values, dtype=np.float64)
    r_arr = np.asarray(r_values, dtype=np.float64)
    if s_arr.ndim != 2 or r_arr.ndim != 2:
        raise ValueError("inputs must be 2-d arrays")
    if s_arr.shape[1] != r_arr.shape[1]:
        raise ValueError("dimensionality mismatch")
    w_s = _validate_weights(s_weights, s_arr.shape[0])
    w_r = _validate_weights(r_weights, r_arr.shape[0])
    if s_arr.shape[0] == 0 or r_arr.shape[0] == 0:
        return 0

    if s_arr.shape[1] == 2:
        from .fastcount import FAST_PATH_MIN_PAIRS, count_dominating_pairs_2d

        if s_arr.shape[0] * r_arr.shape[0] >= FAST_PATH_MIN_PAIRS:
            return count_dominating_pairs_2d(s_arr, r_arr, w_s, w_r)

    rows_per_block = max(1, block_size // max(1, r_arr.shape[0]))
    total = 0
    for start in range(0, s_arr.shape[0], rows_per_block):
        chunk = s_arr[start : start + rows_per_block]
        chunk_weights = w_s[start : start + rows_per_block]
        ge = np.all(chunk[:, None, :] >= r_arr[None, :, :], axis=2)
        gt = np.any(chunk[:, None, :] > r_arr[None, :, :], axis=2)
        mask = (ge & gt).astype(np.int64)
        total += int(chunk_weights @ (mask @ w_r))
    return total


def weighted_dominance_probability(
    s_values: np.ndarray,
    s_weights: Sequence,
    r_values: np.ndarray,
    r_weights: Sequence,
) -> Fraction:
    """Exact ``p_w(S > R)`` (weight-proportional record choice)."""
    w_s = _validate_weights(s_weights, np.asarray(s_values).shape[0])
    w_r = _validate_weights(r_weights, np.asarray(r_values).shape[0])
    total = int(w_s.sum()) * int(w_r.sum())
    if total == 0:
        raise ValueError("each group needs positive total weight")
    count = count_weighted_dominating_pairs(
        s_values, w_s, r_values, w_r
    )
    return Fraction(count, total)


class _WeightedGroup:
    __slots__ = ("key", "values", "weights", "total_weight")

    def __init__(self, key: Hashable, values: np.ndarray, weights: np.ndarray):
        self.key = key
        self.values = values
        self.weights = weights
        self.total_weight = int(weights.sum())
        if values.shape[0] == 0:
            raise ValueError(f"group {key!r} is empty")
        if self.total_weight <= 0:
            raise ValueError(f"group {key!r} has zero total weight")


def weighted_aggregate_skyline(
    groups: WeightedGroupInput,
    gamma: GammaLike = 0.5,
    directions: Union[None, str, Direction, Sequence] = None,
) -> AggregateSkylineResult:
    """Aggregate skyline under weighted γ-dominance (exhaustive, exact).

    ``groups`` maps each key to ``(records, weights)`` with one
    non-negative integer weight per record.  With all weights equal this
    returns exactly :func:`repro.core.api.aggregate_skyline`'s result.
    """
    if not groups:
        raise ValueError("at least one group is required")
    thresholds = GammaThresholds(gamma)

    first_records = next(iter(groups.values()))[0]
    probe = np.asarray(first_records, dtype=np.float64)
    dims = probe.shape[-1] if probe.ndim > 1 else probe.shape[0]
    parsed = parse_directions(directions, dims)

    prepared: List[_WeightedGroup] = []
    for key, (records, weights) in groups.items():
        values = normalize_values(
            np.asarray(records, dtype=np.float64), parsed
        )
        prepared.append(
            _WeightedGroup(
                key, values, _validate_weights(weights, values.shape[0])
            )
        )

    comparisons = 0
    with Timer() as timer:
        dominated: Dict[Hashable, bool] = {g.key: False for g in prepared}
        for i, g1 in enumerate(prepared):
            for g2 in prepared[i + 1:]:
                comparisons += 1
                forward = count_weighted_dominating_pairs(
                    g1.values, g1.weights, g2.values, g2.weights
                )
                backward = count_weighted_dominating_pairs(
                    g2.values, g2.weights, g1.values, g1.weights
                )
                total = g1.total_weight * g2.total_weight
                if dominance_holds(forward, total, thresholds.gamma):
                    dominated[g2.key] = True
                if dominance_holds(backward, total, thresholds.gamma):
                    dominated[g1.key] = True
        keys = [g.key for g in prepared if not dominated[g.key]]

    stats = AlgorithmStats(
        algorithm="WNL",
        group_comparisons=comparisons,
        elapsed_seconds=timer.elapsed,
    )
    return AggregateSkylineResult(
        keys=keys, gamma=float(thresholds.gamma), stats=stats
    )
