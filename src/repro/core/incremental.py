"""Incrementally maintained aggregate skylines.

The paper's stability results (Section 2.3) are exactly what makes the
operator maintainable under updates: inserting or deleting one record
changes every pairwise probability ``p(S > R)`` by a bounded amount, and
the *pair counts* behind those probabilities change additively.  This
module exploits that: it keeps, for every ordered pair of groups, the exact
count of dominating record pairs, and updates those counts in O(total
records) work per insertion/deletion instead of recomputing the quadratic
pair matrix from scratch.

Example::

    sky = IncrementalAggregateSkyline(dimensions=2)
    sky.insert("Tarantino", (557, 9.0))
    sky.insert("Wiseau", (10, 3.2))
    sky.skyline()                  # ['Tarantino']
    sky.insert("Wiseau", (600, 9.5))
    sky.skyline()                  # ['Tarantino', 'Wiseau']

Counted-multiset semantics: inserting the same record twice requires
deleting it twice.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .api import GammaProfile
from .dominance import Direction, normalize_values, parse_directions
from .gamma import GammaLike, GammaThresholds, dominance_holds
from .groups import GroupedDataset

__all__ = ["IncrementalAggregateSkyline"]


class _GroupStore:
    """Mutable record storage for one group.

    The stacked matrix is cached between mutations: the maintenance loops
    call :meth:`matrix` once per *other* group per update, so without the
    cache every single-record insert re-vstacks every group.  All mutations
    must go through :meth:`append` / :meth:`pop`, which invalidate it.
    """

    __slots__ = ("key", "rows", "_matrix")

    def __init__(self, key: Hashable):
        self.key = key
        self.rows: List[np.ndarray] = []
        self._matrix: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return len(self.rows)

    def append(self, row: np.ndarray) -> None:
        self.rows.append(row)
        self._matrix = None

    def pop(self, position: int) -> None:
        self.rows.pop(position)
        self._matrix = None

    def matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = np.vstack(self.rows)
        return self._matrix


def _dominates_rows(record: np.ndarray, rows: np.ndarray) -> int:
    """How many of ``rows`` the record dominates."""
    if rows.shape[0] == 0:
        return 0
    ge = np.all(record >= rows, axis=1)
    gt = np.any(record > rows, axis=1)
    return int(np.count_nonzero(ge & gt))


def _dominated_by_rows(record: np.ndarray, rows: np.ndarray) -> int:
    """How many of ``rows`` dominate the record."""
    if rows.shape[0] == 0:
        return 0
    ge = np.all(rows >= record, axis=1)
    gt = np.any(rows > record, axis=1)
    return int(np.count_nonzero(ge & gt))


class IncrementalAggregateSkyline:
    """Aggregate skyline with O(n) per-record insert/delete maintenance.

    Parameters
    ----------
    dimensions:
        Number of skyline dimensions.
    directions:
        Per-dimension ``"max"``/``"min"`` (default all max).
    """

    def __init__(
        self,
        dimensions: int,
        directions: Union[None, str, Direction, Sequence] = None,
    ):
        if dimensions < 1:
            raise ValueError("dimensions must be positive")
        self.dimensions = dimensions
        self.directions = parse_directions(directions, dimensions)
        self._groups: Dict[Hashable, _GroupStore] = {}
        # (a, b) -> number of record pairs of a dominating records of b.
        self._pair_counts: Dict[Tuple[Hashable, Hashable], int] = {}
        #: Monotonic mutation counter: bumped on every insert / delete /
        #: drop_group.  Snapshots (:meth:`to_dataset`) are memoised per
        #: version, and because a new version yields a snapshot with a new
        #: content fingerprint, derived artifacts cached against the old
        #: snapshot (:mod:`repro.core.artifacts`) are never served stale.
        self.version = 0
        self._snapshot: Optional[Tuple[int, GroupedDataset]] = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def group_keys(self) -> List[Hashable]:
        return list(self._groups)

    def group_size(self, key: Hashable) -> int:
        return self._groups[key].size

    @property
    def total_records(self) -> int:
        return sum(store.size for store in self._groups.values())

    def __len__(self) -> int:
        return len(self._groups)

    def pair_count(self, dominator: Hashable, dominated: Hashable) -> int:
        """Maintained count of dominating record pairs between two groups."""
        if dominator not in self._groups or dominated not in self._groups:
            raise KeyError((dominator, dominated))
        return self._pair_counts.get((dominator, dominated), 0)

    def probability(self, s: Hashable, r: Hashable) -> Fraction:
        """Exact ``p(S > R)`` from the maintained counts."""
        total = self._groups[s].size * self._groups[r].size
        if total == 0:
            raise ValueError("both groups must be non-empty")
        return Fraction(self.pair_count(s, r), total)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def _normalise(self, record: Iterable[float]) -> np.ndarray:
        row = normalize_values(
            np.asarray(list(record), dtype=np.float64), self.directions
        )
        return row[0]

    def insert(self, key: Hashable, record: Iterable[float]) -> None:
        """Add one record to group ``key`` (creating the group if new)."""
        row = self._normalise(record)
        store = self._groups.get(key)
        if store is None:
            store = _GroupStore(key)
            self._groups[key] = store
        for other_key, other in self._groups.items():
            if other_key == key or other.size == 0:
                continue
            rows = other.matrix()
            self._pair_counts[(key, other_key)] = (
                self._pair_counts.get((key, other_key), 0)
                + _dominates_rows(row, rows)
            )
            self._pair_counts[(other_key, key)] = (
                self._pair_counts.get((other_key, key), 0)
                + _dominated_by_rows(row, rows)
            )
        store.append(row)
        self.version += 1

    def insert_many(
        self, key: Hashable, records: Iterable[Iterable[float]]
    ) -> None:
        for record in records:
            self.insert(key, record)

    def delete(self, key: Hashable, record: Iterable[float]) -> None:
        """Remove one occurrence of ``record`` from group ``key``.

        Raises ``KeyError`` if the group does not exist and ``ValueError``
        if the record is not in it.  Deleting the last record drops the
        group entirely.
        """
        store = self._groups.get(key)
        if store is None:
            raise KeyError(key)
        row = self._normalise(record)
        position = next(
            (
                i
                for i, existing in enumerate(store.rows)
                if np.array_equal(existing, row)
            ),
            None,
        )
        if position is None:
            raise ValueError(f"record {list(record)!r} not in group {key!r}")
        store.pop(position)
        for other_key, other in self._groups.items():
            if other_key == key or other.size == 0:
                continue
            rows = other.matrix()
            self._pair_counts[(key, other_key)] -= _dominates_rows(row, rows)
            self._pair_counts[(other_key, key)] -= _dominated_by_rows(
                row, rows
            )
        self.version += 1
        if store.size == 0:
            self._drop_group(key)

    def drop_group(self, key: Hashable) -> None:
        """Remove a whole group and all its pairwise bookkeeping."""
        if key not in self._groups:
            raise KeyError(key)
        self._drop_group(key)
        self.version += 1

    def _drop_group(self, key: Hashable) -> None:
        del self._groups[key]
        for pair in [p for p in self._pair_counts if key in p]:
            del self._pair_counts[pair]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def skyline(self, gamma: GammaLike = 0.5) -> List[Hashable]:
        """Current aggregate skyline, straight from the maintained counts."""
        thresholds = GammaThresholds(gamma)
        surviving = []
        for key, store in self._groups.items():
            if store.size == 0:
                continue
            dominated = False
            for other_key, other in self._groups.items():
                if other_key == key or other.size == 0:
                    continue
                count = self._pair_counts.get((other_key, key), 0)
                total = other.size * store.size
                if dominance_holds(count, total, thresholds.gamma):
                    dominated = True
                    break
            if not dominated:
                surviving.append(key)
        return surviving

    def profile(self) -> GammaProfile:
        """γ-profile of the current state (no record comparisons needed)."""
        degrees: Dict[Hashable, Fraction] = {}
        strict = set()
        for key, store in self._groups.items():
            worst = Fraction(0)
            for other_key, other in self._groups.items():
                if other_key == key:
                    continue
                p = Fraction(
                    self._pair_counts.get((other_key, key), 0),
                    other.size * store.size,
                )
                if p > worst:
                    worst = p
            degrees[key] = worst
            if worst == 1:
                strict.add(key)
        return GammaProfile(degrees, strict)

    def to_dataset(self) -> Optional[GroupedDataset]:
        """Snapshot the current state as an immutable GroupedDataset.

        Values are handed over in the *original* orientation so the
        snapshot round-trips through the normal constructor.  Returns
        ``None`` when empty.

        Snapshots are memoised per :attr:`version`: as long as no mutation
        happened, the same (immutable, fingerprinted) dataset object is
        returned, so downstream consumers — including the derived-artifact
        cache — can reuse everything built against it.  The first mutation
        bumps the version; the next snapshot is a fresh dataset with a new
        fingerprint, invalidating cached artifacts naturally.
        """
        if not self._groups:
            return None
        if self._snapshot is not None and self._snapshot[0] == self.version:
            return self._snapshot[1]
        from .dominance import denormalize_values

        groups = {
            key: denormalize_values(store.matrix(), self.directions)
            for key, store in self._groups.items()
        }
        dataset = GroupedDataset(groups, directions=self.directions)
        self._snapshot = (self.version, dataset)
        return dataset
