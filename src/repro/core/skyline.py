"""Traditional record-wise skyline algorithms.

The paper builds on the classical skyline operator of Börzsönyi et al.
(reference [5]); this module provides it as a substrate: a naive quadratic
oracle, the block-nested-loop (BNL) algorithm, sort-filter-skyline (SFS,
reference [6], presorting by a monotone score), divide & conquer (D&C,
[5]'s third algorithm) and branch-and-bound skyline over the R-tree (BBS,
Papadias et al. — the paper's reference [17]).  They are used by the query
layer for ``SKYLINE OF`` without ``GROUP BY``, by the theory tests around
Proposition 3 (skyline containment) and by examples.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from .dominance import Direction, normalize_values, parse_directions

__all__ = [
    "skyline",
    "skyline_naive",
    "skyline_bnl",
    "skyline_sfs",
    "skyline_dnc",
    "skyline_bbs",
    "skyline_mask",
]


def _normalise(
    values: np.ndarray,
    directions: Union[None, str, Direction, Sequence],
) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError("skyline input must be 2-d (records x dimensions)")
    parsed = parse_directions(directions, array.shape[1])
    return normalize_values(array, parsed)


def skyline_mask(
    values: np.ndarray,
    directions: Union[None, str, Direction, Sequence] = None,
    algorithm: str = "sfs",
) -> np.ndarray:
    """Boolean mask of records in the skyline of ``values``.

    ``algorithm`` is one of ``"naive"``, ``"bnl"`` or ``"sfs"``.  All three
    return identical masks; they differ only in work performed.
    """
    data = _normalise(values, directions)
    if algorithm == "naive":
        indices = skyline_naive(data)
    elif algorithm == "bnl":
        indices = skyline_bnl(data)
    elif algorithm == "sfs":
        indices = skyline_sfs(data)
    elif algorithm == "dnc":
        indices = skyline_dnc(data)
    elif algorithm == "bbs":
        indices = skyline_bbs(data)
    else:
        raise ValueError(f"unknown skyline algorithm: {algorithm!r}")
    mask = np.zeros(data.shape[0], dtype=bool)
    mask[indices] = True
    return mask


def skyline(
    values: np.ndarray,
    directions: Union[None, str, Direction, Sequence] = None,
    algorithm: str = "sfs",
) -> np.ndarray:
    """Rows of ``values`` (original orientation) that are not dominated."""
    array = np.asarray(values, dtype=np.float64)
    return array[skyline_mask(array, directions, algorithm)]


def skyline_naive(data: np.ndarray) -> List[int]:
    """Quadratic oracle: keep records dominated by nobody.

    ``data`` must already be in the *higher is better* orientation.
    """
    n = data.shape[0]
    result: List[int] = []
    for i in range(n):
        ge = np.all(data >= data[i], axis=1)
        gt = np.any(data > data[i], axis=1)
        if not np.any(ge & gt):
            result.append(i)
    return result


def skyline_bnl(data: np.ndarray) -> List[int]:
    """Block-nested-loop skyline: maintain a window of incomparable records."""
    window: List[int] = []
    for i in range(data.shape[0]):
        record = data[i]
        dominated = False
        survivors: List[int] = []
        for j in window:
            other = data[j]
            other_ge = np.all(other >= record)
            record_ge = np.all(record >= other)
            if other_ge and not record_ge:
                dominated = True
                survivors = window  # nothing evicted; keep as-is
                break
            if record_ge and not other_ge:
                continue  # evict j, dominated by the new record
            survivors.append(j)
        if dominated:
            continue
        survivors.append(i)
        window = survivors
    return sorted(window)


def skyline_dnc(data: np.ndarray) -> List[int]:
    """Divide & conquer skyline (Börzsönyi et al.'s third algorithm).

    Splits on the median of the first dimension, recurses, then removes
    from the low half everything dominated by the high half's skyline.
    ``data`` must already be in the *higher is better* orientation.
    """

    def dominated_by_any(record: np.ndarray, others: np.ndarray) -> bool:
        if others.shape[0] == 0:
            return False
        ge = np.all(others >= record, axis=1)
        gt = np.any(others > record, axis=1)
        return bool(np.any(ge & gt))

    def recurse(indices: List[int]) -> List[int]:
        if len(indices) <= 3:
            kept = []
            for i in indices:
                others = data[[j for j in indices if j != i]]
                if not dominated_by_any(data[i], others):
                    kept.append(i)
            return kept
        values = data[indices, 0]
        pivot = float(np.median(values))
        high = [i for i in indices if data[i, 0] > pivot]
        low = [i for i in indices if data[i, 0] <= pivot]
        if not high or not low:
            # Degenerate split (many ties on dimension 0): fall back to a
            # window filter over the tied block.
            kept = []
            for i in indices:
                others = data[[j for j in indices if j != i]]
                if not dominated_by_any(data[i], others):
                    kept.append(i)
            return kept
        high_sky = recurse(high)
        low_sky = recurse(low)
        high_matrix = data[high_sky]
        merged = list(high_sky)
        for i in low_sky:
            if not dominated_by_any(data[i], high_matrix):
                merged.append(i)
        return merged

    return sorted(recurse(list(range(data.shape[0]))))


def skyline_bbs(data: np.ndarray) -> List[int]:
    """Branch-and-bound skyline over an R-tree (reference [17], maximised).

    Entries are popped in decreasing sum of their MBB's best corner.  When
    a *point* is popped, no unseen point can dominate it (any dominator
    has a strictly larger coordinate sum and lives in an entry with an at
    least as large key, already popped), so undominated popped points go
    straight into the skyline; node entries whose best corner is already
    dominated are pruned without expansion — BBS touches only the part of
    the tree that can contribute.
    """
    import heapq

    from ..index.rtree import Rect, RTree

    n = data.shape[0]
    if n == 0:
        return []
    tree = RTree.bulk_load(
        ((Rect.point(row), i) for i, row in enumerate(data)),
        max_entries=16,
    )

    skyline_points: List[np.ndarray] = []
    result: List[int] = []

    def dominated(point: np.ndarray) -> bool:
        for s in skyline_points:
            if np.all(s >= point) and np.any(s > point):
                return True
        return False

    counter = 0
    heap: List = []

    def push(key_corner: np.ndarray, payload) -> None:
        nonlocal counter
        heapq.heappush(heap, (-float(np.sum(key_corner)), counter, payload))
        counter += 1

    root = tree._root
    if root.rect is not None:
        push(root.rect.high, ("node", root))
    while heap:
        _, _, (kind, item) = heapq.heappop(heap)
        if kind == "point":
            entry = item
            point = entry.rect.low
            if not dominated(point):
                skyline_points.append(point)
                result.append(entry.item)
            continue
        node = item
        if node.rect is None or dominated(node.rect.high):
            continue
        if node.leaf:
            for entry in node.entries:
                if not dominated(entry.rect.low):
                    push(entry.rect.high, ("point", entry))
        else:
            for child in node.children:
                if child.rect is not None and not dominated(child.rect.high):
                    push(child.rect.high, ("node", child))
    return sorted(result)


def skyline_sfs(data: np.ndarray) -> List[int]:
    """Sort-filter skyline: presort by coordinate sum, then one filter pass.

    After sorting in decreasing sum order a record can only be dominated by
    records already in the window (a dominator always has a strictly larger
    coordinate sum), so no eviction is necessary.
    """
    order = np.argsort(-data.sum(axis=1), kind="stable")
    window: List[int] = []
    for i in order:
        record = data[i]
        dominated = False
        for j in window:
            other = data[j]
            if np.all(other >= record) and np.any(other > record):
                dominated = True
                break
        if not dominated:
            window.append(int(i))
    return sorted(window)
