"""Partitioned (and optionally parallel) aggregate-skyline execution.

The paper's related work points at distributed skyline processing (its
reference [9]); this module provides the partitioned execution scheme that
is sound for *groups* despite the loss of transitivity:

1. **Local phase** — split the groups into partitions and compute the
   aggregate skyline of each partition independently.  Exclusion is sound
   here: a group γ-dominated by a partition peer is γ-dominated, period
   (Definition 2 quantifies over *any* other group).
2. **Merge phase** — local survivors are only *candidates*: their
   dominators may live in other partitions, and — because dominated groups
   still dominate (no transitivity!) — may even be groups excluded
   locally.  Each candidate is therefore verified against **all** original
   groups with one-directional probes.

With ``processes > 1`` the local phase fans out through the shared pool
executor (:func:`repro.parallel.executor.map_tasks`), inheriting its
start-method resolution and :class:`~repro.parallel.executor.
PoolTimeoutError` fail-fast — previously an ad-hoc ``multiprocessing.Pool``
here could hang forever on a wedged worker.  The default runs the same two
phases serially, which already helps because the local phase shrinks the
candidate set that the expensive all-groups verification must touch.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .api import _coerce_dataset
from .comparator import DirectionalProbe
from .dominance import Direction
from .execution import ExecutionConfig, coerce_execution
from .gamma import GammaLike, GammaThresholds, dominance_holds
from .groups import GroupedDataset
from .result import AggregateSkylineResult, AlgorithmStats, Timer

__all__ = ["partitioned_aggregate_skyline", "partition_keys"]

GroupsLike = Union[GroupedDataset, Mapping[Hashable, Iterable]]


def partition_keys(
    keys: Sequence[Hashable], partitions: int
) -> List[List[Hashable]]:
    """Round-robin split of group keys into ``partitions`` buckets."""
    if partitions < 1:
        raise ValueError("partitions must be positive")
    buckets: List[List[Hashable]] = [[] for _ in range(partitions)]
    for position, key in enumerate(keys):
        buckets[position % partitions].append(key)
    return [bucket for bucket in buckets if bucket]


def _local_skyline(
    payload: Tuple[Dict[Hashable, np.ndarray], object]
) -> List[Hashable]:
    """Worker: the aggregate skyline of one partition (normalised data)."""
    groups, gamma = payload
    from .algorithms.nested_loop import NestedLoopAlgorithm

    dataset = GroupedDataset(groups)  # values already normalised
    return NestedLoopAlgorithm(gamma).compute(dataset).keys


def _verify_candidate(
    dataset: GroupedDataset,
    candidate_key: Hashable,
    thresholds: GammaThresholds,
) -> Tuple[bool, int]:
    """Is the candidate dominated by *any* group?  Returns (survives, pairs)."""
    target = dataset[candidate_key]
    pairs = 0
    for other in dataset:
        if other.key == candidate_key:
            continue
        probe = DirectionalProbe(other, target, use_bbox=True)
        lower, upper = probe.bounds()
        if lower == upper:
            p = lower
        elif dominance_holds(
            lower.numerator, lower.denominator, thresholds.gamma
        ):
            return False, pairs
        elif not dominance_holds(
            upper.numerator, upper.denominator, thresholds.gamma
        ):
            continue
        else:
            p = probe.exact()
            pairs += probe.pairs_examined
        if dominance_holds(p.numerator, p.denominator, thresholds.gamma):
            return False, pairs
    return True, pairs


#: Sentinel distinguishing "not passed" from an explicit ``None`` /
#: default value for the deprecated legacy kwargs.
_UNSET: Any = object()


def partitioned_aggregate_skyline(
    groups: GroupsLike,
    gamma: GammaLike = 0.5,
    partitions: int = 4,
    processes: Any = _UNSET,
    directions: Union[None, str, Direction, list, tuple] = None,
    pool_timeout: Any = _UNSET,
    *,
    execution: Union[None, ExecutionConfig, str, Mapping] = None,
) -> AggregateSkylineResult:
    """Exact aggregate skyline via local-then-merge execution.

    ``execution`` (an :class:`~repro.core.execution.ExecutionConfig`,
    mapping or ``"k=v,..."`` spec — see :meth:`ExecutionConfig.coerce`)
    controls the local phase: ``None`` (default) runs it serially, a
    config with ``workers >= 2`` fans it out over the shared pool
    executor, raising :class:`repro.parallel.PoolTimeoutError` after
    ``execution.pool_timeout`` seconds instead of hanging on a wedged
    pool.  The legacy ``processes=`` / ``pool_timeout=`` kwargs still
    work but emit one :class:`DeprecationWarning`.
    """
    execution = coerce_execution(execution)
    legacy: Dict[str, Any] = {}
    if processes is not _UNSET and processes is not None:
        legacy["workers"] = int(processes)
    if pool_timeout is not _UNSET:
        legacy["pool_timeout"] = float(pool_timeout)
    if legacy:
        warnings.warn(
            f"passing {sorted(legacy)} to partitioned_aggregate_skyline is"
            " deprecated; use execution=ExecutionConfig(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if execution is None:
            execution = ExecutionConfig.from_dict(legacy)
        else:
            # the explicit execution config wins; legacy only fills gaps
            fill = {
                key: value
                for key, value in legacy.items()
                if key not in execution.to_dict()
            }
            if fill:
                execution = execution.replace(**fill)
    workers = (
        execution.resolve_workers()
        if execution is not None and execution.parallel
        else 1
    )
    effective_timeout = (
        execution.pool_timeout if execution is not None else 300.0
    )
    dataset = _coerce_dataset(groups, directions)
    thresholds = GammaThresholds(gamma)

    with Timer() as timer:
        buckets = partition_keys(dataset.keys(), partitions)
        # The exact Fraction travels to the workers: a float-rounded gamma
        # could make the local phase dominate slightly more than the merge
        # phase and wrongly exclude a borderline group.
        payloads = [
            (
                {key: dataset[key].values for key in bucket},
                thresholds.gamma,
            )
            for bucket in buckets
        ]
        if workers > 1 and len(payloads) > 1:
            from ..parallel.executor import map_tasks

            local_survivors = map_tasks(
                _local_skyline,
                payloads,
                workers=workers,
                pool_timeout=effective_timeout,
            )
        else:
            local_survivors = [_local_skyline(p) for p in payloads]

        candidates = [key for bucket in local_survivors for key in bucket]
        pairs = 0
        surviving = []
        for key in candidates:
            keep, examined = _verify_candidate(dataset, key, thresholds)
            pairs += examined
            if keep:
                surviving.append(key)
        # Preserve the dataset's group order in the result.
        order = {key: i for i, key in enumerate(dataset.keys())}
        surviving.sort(key=lambda key: order[key])

    stats = AlgorithmStats(
        algorithm=f"PART({partitions})",
        record_pairs_examined=pairs,
        elapsed_seconds=timer.elapsed,
    )
    return AggregateSkylineResult(
        keys=surviving, gamma=float(thresholds.gamma), stats=stats
    )
