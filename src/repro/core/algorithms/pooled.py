"""Shared merge and observability plumbing for pooled algorithm runs.

Both ``PAR`` (pair chunks) and the parallel IN/LO path (candidate slabs)
end a pooled run the same way: absorb the workers' counters into the
parent comparator so ``AlgorithmStats`` — and therefore the always-on
metrics flush — reconciles exactly with the work done across all
processes, keep the per-chunk breakdown for inspection, and record the
scheduling telemetry (chunk latency, steal and idle counters) that the
work-stealing scheduler produces.
"""

from __future__ import annotations

from typing import List, Optional

from ...obs import metrics as obs_metrics
from ...obs.tracing import Span
from ...parallel.executor import ChunkOutcome, PoolRun
from ..result import AlgorithmStats

__all__ = [
    "absorb_outcomes",
    "flush_pool_metrics",
    "record_chunk_events",
    "pool_progress_callback",
    "pool_run_kwargs",
]


def pool_run_kwargs(execution) -> dict:
    """Pool + fault-tolerance knobs an ExecutionConfig forwards to
    :func:`repro.parallel.executor.run_spans`.

    Every pooled algorithm routes its execution config through here so
    the retry policy (``on_failure`` / ``max_retries`` / ``retry_backoff``)
    reaches the executor uniformly — PAR, parallel IN and parallel LO all
    recover from worker crashes the same way.
    """
    return dict(
        pool_timeout=execution.pool_timeout,
        scheduler=execution.scheduler,
        shm=execution.shm,
        max_retries=execution.max_retries,
        retry_backoff=execution.retry_backoff,
        on_failure=execution.on_failure,
    )

#: Chunk latency buckets: 10µs … 100s in decades.
CHUNK_SECONDS_BUCKETS = obs_metrics.log_buckets(1e-5, 10.0, 8)


def absorb_outcomes(
    algorithm,
    outcomes: List[ChunkOutcome],
    worker_stats: Optional[List[AlgorithmStats]] = None,
) -> None:
    """Fold worker counters into ``algorithm``'s comparator and stats.

    Updates the parent comparator (so the stats built by ``compute()``
    cover all processes), the index-candidate and skip tallies, the
    opt-in obs event counters, and appends one ``<name>.worker``
    :class:`AlgorithmStats` per chunk to *worker_stats* when given.
    """
    exits = 0
    shortcuts = 0
    for outcome in outcomes:
        algorithm.comparator.absorb(
            comparisons=outcome.comparisons,
            pairs_examined=outcome.pairs_examined,
            bbox_shortcuts=outcome.bbox_shortcuts,
            stopping_rule_exits=outcome.stopping_rule_exits,
        )
        algorithm._groups_skipped += outcome.pairs_skipped
        algorithm._index_candidates += outcome.index_candidates
        exits += outcome.stopping_rule_exits
        shortcuts += outcome.bbox_shortcuts
        if worker_stats is not None:
            worker_stats.append(
                AlgorithmStats(
                    algorithm=f"{algorithm.name}.worker",
                    group_comparisons=outcome.comparisons,
                    record_pairs_examined=outcome.pairs_examined,
                    bbox_shortcuts=outcome.bbox_shortcuts,
                    groups_skipped=outcome.pairs_skipped,
                    index_candidates=outcome.index_candidates,
                    stopping_rule_exits=outcome.stopping_rule_exits,
                    elapsed_seconds=outcome.elapsed_seconds,
                )
            )
    # Detailed per-comparison instruments cannot observe remote
    # comparisons one by one, but the event *counters* still reconcile.
    if algorithm.comparator._obs_exit_counter is not None and exits:
        algorithm.comparator._obs_exit_counter.inc(exits)
    if algorithm.comparator._obs_shortcut_counter is not None and shortcuts:
        algorithm.comparator._obs_shortcut_counter.inc(shortcuts)


def flush_pool_metrics(algorithm_name: str, scheduler: str, run: PoolRun) -> None:
    """Record pooled-run scheduling telemetry in the metrics registry.

    Always on (a handful of locked adds once per run), like the end-of-run
    counter flush in ``compute()``:

    * ``parallel_chunks_total`` — chunks executed;
    * ``parallel_steals_total`` — chunks executed by a slot that stole
      them from another slot's queue (stealing scheduler only);
    * ``parallel_worker_idle_seconds_total`` — time worker slots spent in
      the claim loop rather than comparing;
    * ``parallel_chunk_seconds`` — per-chunk latency histogram.
    """
    registry = obs_metrics.get_registry()
    labels = {"algorithm": algorithm_name, "scheduler": scheduler}
    names = ("algorithm", "scheduler")
    registry.counter(
        "parallel_chunks_total",
        "Chunks executed by pooled skyline runs",
        names,
    ).inc(len(run.outcomes), **labels)
    steals = sum(report.chunks_stolen for report in run.reports)
    registry.counter(
        "parallel_steals_total",
        "Chunks executed by a worker slot that stole them",
        names,
    ).inc(steals, **labels)
    idle = sum(report.idle_seconds for report in run.reports)
    registry.counter(
        "parallel_worker_idle_seconds_total",
        "Seconds worker slots spent claiming instead of comparing",
        names,
    ).inc(idle, **labels)
    histogram = registry.histogram(
        "parallel_chunk_seconds",
        "Wall-clock latency of one pooled chunk",
        names,
        buckets=CHUNK_SECONDS_BUCKETS,
    )
    for outcome in run.outcomes:
        histogram.observe(outcome.elapsed_seconds, **labels)


def pool_progress_callback(algorithm):
    """Adapt the algorithm's ``progress_reporter`` to the pool's callback.

    Returns the ``(chunks_done, chunks_total)`` callable that
    :func:`repro.parallel.executor.run_spans` polls, or ``None`` when no
    reporter is attached.  The reporter's ETA then comes from the chunk
    claim rate (:func:`repro.obs.progress.eta_from_chunks`) — the serial
    pair budget is meaningless when ``workers=N`` chew through pairs
    concurrently, and under the stealing scheduler per-worker pair counts
    do not even add up monotonically.
    """
    reporter = getattr(algorithm, "progress_reporter", None)
    if reporter is None:
        return None
    phase = f"{algorithm.name}.pool"

    def callback(chunks_done: int, chunks_total: int) -> None:
        reporter.update(
            done=chunks_done,
            total=chunks_total,
            phase=phase,
            chunks_done=chunks_done,
            chunks_total=chunks_total,
        )

    return callback


def record_chunk_events(span, run: PoolRun) -> None:
    """Merge the workers' trace output into *span*.

    Each :class:`ChunkOutcome` that ran with tracing enabled carries the
    serialized ``parallel.chunk`` span the worker recorded; those are
    rebuilt with :meth:`Span.from_dict` and adopted as children of *span*
    — by construction their ``parent_id`` already points at *span* (the
    :class:`~repro.obs.tracing.TraceContext` shipped to the pool was
    snapshotted while *span* was the innermost open span), so the whole
    ``workers=N`` run renders as one coherent tree.  Worker reports stay
    flat span events (one per slot).  Chunks with no recorded span (e.g.
    a pool initialised before tracing was enabled) degrade to the flat
    ``chunk`` events of PR-4.
    """
    if not span.is_recording:
        return
    for outcome in run.outcomes:
        if outcome.spans:
            for data in outcome.spans:
                span.adopt(Span.from_dict(data))
            continue
        span.add_event(
            "chunk",
            start=outcome.start,
            stop=outcome.stop,
            pid=outcome.worker_pid,
            slot=outcome.slot,
            stolen=outcome.stolen,
            pairs_examined=outcome.pairs_examined,
            elapsed_seconds=outcome.elapsed_seconds,
        )
    for report in run.reports:
        span.add_event(
            "worker",
            slot=report.slot,
            pid=report.worker_pid,
            chunks_done=report.chunks_done,
            chunks_stolen=report.chunks_stolen,
            idle_seconds=report.idle_seconds,
            busy_seconds=report.busy_seconds,
        )
