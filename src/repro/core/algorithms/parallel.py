"""Parallel aggregate skyline ("PAR"): group-pair chunks on a worker pool.

The aggregate skyline is quadratic twice over — O(m^2) group comparisons,
each up to O(n^2) record pairs (Equations 3-4 of the paper) — but the
comparison matrix decomposes into independent units, the structure group-
skyline work such as *Aggregate Skyline Join Queries* (Bhattacharya & Teja)
and *Efficient Contour Computation of Group-based Skyline* (Yu et al.)
exploits.  ``PAR`` partitions the upper-triangular pair space into chunks
(:mod:`repro.parallel.partition` / :mod:`repro.parallel.scheduler`) and
runs them on a process pool (:mod:`repro.parallel.executor`), shipping the
group ndarrays to the workers exactly once — inherited copy-on-write under
``fork``, or through ``multiprocessing.shared_memory`` on spawn platforms.

Scheduling (``ExecutionConfig.scheduler``)
------------------------------------------
* ``"static"`` — the near-equal contiguous chunking of PR 2, handed to
  ``Pool.map``.  Lowest overhead for uniform workloads.
* ``"stealing"`` — guided decreasing chunk sizes owned round-robin by
  worker slots; a drained slot steals small chunks from the tail of the
  most-loaded victim.  This is the remedy for skewed (Zipfian) group
  sizes, where equal *pair counts* are wildly unequal *work*.

Because both schedulers execute every chunk exactly once with the same
kernel, the determinism contract below is scheduler-independent.

Determinism contract (see ``docs/parallel.md``)
-----------------------------------------------
* ``exchange_interval == 0`` (default) — the *two-phase* scheme: a parallel
  compare-everything pass followed by a serial verdict merge.  Every pair is
  compared exactly once in full, so the result **and every work counter**
  are bit-identical to serial ``NL`` for any worker count, under either
  pruning policy and either scheduler.
* ``exchange_interval > 0`` — the *pruning exchange*: workers share group
  verdict flags and skip redundant probes.  The skyline keeps the serial
  policy's guarantee (``safe`` stays exact, ``paper`` may be a superset on
  adversarial inputs, like serial ``TR``), but the work counters become
  schedule-dependent.

Statistics of the pool workers are merged into the parent's comparator, so
``AlgorithmStats`` — and therefore the observability registry flushed by
:meth:`~repro.core.algorithms.base.AggregateSkylineAlgorithm.compute` —
reconciles exactly with the work actually performed across all processes;
the per-chunk breakdown is kept in :attr:`ParallelSkylineAlgorithm.
worker_stats` and the scheduling telemetry (steal and idle counters,
chunk-latency histogram) flows into the metrics registry.
"""

from __future__ import annotations

from typing import List, Optional

from ...obs import tracing as obs_tracing
from ...parallel.executor import (
    PoolRun,
    WorkerConfig,
    apply_verdicts,
    compare_span,
    run_spans,
)
from ...parallel.partition import chunk_ranges, pair_count
from ...parallel.scheduler import guided_spans
from ..execution import ExecutionConfig, coerce_execution
from ..gamma import GammaLike
from ..groups import Group
from ..result import AlgorithmStats
from .base import AggregateSkylineAlgorithm, GroupState
from .pooled import (
    absorb_outcomes,
    flush_pool_metrics,
    pool_progress_callback,
    pool_run_kwargs,
    record_chunk_events,
)

__all__ = ["ParallelSkylineAlgorithm"]


class ParallelSkylineAlgorithm(AggregateSkylineAlgorithm):
    """Chunked nested-loop skyline on a process pool (extension)."""

    name = "PAR"

    #: Accepts ``execution=ExecutionConfig(...)`` (see ``core.execution``).
    supports_execution = True

    def __init__(
        self,
        gamma: GammaLike = 0.5,
        use_stopping_rule: bool = True,
        use_bbox: bool = False,
        prune_policy: str = "paper",
        block_size: int = 1024,
        workers: Optional[int] = None,
        chunks_per_worker: int = 4,
        exchange_interval: int = 0,
        pool_timeout: float = 300.0,
        execution: Optional[ExecutionConfig] = None,
    ):
        super().__init__(
            gamma,
            use_stopping_rule=use_stopping_rule,
            use_bbox=use_bbox,
            prune_policy=prune_policy,
            block_size=block_size,
        )
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be >= 1")
        execution = coerce_execution(execution)
        if execution is None:
            # Legacy construction shape; ExecutionConfig validates the values.
            execution = ExecutionConfig(
                workers=workers,
                exchange_interval=exchange_interval,
                pool_timeout=pool_timeout,
            )
        #: The unified execution configuration driving this instance.
        self.execution = execution
        #: Effective worker count (explicit > $REPRO_WORKERS > cpu-derived).
        self.workers = execution.resolve_workers()
        self.chunks_per_worker = chunks_per_worker
        self.exchange_interval = execution.exchange_interval
        self.pool_timeout = execution.pool_timeout
        self.scheduler = execution.scheduler
        self.shm = execution.shm
        self.chunk_size = execution.chunk_size
        #: Per-chunk worker statistics of the last compute() (pooled runs).
        self.worker_stats: List[AlgorithmStats] = []
        #: Full PoolRun of the last pooled compute() (chunk outcomes +
        #: per-slot scheduling reports); None for inline runs.
        self.last_pool_run: Optional[PoolRun] = None
        #: Span executor override.  ``None`` runs each pooled compute on a
        #: fresh one-shot pool (:func:`repro.parallel.executor.run_spans`);
        #: a warm :class:`~repro.engine.SkylineEngine` injects a closure
        #: with the same signature that routes the spans over its
        #: persistent pool instead.  Everything else — span layout,
        #: worker config, merge — is identical, which is what keeps warm
        #: results and counters bit-identical to cold runs.
        self._pool_runner = None

    # ------------------------------------------------------------------

    @property
    def _mode(self) -> str:
        return "exchange" if self.exchange_interval > 0 else "two-phase"

    def _spans(self, total: int):
        if self.scheduler == "stealing":
            return guided_spans(total, self.workers, min_chunk=self.chunk_size)
        return chunk_ranges(total, self.workers * self.chunks_per_worker)

    def _run(self, groups: List[Group], state: GroupState) -> None:
        self.worker_stats = []
        self.last_pool_run = None
        n = len(groups)
        total = pair_count(n)
        if total == 0:
            return
        spans = self._spans(total)
        tracer = obs_tracing.get_tracer()
        span_attrs = dict(
            workers=self.workers,
            chunks=len(spans),
            pairs=total,
            mode=self._mode,
            scheduler=self.scheduler,
        )
        if self.workers == 1:
            with tracer.span("parallel.chunks", **span_attrs):
                self._run_inline(groups, state, spans, n)
            return
        config = WorkerConfig(
            gamma=self.thresholds.gamma,
            use_stopping_rule=self.comparator.use_stopping_rule,
            use_bbox=self.comparator.use_bbox,
            block_size=self.comparator.block_size,
            prune_policy=self.prune_policy,
            exchange_interval=self.exchange_interval,
        )
        with tracer.span("parallel.chunks", **span_attrs) as chunk_span:
            runner = self._pool_runner or run_spans
            run = runner(
                groups,
                config,
                spans,
                self.workers,
                progress=pool_progress_callback(self),
                **pool_run_kwargs(self.execution),
            )
            record_chunk_events(chunk_span, run)
        with tracer.span("parallel.merge", chunks=len(run.outcomes)):
            self._merge(run, state)

    # ------------------------------------------------------------------

    def _run_inline(self, groups, state, spans, n) -> None:
        """``workers == 1``: same kernel and chunk layout, no pool."""
        flags = bytearray(n) if self.exchange_interval > 0 else None
        for span in spans:
            verdicts, skipped = compare_span(
                groups,
                self.comparator,
                span,
                prune_policy=self.prune_policy,
                flags=flags,
                exchange_interval=self.exchange_interval,
            )
            self._groups_skipped += skipped
            apply_verdicts(state, verdicts)

    def _merge(self, run: PoolRun, state: GroupState) -> None:
        """Serial phase: fold worker verdicts and counters into this run."""
        self.last_pool_run = run
        for outcome in run.outcomes:
            apply_verdicts(state, outcome.verdicts)
        absorb_outcomes(self, run.outcomes, self.worker_stats)
        flush_pool_metrics(self.name, self.scheduler, run)
