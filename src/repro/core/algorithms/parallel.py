"""Parallel aggregate skyline ("PAR"): group-pair chunks on a worker pool.

The aggregate skyline is quadratic twice over — O(m^2) group comparisons,
each up to O(n^2) record pairs (Equations 3-4 of the paper) — but the
comparison matrix decomposes into independent units, the structure group-
skyline work such as *Aggregate Skyline Join Queries* (Bhattacharya & Teja)
and *Efficient Contour Computation of Group-based Skyline* (Yu et al.)
exploits.  ``PAR`` partitions the upper-triangular pair space into chunks
(:mod:`repro.parallel.partition`) and runs them on a process pool
(:mod:`repro.parallel.executor`), shipping the group ndarrays to the
workers exactly once.

Determinism contract (see ``docs/parallel.md``)
-----------------------------------------------
* ``exchange_interval == 0`` (default) — the *two-phase* scheme: a parallel
  compare-everything pass followed by a serial verdict merge.  Every pair is
  compared exactly once in full, so the result **and every work counter**
  are bit-identical to serial ``NL`` for any worker count, under either
  pruning policy.
* ``exchange_interval > 0`` — the *pruning exchange*: workers share group
  verdict flags and skip redundant probes.  The skyline keeps the serial
  policy's guarantee (``safe`` stays exact, ``paper`` may be a superset on
  adversarial inputs, like serial ``TR``), but the work counters become
  schedule-dependent.

Statistics of the pool workers are merged into the parent's comparator, so
``AlgorithmStats`` — and therefore the observability registry flushed by
:meth:`~repro.core.algorithms.base.AggregateSkylineAlgorithm.compute` —
reconciles exactly with the work actually performed across all processes;
the per-chunk breakdown is kept in :attr:`ParallelSkylineAlgorithm.
worker_stats`.
"""

from __future__ import annotations

from typing import List, Optional

from ...obs import tracing as obs_tracing
from ...parallel.executor import (
    ChunkOutcome,
    WorkerConfig,
    apply_verdicts,
    compare_span,
    execute_chunks,
    resolve_workers,
)
from ...parallel.partition import chunk_ranges, pair_count
from ..gamma import GammaLike
from ..groups import Group
from ..result import AlgorithmStats
from .base import AggregateSkylineAlgorithm, GroupState

__all__ = ["ParallelSkylineAlgorithm"]


class ParallelSkylineAlgorithm(AggregateSkylineAlgorithm):
    """Chunked nested-loop skyline on a process pool (extension)."""

    name = "PAR"

    def __init__(
        self,
        gamma: GammaLike = 0.5,
        use_stopping_rule: bool = True,
        use_bbox: bool = False,
        prune_policy: str = "paper",
        block_size: int = 1024,
        workers: Optional[int] = None,
        chunks_per_worker: int = 4,
        exchange_interval: int = 0,
        pool_timeout: float = 300.0,
    ):
        super().__init__(
            gamma,
            use_stopping_rule=use_stopping_rule,
            use_bbox=use_bbox,
            prune_policy=prune_policy,
            block_size=block_size,
        )
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be >= 1")
        if exchange_interval < 0:
            raise ValueError("exchange_interval must be >= 0")
        if pool_timeout <= 0:
            raise ValueError("pool_timeout must be positive")
        #: Effective worker count (explicit > $REPRO_WORKERS > cpu-derived).
        self.workers = resolve_workers(workers)
        self.chunks_per_worker = chunks_per_worker
        self.exchange_interval = exchange_interval
        self.pool_timeout = pool_timeout
        #: Per-chunk worker statistics of the last compute() (pooled runs).
        self.worker_stats: List[AlgorithmStats] = []

    # ------------------------------------------------------------------

    @property
    def _mode(self) -> str:
        return "exchange" if self.exchange_interval > 0 else "two-phase"

    def _run(self, groups: List[Group], state: GroupState) -> None:
        self.worker_stats = []
        n = len(groups)
        total = pair_count(n)
        if total == 0:
            return
        spans = chunk_ranges(total, self.workers * self.chunks_per_worker)
        tracer = obs_tracing.get_tracer()
        span_attrs = dict(
            workers=self.workers,
            chunks=len(spans),
            pairs=total,
            mode=self._mode,
        )
        if self.workers == 1:
            with tracer.span("parallel.chunks", **span_attrs):
                self._run_inline(groups, state, spans, n)
            return
        config = WorkerConfig(
            gamma=self.thresholds.gamma,
            use_stopping_rule=self.comparator.use_stopping_rule,
            use_bbox=self.comparator.use_bbox,
            block_size=self.comparator.block_size,
            prune_policy=self.prune_policy,
            exchange_interval=self.exchange_interval,
        )
        with tracer.span("parallel.chunks", **span_attrs) as chunk_span:
            outcomes = execute_chunks(
                groups, config, spans, self.workers, self.pool_timeout
            )
            if chunk_span.is_recording:
                for outcome in outcomes:
                    chunk_span.add_event(
                        "chunk",
                        start=outcome.start,
                        stop=outcome.stop,
                        pid=outcome.worker_pid,
                        pairs_examined=outcome.pairs_examined,
                        elapsed_seconds=outcome.elapsed_seconds,
                    )
        with tracer.span("parallel.merge", chunks=len(outcomes)):
            self._merge(outcomes, state)

    # ------------------------------------------------------------------

    def _run_inline(self, groups, state, spans, n) -> None:
        """``workers == 1``: same kernel and chunk layout, no pool."""
        flags = bytearray(n) if self.exchange_interval > 0 else None
        for span in spans:
            verdicts, skipped = compare_span(
                groups,
                self.comparator,
                span,
                prune_policy=self.prune_policy,
                flags=flags,
                exchange_interval=self.exchange_interval,
            )
            self._groups_skipped += skipped
            apply_verdicts(state, verdicts)

    def _merge(self, outcomes: List[ChunkOutcome], state: GroupState) -> None:
        """Serial phase: fold worker verdicts and counters into this run."""
        exits = 0
        shortcuts = 0
        for outcome in outcomes:
            apply_verdicts(state, outcome.verdicts)
            self.comparator.absorb(
                comparisons=outcome.comparisons,
                pairs_examined=outcome.pairs_examined,
                bbox_shortcuts=outcome.bbox_shortcuts,
                stopping_rule_exits=outcome.stopping_rule_exits,
            )
            self._groups_skipped += outcome.pairs_skipped
            exits += outcome.stopping_rule_exits
            shortcuts += outcome.bbox_shortcuts
            self.worker_stats.append(
                AlgorithmStats(
                    algorithm=f"{self.name}.worker",
                    group_comparisons=outcome.comparisons,
                    record_pairs_examined=outcome.pairs_examined,
                    bbox_shortcuts=outcome.bbox_shortcuts,
                    groups_skipped=outcome.pairs_skipped,
                    stopping_rule_exits=outcome.stopping_rule_exits,
                    elapsed_seconds=outcome.elapsed_seconds,
                )
            )
        # Detailed per-comparison instruments cannot observe remote
        # comparisons one by one, but the event *counters* still reconcile.
        if self.comparator._obs_exit_counter is not None and exits:
            self.comparator._obs_exit_counter.inc(exits)
        if self.comparator._obs_shortcut_counter is not None and shortcuts:
            self.comparator._obs_shortcut_counter.inc(shortcuts)
