"""Shared driver machinery for the aggregate-skyline algorithms.

Every algorithm from Section 3 of the paper is a subclass of
:class:`AggregateSkylineAlgorithm`; they share group-status bookkeeping
(active / dominated / strongly dominated) and the work counters the
benchmarks report.

Two pruning policies are supported (see DESIGN.md, "Semantics and
faithfulness notes"):

``prune_policy="paper"``
    The verbatim pseudocode: groups marked *strongly dominated* (γ̄-level)
    are skipped entirely, both as candidates and as potential dominators.
    Weak transitivity (Prop. 5) guarantees their γ̄-exclusions are inherited
    by their own dominator, but merely-γ exclusions are not covered, so in
    adversarial configurations the result can be a strict superset of the
    exact Definition-2 skyline.

``prune_policy="safe"``
    Exact under Definition 2: an excluded group is skipped as a *candidate*
    (its fate is sealed), but it is still probed — one-directionally, which
    is cheap with the stopping rule — as a potential *dominator* of groups
    whose fate is still open.
"""

from __future__ import annotations

import abc
from typing import Hashable, List, Optional

from ...obs import metrics as obs_metrics
from ...obs import runlog as obs_runlog
from ...obs import tracing as obs_tracing
from ...obs.sampler import profile_phase
from ..comparator import ComparisonOutcome, GroupComparator
from ..gamma import GammaLike, GammaThresholds
from ..groups import Group, GroupedDataset
from ..result import AggregateSkylineResult, AlgorithmStats, Timer

__all__ = ["AggregateSkylineAlgorithm", "GroupState", "PRUNE_POLICIES"]

PRUNE_POLICIES = ("paper", "safe")


def _record_run_metrics(registry, stats: AlgorithmStats) -> None:
    """Flush one run's end-of-run counters into ``registry``.

    Runs once per ``compute()`` (a handful of locked adds), so it is always
    on; the registry therefore reconciles exactly with
    :class:`~repro.core.result.AlgorithmStats` after every run.
    """
    label = {"algorithm": stats.algorithm or "?"}
    registry.counter(
        "skyline_runs_total",
        "Aggregate-skyline computations",
        ("algorithm",),
    ).inc(1, **label)
    registry.counter(
        "skyline_group_comparisons_total",
        "Group-vs-group comparisons (Equation 3 outer term)",
        ("algorithm",),
    ).inc(stats.group_comparisons, **label)
    registry.counter(
        "skyline_record_pairs_total",
        "Record-pair dominance checks (Equation 4 inner term)",
        ("algorithm",),
    ).inc(stats.record_pairs_examined, **label)
    registry.counter(
        "skyline_bbox_shortcuts_total",
        "Comparisons fully resolved by MBB corners",
        ("algorithm",),
    ).inc(stats.bbox_shortcuts, **label)
    registry.counter(
        "skyline_groups_skipped_total",
        "Candidate groups skipped by the pruning policy",
        ("algorithm",),
    ).inc(stats.groups_skipped, **label)
    registry.counter(
        "skyline_index_candidates_total",
        "Groups returned by index window queries",
        ("algorithm",),
    ).inc(stats.index_candidates, **label)
    registry.counter(
        "skyline_stopping_rule_exits_total",
        "Comparisons decided early by the Section-3.3 stopping rule",
        ("algorithm",),
    ).inc(stats.stopping_rule_exits, **label)
    registry.histogram(
        "skyline_run_seconds",
        "Wall-clock time of one aggregate-skyline computation",
        ("algorithm",),
        buckets=obs_metrics.DEFAULT_LATENCY_BUCKETS,
    ).observe(stats.elapsed_seconds, **label)


class GroupState:
    """Per-group dominance status shared by every algorithm."""

    __slots__ = ("dominated", "strong")

    def __init__(self, n_groups: int):
        self.dominated = [False] * n_groups
        self.strong = [False] * n_groups

    def mark_dominated(self, index: int) -> None:
        self.dominated[index] = True

    def mark_strong(self, index: int) -> None:
        self.dominated[index] = True
        self.strong[index] = True

    def is_dominated(self, index: int) -> bool:
        return self.dominated[index]

    def is_strong(self, index: int) -> bool:
        return self.strong[index]

    def surviving_keys(self, groups: List[Group]) -> List[Hashable]:
        return [
            group.key
            for group, out in zip(groups, self.dominated)
            if not out
        ]


class AggregateSkylineAlgorithm(abc.ABC):
    """Base class: configuration, statistics, and the compute() template."""

    #: Short identifier used in benchmark output (paper's NL/TR/SI/IN/LO).
    name = "?"

    def __init__(
        self,
        gamma: GammaLike = 0.5,
        use_stopping_rule: bool = True,
        use_bbox: bool = False,
        prune_policy: str = "paper",
        block_size: int = 1024,
    ):
        if prune_policy not in PRUNE_POLICIES:
            raise ValueError(
                f"prune_policy must be one of {PRUNE_POLICIES}, got {prune_policy!r}"
            )
        self.thresholds = GammaThresholds(gamma)
        self.prune_policy = prune_policy
        self.comparator = GroupComparator(
            self.thresholds,
            use_stopping_rule=use_stopping_rule,
            use_bbox=use_bbox,
            block_size=block_size,
        )
        self._groups_skipped = 0
        self._index_candidates = 0
        #: Optional :class:`~repro.obs.progress.ProgressReporter` consulted
        #: by pooled execution paths (PAR and parallel IN/LO): when set,
        #: the parent polls chunk-claim telemetry while the pool runs and
        #: heartbeats with a chunk-rate ETA.  Serial paths ignore it.
        self.progress_reporter = None
        #: The dataset of the in-flight compute() (None outside one).
        #: Index-driven subclasses use it to reach the columnar corner
        #: matrices and the content-keyed derived-artifact cache
        #: (:mod:`repro.core.artifacts`).
        self._dataset: Optional[GroupedDataset] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def compute(self, dataset: GroupedDataset) -> AggregateSkylineResult:
        """Run the algorithm and return surviving group keys plus stats.

        Observability: a root ``skyline.compute`` span (with a nested
        ``skyline.candidates`` phase span around the candidate loop) is
        recorded when tracing is enabled, the end-of-run counters are
        always flushed into the process-global metrics registry, and
        ``run_start`` / ``run_end`` / ``run_error`` events — correlated
        with the span's trace id — go to the structured run log.  Setting
        ``$REPRO_PROFILE_DIR`` additionally cProfiles the candidate phase
        into one ``pstats`` dump per run.
        """
        tracer = obs_tracing.get_tracer()
        self.comparator.reset_stats()
        self._groups_skipped = 0
        self._index_candidates = 0
        state = GroupState(len(dataset))
        groups = dataset.groups
        bound_metrics = obs_metrics.is_enabled()
        if bound_metrics:
            self.comparator.bind_metrics(
                obs_metrics.get_registry(), algorithm=self.name
            )
        root = tracer.span(
            "skyline.compute",
            algorithm=self.name,
            groups=len(groups),
            gamma=float(self.thresholds.gamma),
            prune_policy=self.prune_policy,
        )
        self._dataset = dataset
        try:
            with root:
                obs_runlog.emit(
                    "run_start",
                    algorithm=self.name,
                    groups=len(groups),
                    gamma=float(self.thresholds.gamma),
                    prune_policy=self.prune_policy,
                )
                try:
                    with Timer() as timer:
                        with tracer.span("skyline.candidates"):
                            with profile_phase(f"{self.name}.candidates"):
                                self._run(groups, state)
                except BaseException as exc:
                    obs_runlog.emit_error(
                        "run_error", exc, algorithm=self.name
                    )
                    raise
                # run_end is emitted while the root span is still open so
                # the event shares its trace_id/span_id.
                if obs_runlog.get_runlog().enabled:
                    obs_runlog.emit(
                        "run_end",
                        algorithm=self.name,
                        elapsed_seconds=timer.elapsed,
                        survivors=len(state.surviving_keys(groups)),
                        group_comparisons=self.comparator.comparisons,
                        record_pairs_examined=self.comparator.pairs_examined,
                    )
        finally:
            self._dataset = None
            if bound_metrics:
                self.comparator.unbind_metrics()
        stats = AlgorithmStats(
            algorithm=self.name,
            group_comparisons=self.comparator.comparisons,
            record_pairs_examined=self.comparator.pairs_examined,
            bbox_shortcuts=self.comparator.bbox_shortcuts,
            groups_skipped=self._groups_skipped,
            index_candidates=self._index_candidates,
            stopping_rule_exits=self.comparator.stopping_rule_exits,
            elapsed_seconds=timer.elapsed,
        )
        keys = state.surviving_keys(groups)
        if root.is_recording:
            root.set_attribute("survivors", len(keys))
            root.set_attribute("group_comparisons", stats.group_comparisons)
            root.set_attribute(
                "record_pairs_examined", stats.record_pairs_examined
            )
            root.set_attribute("bbox_shortcuts", stats.bbox_shortcuts)
        _record_run_metrics(obs_metrics.get_registry(), stats)
        return AggregateSkylineResult(
            keys=keys,
            gamma=float(self.thresholds.gamma),
            stats=stats,
            trace=root if root.is_recording else None,
        )

    # ------------------------------------------------------------------
    # subclass hook
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _run(self, groups: List[Group], state: GroupState) -> None:
        """Populate ``state`` with dominated / strongly-dominated marks."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    #: Set by index-driven algorithms, where every group's verdict comes from
    #: its *own* window query: there a group whose verdict is sealed can be
    #: skipped as candidate without affecting anyone else's verdict.  In
    #: pair-once loops (NL/TR/SI) a dominated candidate must still be probed
    #: one-directionally as a dominator, so the safe policy never skips it.
    _verdicts_are_independent = False

    def _skip_as_candidate(self, index: int, state: GroupState) -> bool:
        """Should ``index`` be skipped as the current candidate ``g1``?"""
        if self.prune_policy == "paper":
            skip = state.is_strong(index)
        elif self._verdicts_are_independent:
            skip = state.is_dominated(index)
        else:
            skip = False
        if skip:
            self._groups_skipped += 1
        return skip

    def _compare_pair(
        self,
        groups: List[Group],
        i: int,
        j: int,
        state: GroupState,
    ) -> Optional[ComparisonOutcome]:
        """Algorithm-3 inner step for the pair ``(g_i, g_j)``.

        Applies the pruning policy, performs the (possibly one-directional)
        comparison and updates ``state``.  Returns the raw outcome, or
        ``None`` when the pair was skipped entirely.  Callers should stop
        processing ``g_i`` when the outcome says it became strongly
        dominated (``d21_strong``) — and, under the safe policy, already
        when it is merely dominated.
        """
        if self.prune_policy == "paper":
            if state.is_strong(j):
                self._groups_skipped += 1
                return None
            need_forward = True
            need_backward = True
        else:
            # Safe policy: directions that can no longer change any verdict
            # are dropped instead of whole groups.
            need_forward = not state.is_dominated(j)
            need_backward = not state.is_dominated(i)
            if not (need_forward or need_backward):
                self._groups_skipped += 1
                return None

        outcome = self.comparator.compare(
            groups[i], groups[j],
            need_forward=need_forward,
            need_backward=need_backward,
        )
        if outcome.d12_strong:
            state.mark_strong(j)
        elif outcome.d12:
            state.mark_dominated(j)
        if outcome.d21_strong:
            state.mark_strong(i)
        elif outcome.d21:
            state.mark_dominated(i)
        return outcome
