"""Transitive aggregate skyline (Algorithm 3 of the paper).

Identical pair enumeration to the nested loop, but exploits weak
transitivity (Proposition 5): groups dominated at the boosted level γ̄
("strongly dominated") are skipped, because every group they γ̄-dominate is
guaranteed to be γ-dominated by their own dominator, which is still active.

Under ``prune_policy="safe"`` no candidate is skipped outright; instead a
group whose verdict is sealed only participates in the directions that can
still change someone's verdict (see base module docstring).
"""

from __future__ import annotations

from typing import List

from ..groups import Group
from .base import AggregateSkylineAlgorithm, GroupState

__all__ = ["TransitiveAlgorithm"]


class TransitiveAlgorithm(AggregateSkylineAlgorithm):
    """Algorithm 3: nested loop plus γ̄-based skipping."""

    name = "TR"

    def _run(self, groups: List[Group], state: GroupState) -> None:
        n = len(groups)
        for i in range(n):
            if self._skip_as_candidate(i, state):
                continue
            for j in range(i + 1, n):
                outcome = self._compare_pair(groups, i, j, state)
                if outcome is None:
                    continue
                if outcome.d21_strong and self.prune_policy == "paper":
                    # "end processing of g1" (Algorithm 3, line 19).  The
                    # safe policy keeps looping: the sealed candidate may
                    # still dominate later groups, which _compare_pair
                    # handles with cheap one-directional probes.
                    break
