"""Index + bounding-box aggregate skyline ("LO" in the paper's evaluation).

The same window-query driver as Algorithm 5, with the Section-3.3 internal
optimisation switched on: every group-vs-group comparison first consults the
MBB corners (Figure 9) — total domination is decided with zero record
comparisons, and otherwise records pre-classified by the corners (regions A
and C) are counted in bulk so only "region B" pairs reach the nested loop.
"""

from __future__ import annotations

from typing import Optional

from ..execution import ExecutionConfig
from ..gamma import GammaLike
from .indexed import IndexedAlgorithm

__all__ = ["IndexedBBoxAlgorithm"]


class IndexedBBoxAlgorithm(IndexedAlgorithm):
    """Algorithm 5 plus approximation by bounding boxes."""

    name = "LO"

    def __init__(
        self,
        gamma: GammaLike = 0.5,
        use_stopping_rule: bool = True,
        prune_policy: str = "paper",
        block_size: int = 1024,
        sort_key: str = "size_corner",
        index_backend: str = "rtree",
        grid_cells_per_dim: int = 8,
        execution: Optional[ExecutionConfig] = None,
    ):
        super().__init__(
            gamma,
            use_stopping_rule=use_stopping_rule,
            use_bbox=True,
            prune_policy=prune_policy,
            block_size=block_size,
            sort_key=sort_key,
            index_backend=index_backend,
            grid_cells_per_dim=grid_cells_per_dim,
            execution=execution,
        )
