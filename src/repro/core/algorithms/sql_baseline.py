"""Direct SQL implementation of the aggregate skyline (Algorithm 1).

The paper's baseline expresses the whole operator as one SQL query over a
self-join (run on sqlite in the paper's Figure 8); this module reproduces it
on the stdlib ``sqlite3``, generalised from the paper's 2-dimension example
to *d* dimensions and an arbitrary γ.

The paper's HAVING clause is ``1.0*count(*)/(X.num*Y.num) > .5``; to honour
Definition 3's ``p = 1 ∨ p > γ`` clause exactly (it matters at γ = 1) we add
``OR count(*) = X.num*Y.num``, and the ratio test is done with integer cross
multiplication so no floating-point division is involved.
"""

from __future__ import annotations

import sqlite3
import time
from fractions import Fraction
from typing import Hashable, List

from ..gamma import GammaLike, GammaThresholds
from ..groups import GroupedDataset
from ..result import AggregateSkylineResult, AlgorithmStats

__all__ = ["SqlBaselineAlgorithm", "build_skyline_sql"]


def build_skyline_sql(dimensions: int, gamma: Fraction) -> str:
    """The Algorithm-1 query for ``dimensions`` attributes ``a0..a{d-1}``.

    Returns the ``SELECT`` over table ``records(gid, num, a0, ..)`` whose
    result is the set of group ids *in* the γ-skyline.
    """
    if dimensions < 1:
        raise ValueError("need at least one skyline dimension")
    columns = [f"a{i}" for i in range(dimensions)]
    # Y dominates X: >= everywhere, > somewhere — expanded like the paper's
    # ((Y.votes > X.votes and Y.rank >= X.rank) or (...)).
    all_ge = " AND ".join(f"Y.{c} >= X.{c}" for c in columns)
    any_gt = " OR ".join(f"Y.{c} > X.{c}" for c in columns)
    dominance = f"({all_ge}) AND ({any_gt})"
    num, den = gamma.numerator, gamma.denominator
    having = (
        f"COUNT(*) * {den} > {num} * (X.num * Y.num)"
        f" OR COUNT(*) = X.num * Y.num"
    )
    return (
        "SELECT DISTINCT gid FROM records WHERE gid NOT IN (\n"
        "    SELECT X.gid\n"
        "    FROM records X, records Y\n"
        f"    WHERE X.gid != Y.gid AND {dominance}\n"
        "    GROUP BY X.gid, Y.gid\n"
        f"    HAVING {having}\n"
        ")"
    )


class SqlBaselineAlgorithm:
    """Runs Algorithm 1 on an in-memory sqlite database.

    Mirrors the :class:`AggregateSkylineAlgorithm` interface (``compute``)
    without inheriting from it — there are no comparator counters to track,
    the DBMS does all the work.
    """

    name = "SQL"

    def __init__(self, gamma: GammaLike = 0.5, create_indexes: bool = False):
        self.thresholds = GammaThresholds(gamma)
        self.create_indexes = create_indexes

    def compute(self, dataset: GroupedDataset) -> AggregateSkylineResult:
        connection = sqlite3.connect(":memory:")
        try:
            keys, elapsed = self._execute(connection, dataset)
        finally:
            connection.close()
        stats = AlgorithmStats(algorithm=self.name, elapsed_seconds=elapsed)
        return AggregateSkylineResult(
            keys=keys, gamma=float(self.thresholds.gamma), stats=stats
        )

    def _execute(self, connection: sqlite3.Connection, dataset: GroupedDataset):
        dimensions = dataset.dimensions
        columns = ", ".join(f"a{i} REAL" for i in range(dimensions))
        connection.execute(
            f"CREATE TABLE records (gid INTEGER, num INTEGER, {columns})"
        )
        rows = []
        for group in dataset:
            size = group.size
            for record in group.values:
                rows.append((group.index, size, *map(float, record)))
        placeholders = ", ".join("?" for _ in range(dimensions + 2))
        connection.executemany(
            f"INSERT INTO records VALUES ({placeholders})", rows
        )
        if self.create_indexes:
            connection.execute("CREATE INDEX idx_gid ON records(gid)")
        connection.commit()

        query = build_skyline_sql(dimensions, self.thresholds.gamma)
        start = time.perf_counter()
        surviving = {row[0] for row in connection.execute(query)}
        elapsed = time.perf_counter() - start

        keys: List[Hashable] = [
            group.key for group in dataset if group.index in surviving
        ]
        return keys, elapsed
