"""Adaptive aggregate skyline ("AD") — the paper's future-work direction.

The evaluation shows no single strategy wins everywhere: index-driven
window queries (IN/LO) dominate when groups are spatially separated, but
degrade when group MBBs overlap heavily (Figure 11) because the window
returns nearly every group while the index still costs its overhead.  The
concluding remarks call for "customized query optimization methods" for
such distributions.

This algorithm estimates the overlap regime from a sample of group-pair
MBB intersections and dispatches accordingly:

* low overlap  -> :class:`IndexedBBoxAlgorithm` (LO),
* high overlap -> :class:`SortedAlgorithm` (SI) with bbox counting on —
  no window queries, but all internal optimisations.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...parallel.partition import pair_from_index, sample_pair_indices
from ..gamma import GammaLike
from ..groups import Group
from .base import AggregateSkylineAlgorithm, GroupState
from .indexed_bbox import IndexedBBoxAlgorithm
from .sorted_access import SortedAlgorithm

__all__ = ["AdaptiveAlgorithm"]


def estimate_overlap(groups: List[Group], sample_pairs: int = 256,
                     seed: int = 0) -> float:
    """Fraction of sampled group pairs whose MBBs intersect.

    Pairs are sampled *without replacement* from the upper-triangular pair
    space (via :func:`repro.parallel.partition.sample_pair_indices`), so the
    probe budget is never wasted on duplicate pairs; when the budget covers
    the whole pair space the estimate is exact.  ``seed`` makes the estimate
    reproducible — :class:`AdaptiveAlgorithm` exposes it as a constructor
    parameter.
    """
    n = len(groups)
    if n < 2:
        return 0.0
    rng = np.random.default_rng(seed)
    indices = sample_pair_indices(n, sample_pairs, rng)
    hits = 0
    for k in indices:
        i, j = pair_from_index(k, n)
        if groups[i].bbox.intersects(groups[j].bbox):
            hits += 1
    return hits / len(indices)


class AdaptiveAlgorithm(AggregateSkylineAlgorithm):
    """Pick LO or SI per dataset based on estimated MBB overlap."""

    name = "AD"

    def __init__(
        self,
        gamma: GammaLike = 0.5,
        use_stopping_rule: bool = True,
        use_bbox: bool = True,
        prune_policy: str = "paper",
        block_size: int = 1024,
        overlap_threshold: float = 0.65,
        sample_pairs: int = 256,
        seed: int = 0,
    ):
        super().__init__(
            gamma,
            use_stopping_rule=use_stopping_rule,
            use_bbox=use_bbox,
            prune_policy=prune_policy,
            block_size=block_size,
        )
        if not 0.0 <= overlap_threshold <= 1.0:
            raise ValueError("overlap_threshold must lie in [0, 1]")
        self.overlap_threshold = overlap_threshold
        self.sample_pairs = sample_pairs
        #: Seed of the overlap estimator's pair sampling (reproducibility).
        self.seed = seed
        #: Set after each compute(): which strategy ran and why.
        self.chosen_strategy = ""
        self.estimated_overlap = 0.0

    def _run(self, groups: List[Group], state: GroupState) -> None:
        if self._dataset is not None:
            # The probe is deterministic, so repeated computes over the
            # same dataset content reuse the memoised estimate through the
            # derived-artifact cache instead of re-sampling pairs.
            from .. import artifacts

            self.estimated_overlap = artifacts.overlap_estimate(
                self._dataset, sample_pairs=self.sample_pairs, seed=self.seed
            )
        else:
            self.estimated_overlap = estimate_overlap(
                groups, sample_pairs=self.sample_pairs, seed=self.seed
            )
        if self.estimated_overlap >= self.overlap_threshold:
            delegate: AggregateSkylineAlgorithm = SortedAlgorithm(
                self.thresholds.gamma,
                use_stopping_rule=self.comparator.use_stopping_rule,
                use_bbox=True,
                prune_policy=self.prune_policy,
                block_size=self.comparator.block_size,
            )
            self.chosen_strategy = "SI"
        else:
            delegate = IndexedBBoxAlgorithm(
                self.thresholds.gamma,
                use_stopping_rule=self.comparator.use_stopping_rule,
                prune_policy=self.prune_policy,
                block_size=self.comparator.block_size,
            )
            self.chosen_strategy = "LO"
        # Share this run's detailed observability instruments (bound by
        # compute() under the "AD" label) so the delegate's per-comparison
        # work is recorded too.
        delegate.comparator._obs_pairs_hist = self.comparator._obs_pairs_hist
        delegate.comparator._obs_exit_counter = (
            self.comparator._obs_exit_counter
        )
        delegate.comparator._obs_shortcut_counter = (
            self.comparator._obs_shortcut_counter
        )
        # Run the delegate against the same state, then snapshot its counter
        # *values* so the reported statistics reflect the work actually done.
        # (Adopting the delegate's comparator/counters by reference — as an
        # earlier version did — permanently swapped this instance's
        # configuration for the delegate's: a second compute() then ran with
        # the delegate's ``use_bbox``/``block_size`` and double-counted the
        # previous run's statistics.)
        # Hand the delegate the in-flight dataset so it can reach the
        # columnar corner matrices and the derived-artifact cache.
        delegate._dataset = self._dataset
        try:
            delegate._run(groups, state)
        finally:
            delegate._dataset = None
            delegate.comparator.unbind_metrics()
        self.comparator.absorb(
            comparisons=delegate.comparator.comparisons,
            pairs_examined=delegate.comparator.pairs_examined,
            bbox_shortcuts=delegate.comparator.bbox_shortcuts,
            stopping_rule_exits=delegate.comparator.stopping_rule_exits,
        )
        self._groups_skipped += delegate._groups_skipped
        self._index_candidates += delegate._index_candidates
