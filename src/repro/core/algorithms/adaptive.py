"""Adaptive aggregate skyline ("AD") — the paper's future-work direction.

The evaluation shows no single strategy wins everywhere: index-driven
window queries (IN/LO) dominate when groups are spatially separated, but
degrade when group MBBs overlap heavily (Figure 11) because the window
returns nearly every group while the index still costs its overhead.  The
concluding remarks call for "customized query optimization methods" for
such distributions.

This algorithm estimates the overlap regime from a sample of group-pair
MBB intersections and dispatches accordingly:

* low overlap  -> :class:`IndexedBBoxAlgorithm` (LO),
* high overlap -> :class:`SortedAlgorithm` (SI) with bbox counting on —
  no window queries, but all internal optimisations.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..gamma import GammaLike
from ..groups import Group
from .base import AggregateSkylineAlgorithm, GroupState
from .indexed_bbox import IndexedBBoxAlgorithm
from .sorted_access import SortedAlgorithm

__all__ = ["AdaptiveAlgorithm"]


def estimate_overlap(groups: List[Group], sample_pairs: int = 256,
                     seed: int = 0) -> float:
    """Fraction of sampled group pairs whose MBBs intersect."""
    n = len(groups)
    if n < 2:
        return 0.0
    rng = np.random.default_rng(seed)
    hits = 0
    samples = min(sample_pairs, n * (n - 1) // 2)
    for _ in range(samples):
        i, j = rng.choice(n, size=2, replace=False)
        if groups[int(i)].bbox.intersects(groups[int(j)].bbox):
            hits += 1
    return hits / samples


class AdaptiveAlgorithm(AggregateSkylineAlgorithm):
    """Pick LO or SI per dataset based on estimated MBB overlap."""

    name = "AD"

    def __init__(
        self,
        gamma: GammaLike = 0.5,
        use_stopping_rule: bool = True,
        use_bbox: bool = True,
        prune_policy: str = "paper",
        block_size: int = 1024,
        overlap_threshold: float = 0.65,
        sample_pairs: int = 256,
    ):
        super().__init__(
            gamma,
            use_stopping_rule=use_stopping_rule,
            use_bbox=use_bbox,
            prune_policy=prune_policy,
            block_size=block_size,
        )
        if not 0.0 <= overlap_threshold <= 1.0:
            raise ValueError("overlap_threshold must lie in [0, 1]")
        self.overlap_threshold = overlap_threshold
        self.sample_pairs = sample_pairs
        #: Set after each compute(): which strategy ran and why.
        self.chosen_strategy = ""
        self.estimated_overlap = 0.0

    def _run(self, groups: List[Group], state: GroupState) -> None:
        self.estimated_overlap = estimate_overlap(
            groups, sample_pairs=self.sample_pairs
        )
        if self.estimated_overlap >= self.overlap_threshold:
            delegate: AggregateSkylineAlgorithm = SortedAlgorithm(
                self.thresholds.gamma,
                use_stopping_rule=self.comparator.use_stopping_rule,
                use_bbox=True,
                prune_policy=self.prune_policy,
                block_size=self.comparator.block_size,
            )
            self.chosen_strategy = "SI"
        else:
            delegate = IndexedBBoxAlgorithm(
                self.thresholds.gamma,
                use_stopping_rule=self.comparator.use_stopping_rule,
                prune_policy=self.prune_policy,
                block_size=self.comparator.block_size,
            )
            self.chosen_strategy = "LO"
        # Run the delegate against the same state, then adopt its counters
        # so the reported statistics reflect the work actually done.
        delegate._run(groups, state)
        self.comparator = delegate.comparator
        self._groups_skipped = delegate._groups_skipped
        self._index_candidates = delegate._index_candidates
