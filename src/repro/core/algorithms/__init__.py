"""Aggregate-skyline algorithms (Section 3 of the paper).

The registry maps the paper's evaluation names to implementations:

======  =======================================================
``NL``  Nested loop with stop condition (Algorithm 2)
``TR``  Transitive, weak-transitivity pruning (Algorithm 3)
``SI``  Sorted access (Algorithm 4 + Section 3.4 global opt.)
``IN``  Spatial-index window queries (Algorithm 5)
``LO``  IN plus bounding-box approximation (Section 3.3)
``SQL`` Direct SQL implementation on sqlite (Algorithm 1)
``AD``  Adaptive LO/SI dispatch by estimated overlap (extension)
``PAR`` Parallel chunked nested loop on a worker pool (extension)
======  =======================================================
"""

from __future__ import annotations

from typing import Optional, Union

from ..execution import ExecutionConfig, coerce_execution, normalize_options, suggest
from ..gamma import GammaLike
from .adaptive import AdaptiveAlgorithm
from .base import AggregateSkylineAlgorithm, GroupState, PRUNE_POLICIES
from .indexed import IndexedAlgorithm
from .indexed_bbox import IndexedBBoxAlgorithm
from .nested_loop import NestedLoopAlgorithm
from .parallel import ParallelSkylineAlgorithm
from .sorted_access import SortedAlgorithm
from .sql_baseline import SqlBaselineAlgorithm, build_skyline_sql
from .transitive import TransitiveAlgorithm

__all__ = [
    "AggregateSkylineAlgorithm",
    "GroupState",
    "PRUNE_POLICIES",
    "NestedLoopAlgorithm",
    "AdaptiveAlgorithm",
    "ParallelSkylineAlgorithm",
    "TransitiveAlgorithm",
    "SortedAlgorithm",
    "IndexedAlgorithm",
    "IndexedBBoxAlgorithm",
    "SqlBaselineAlgorithm",
    "build_skyline_sql",
    "ALGORITHMS",
    "make_algorithm",
]

ALGORITHMS = {
    "NL": NestedLoopAlgorithm,
    "AD": AdaptiveAlgorithm,
    "TR": TransitiveAlgorithm,
    "SI": SortedAlgorithm,
    "IN": IndexedAlgorithm,
    "LO": IndexedBBoxAlgorithm,
    "SQL": SqlBaselineAlgorithm,
    "PAR": ParallelSkylineAlgorithm,
}


def make_algorithm(
    name: str,
    gamma: GammaLike = 0.5,
    execution: Optional[ExecutionConfig] = None,
    **options,
) -> Union[AggregateSkylineAlgorithm, SqlBaselineAlgorithm]:
    """Instantiate an algorithm by its paper name (case-insensitive).

    This is the single validation point for algorithm options:

    * *execution* — an :class:`~repro.core.execution.ExecutionConfig`
      (or a mapping / ``"workers=4,scheduler=stealing"`` spec string)
      describing how supporting algorithms (``PAR``, ``IN``, ``LO``)
      run on the process pool.  Passing one to an algorithm that does
      not support pooled execution raises :class:`ValueError`.
    * legacy execution keys in *options* (``workers``, ``scheduler``,
      ``shm``, ``exchange_interval``, ``chunk_size``, ``pool_timeout``)
      are lifted into an :class:`ExecutionConfig` with a single
      :class:`DeprecationWarning`; an explicit *execution* wins.
    * unknown option names raise :class:`ValueError` with a
      did-you-mean suggestion instead of a bare ``TypeError``.
    """
    key = name.strip().upper()
    if key not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
            + suggest(key, ALGORITHMS)
        )
    cls = ALGORITHMS[key]
    execution = coerce_execution(execution)
    options, execution = normalize_options(key, cls, options, execution)
    if getattr(cls, "supports_execution", False):
        if execution is not None:
            options["execution"] = execution
    elif execution is not None:
        raise ValueError(
            f"algorithm {key!r} does not accept an execution config; only"
            " pool-backed algorithms (PAR, IN, LO) do"
        )
    return cls(gamma, **options)
