"""Nested Loop aggregate skyline (Algorithm 2 of the paper).

The exhaustive baseline: every unordered pair of groups is compared once (in
both directions) and the dominated side is marked.  With the stopping rule
enabled (the paper's evaluated "NL with stop condition") individual pair
comparisons terminate early, but no group comparison is ever skipped — the
result is therefore always the exact Definition-2 aggregate skyline and
serves as the correctness oracle for the optimised algorithms.
"""

from __future__ import annotations

from typing import List

from ..groups import Group
from .base import AggregateSkylineAlgorithm, GroupState

__all__ = ["NestedLoopAlgorithm"]


class NestedLoopAlgorithm(AggregateSkylineAlgorithm):
    """Algorithm 2: compare all pairs of groups, both directions."""

    name = "NL"

    def _run(self, groups: List[Group], state: GroupState) -> None:
        n = len(groups)
        for i in range(n):
            for j in range(i + 1, n):
                outcome = self.comparator.compare(groups[i], groups[j])
                if outcome.d12_strong:
                    state.mark_strong(j)
                elif outcome.d12:
                    state.mark_dominated(j)
                if outcome.d21_strong:
                    state.mark_strong(i)
                elif outcome.d21:
                    state.mark_dominated(i)
