"""Indexed aggregate skyline (Algorithm 5 of the paper, "IN").

Group MBB *max corners* go into a spatial index.  When a group ``g1`` is
polled, only the groups returned by the window query over the space that
dominates ``g1``'s *min corner* — i.e. groups whose best record could
dominate some record of ``g1`` — are compared against it.  This is sound:
if ``s > r`` for some ``s ∈ g2``, ``r ∈ g1``, then componentwise
``g2.max >= s >= r >= g1.min``, so ``g2``'s max corner lies in the window
``[g1.min, +inf)``.

Under the safe policy every group's verdict is produced by its *own* window
loop over all potential dominators (none skipped), so a polled group whose
verdict is already sealed can be skipped entirely without affecting others.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...index.grid import GridIndex
from ...index.rtree import Rect, RTree
from ...obs import metrics as obs_metrics
from ...obs import tracing as obs_tracing
from ..gamma import GammaLike
from ..groups import Group
from .base import AggregateSkylineAlgorithm, GroupState
from .sorted_access import SORT_KEYS

__all__ = ["IndexedAlgorithm"]

INDEX_BACKENDS = ("rtree", "grid")


class IndexedAlgorithm(AggregateSkylineAlgorithm):
    """Algorithm 5: window queries restrict the groups compared."""

    name = "IN"

    def __init__(
        self,
        gamma: GammaLike = 0.5,
        use_stopping_rule: bool = True,
        use_bbox: bool = False,
        prune_policy: str = "paper",
        block_size: int = 1024,
        sort_key: str = "size_corner",
        index_backend: str = "rtree",
        grid_cells_per_dim: int = 8,
    ):
        super().__init__(
            gamma,
            use_stopping_rule=use_stopping_rule,
            use_bbox=use_bbox,
            prune_policy=prune_policy,
            block_size=block_size,
        )
        if sort_key not in SORT_KEYS:
            raise ValueError(f"unknown sort_key {sort_key!r}")
        if index_backend not in INDEX_BACKENDS:
            raise ValueError(
                f"index_backend must be one of {INDEX_BACKENDS}, got {index_backend!r}"
            )
        self.sort_key = SORT_KEYS[sort_key]
        self.index_backend = index_backend
        self.grid_cells_per_dim = grid_cells_per_dim

    _verdicts_are_independent = True

    def _build_index(self, groups: List[Group]):
        if self.index_backend == "rtree":
            return RTree.bulk_load(
                (Rect.point(group.bbox.max_corner), group.index)
                for group in groups
            )
        corners = np.array([group.bbox.max_corner for group in groups])
        index = GridIndex(
            corners.min(axis=0),
            corners.max(axis=0),
            cells_per_dim=self.grid_cells_per_dim,
        )
        for group in groups:
            index.insert_point(group.bbox.max_corner, group.index)
        return index

    def _run(self, groups: List[Group], state: GroupState) -> None:
        if not groups:
            return
        tracer = obs_tracing.get_tracer()
        with tracer.span(
            "index.build", backend=self.index_backend, groups=len(groups)
        ):
            index = self._build_index(groups)
        dimensions = groups[0].dimensions
        upper = np.full(dimensions, np.inf)

        order = sorted(range(len(groups)), key=lambda i: self.sort_key(groups[i]))
        for i in order:
            if self._skip_as_candidate(i, state):
                continue
            g1 = groups[i]
            candidates = index.search_window(g1.bbox.min_corner, upper)
            self._index_candidates += len(candidates)
            for j in candidates:
                if j == i:
                    continue
                outcome = self._compare_pair(groups, i, j, state)
                if outcome is None:
                    continue
                if outcome.d21 or outcome.d21_strong:
                    # g1's verdict is sealed; under both policies its window
                    # loop may stop (paper: Algorithm 3 line 19 for strong;
                    # stopping on a mere γ-domination is also faithful here
                    # because in Algorithm 5 g1's remaining comparisons only
                    # serve g1's own verdict plus forward marks that the
                    # other groups' own window queries will redo anyway).
                    if self.prune_policy == "safe" or outcome.d21_strong:
                        break
        self._flush_index_obs(index, tracer)
        self._final_sweep(groups, state)

    def _flush_index_obs(self, index, tracer) -> None:
        """Record window-query counters on the current span and registry."""
        queries = getattr(index, "window_queries", 0)
        candidates = getattr(index, "candidates_returned", 0)
        span = tracer.current_span()
        if span.is_recording:
            span.set_attribute("index_backend", self.index_backend)
            span.set_attribute("index_window_queries", queries)
            span.set_attribute("index_window_candidates", candidates)
        registry = obs_metrics.get_registry()
        labels = {"backend": self.index_backend, "algorithm": self.name}
        registry.counter(
            "index_window_queries_total",
            "Window queries issued by index-driven algorithms",
            ("backend", "algorithm"),
        ).inc(queries, **labels)
        registry.counter(
            "index_window_candidates_total",
            "Candidate groups returned by index window queries",
            ("backend", "algorithm"),
        ).inc(candidates, **labels)

    def _final_sweep(self, groups: List[Group], state: GroupState) -> None:
        """Hook for subclasses; the plain indexed algorithm needs nothing."""
