"""Indexed aggregate skyline (Algorithm 5 of the paper, "IN").

Group MBB *max corners* go into a spatial index.  When a group ``g1`` is
polled, only the groups returned by the window query over the space that
dominates ``g1``'s *min corner* — i.e. groups whose best record could
dominate some record of ``g1`` — are compared against it.  This is sound:
if ``s > r`` for some ``s ∈ g2``, ``r ∈ g1``, then componentwise
``g2.max >= s >= r >= g1.min``, so ``g2``'s max corner lies in the window
``[g1.min, +inf)``.

Under the safe policy every group's verdict is produced by its *own* window
loop over all potential dominators (none skipped), so a polled group whose
verdict is already sealed can be skipped entirely without affecting others.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ...index.grid import GridIndex
from ...index.rtree import FlatRTree
from .. import artifacts
from ...obs import metrics as obs_metrics
from ...obs import tracing as obs_tracing
from ...parallel.executor import (
    PoolRun,
    WorkerConfig,
    apply_verdicts,
    compare_candidate_span,
    run_spans,
)
from ...parallel.partition import chunk_ranges
from ...parallel.scheduler import guided_spans
from ..execution import ExecutionConfig, coerce_execution
from ..gamma import GammaLike
from ..groups import Group
from ..result import AlgorithmStats
from .base import AggregateSkylineAlgorithm, GroupState
from .pooled import (
    absorb_outcomes,
    flush_pool_metrics,
    pool_progress_callback,
    pool_run_kwargs,
    record_chunk_events,
)
from .sorted_access import SORT_KEYS

__all__ = ["IndexedAlgorithm"]

INDEX_BACKENDS = ("rtree", "grid")


class IndexedAlgorithm(AggregateSkylineAlgorithm):
    """Algorithm 5: window queries restrict the groups compared."""

    name = "IN"

    #: Accepts ``execution=ExecutionConfig(...)`` (see ``core.execution``).
    supports_execution = True

    def __init__(
        self,
        gamma: GammaLike = 0.5,
        use_stopping_rule: bool = True,
        use_bbox: bool = False,
        prune_policy: str = "paper",
        block_size: int = 1024,
        sort_key: str = "size_corner",
        index_backend: str = "rtree",
        grid_cells_per_dim: int = 8,
        execution: Optional[ExecutionConfig] = None,
    ):
        super().__init__(
            gamma,
            use_stopping_rule=use_stopping_rule,
            use_bbox=use_bbox,
            prune_policy=prune_policy,
            block_size=block_size,
        )
        if sort_key not in SORT_KEYS:
            raise ValueError(f"unknown sort_key {sort_key!r}")
        if index_backend not in INDEX_BACKENDS:
            raise ValueError(
                f"index_backend must be one of {INDEX_BACKENDS}, got {index_backend!r}"
            )
        self.sort_key = SORT_KEYS[sort_key]
        self.sort_key_name = sort_key
        self.index_backend = index_backend
        self.grid_cells_per_dim = grid_cells_per_dim
        #: ``None`` (or ``workers=None``) keeps the serial Algorithm-5 loop
        #: untouched; a config with ``workers`` set runs the parallel
        #: candidate-slab path (see :meth:`_run_parallel`).
        self.execution = coerce_execution(execution)
        if (
            self.execution is not None
            and self.execution.parallel
            and self.index_backend != "rtree"
        ):
            raise ValueError(
                "parallel IN/LO requires index_backend='rtree' (the flat"
                " R-tree is the only index that ships to pool workers)"
            )
        #: Per-chunk worker statistics of the last compute() (pooled runs).
        self.worker_stats: List[AlgorithmStats] = []
        #: Full PoolRun of the last pooled compute(); None otherwise.
        self.last_pool_run: Optional[PoolRun] = None
        #: Span executor override (see ParallelSkylineAlgorithm): a warm
        #: engine swaps in its persistent pool; ``None`` means one-shot
        #: :func:`~repro.parallel.executor.run_spans`.
        self._pool_runner = None

    _verdicts_are_independent = True

    def _build_index(self, groups: List[Group]):
        if self.index_backend == "rtree":
            dataset = self._dataset
            if dataset is not None and len(dataset) == len(groups):
                # Columnar fast path: STR bulk-load straight from the
                # dataset's precomputed max-corner matrix (no Group /
                # Rect objects), with the packed arrays memoised in the
                # content-keyed derived-artifact cache.  Bit-identical to
                # the object-based build (see FlatRTree.bulk_load_points).
                return artifacts.packed_rtree(dataset)
            corners = np.array([group.bbox.max_corner for group in groups])
            items = np.array([group.index for group in groups], dtype=np.int64)
            return FlatRTree.bulk_load_points(corners, items)
        corners = np.array([group.bbox.max_corner for group in groups])
        index = GridIndex(
            corners.min(axis=0),
            corners.max(axis=0),
            cells_per_dim=self.grid_cells_per_dim,
        )
        for group in groups:
            index.insert_point(group.bbox.max_corner, group.index)
        return index

    def _sorted_order(self, groups: List[Group]) -> List[int]:
        """Candidate access order, memoised content-wise when possible."""
        dataset = self._dataset
        if dataset is not None and len(dataset) == len(groups):
            return list(
                artifacts.sort_order(
                    dataset, self.sort_key_name, self.sort_key
                )
            )
        return sorted(range(len(groups)), key=lambda i: self.sort_key(groups[i]))

    def _run(self, groups: List[Group], state: GroupState) -> None:
        self.worker_stats = []
        self.last_pool_run = None
        if not groups:
            return
        if self.execution is not None and self.execution.parallel:
            self._run_parallel(groups, state)
            return
        tracer = obs_tracing.get_tracer()
        with tracer.span(
            "index.build", backend=self.index_backend, groups=len(groups)
        ):
            index = self._build_index(groups)
        dimensions = groups[0].dimensions
        upper = np.full(dimensions, np.inf)

        order = self._sorted_order(groups)
        for i in order:
            if self._skip_as_candidate(i, state):
                continue
            g1 = groups[i]
            candidates = index.search_window(g1.bbox.min_corner, upper)
            self._index_candidates += len(candidates)
            for j in candidates:
                if j == i:
                    continue
                outcome = self._compare_pair(groups, i, j, state)
                if outcome is None:
                    continue
                if outcome.d21 or outcome.d21_strong:
                    # g1's verdict is sealed; under both policies its window
                    # loop may stop (paper: Algorithm 3 line 19 for strong;
                    # stopping on a mere γ-domination is also faithful here
                    # because in Algorithm 5 g1's remaining comparisons only
                    # serve g1's own verdict plus forward marks that the
                    # other groups' own window queries will redo anyway).
                    if self.prune_policy == "safe" or outcome.d21_strong:
                        break
        self._flush_index_obs(index, tracer)
        self._final_sweep(groups, state)

    # ------------------------------------------------------------------
    # parallel candidate-slab path
    # ------------------------------------------------------------------

    def _run_parallel(self, groups: List[Group], state: GroupState) -> None:
        """Parallel Algorithm 5: candidate slabs against a shared index.

        The STR-bulk-loaded R-tree is built once and frozen to a
        :class:`~repro.index.rtree.FlatRTree`; workers reconstruct it
        read-only from shipped flat arrays (shared memory on spawn
        platforms, inherited pages under fork).  Each worker takes a slab
        of candidate groups and runs the window-query + γ-comparison
        inner loop under the *independent-candidate* discipline (see
        :func:`repro.parallel.executor.compare_candidate_span`): every
        group's verdict is a pure function of its own deterministic
        window loop, so results **and all work counters** are identical
        for any worker count, chunking and steal order — and exactly the
        Definition-2 skyline.
        """
        execution = self.execution
        assert execution is not None
        tracer = obs_tracing.get_tracer()
        with tracer.span(
            "index.build", backend=self.index_backend, groups=len(groups)
        ):
            index = self._build_index(groups).pack()
        n = len(groups)
        order = self._sorted_order(groups)
        workers = execution.resolve_workers()
        scheduler = execution.scheduler
        span_attrs = dict(workers=workers, candidates=n, scheduler=scheduler)

        if workers == 1:
            # Inline degenerate case: same kernel and index, no pool.
            with tracer.span("parallel.chunks", **span_attrs):
                verdicts, _, index_candidates = compare_candidate_span(
                    groups, self.comparator, index, order, (0, n)
                )
                apply_verdicts(state, verdicts)
                self._index_candidates += index_candidates
            self._flush_index_counts(
                index.window_queries, index.candidates_returned, tracer
            )
            self._final_sweep(groups, state)
            return

        min_chunk = execution.chunk_size
        if min_chunk is None:
            min_chunk = max(1, n // (workers * 16))
        if scheduler == "stealing":
            spans = guided_spans(n, workers, min_chunk=min_chunk)
        else:
            spans = chunk_ranges(n, workers * 4)
        config = WorkerConfig(
            gamma=self.thresholds.gamma,
            use_stopping_rule=self.comparator.use_stopping_rule,
            use_bbox=self.comparator.use_bbox,
            block_size=self.comparator.block_size,
            prune_policy=self.prune_policy,
        )
        with tracer.span("parallel.chunks", **span_attrs) as chunk_span:
            runner = self._pool_runner or run_spans
            run = runner(
                groups,
                config,
                spans,
                workers,
                kind="candidates",
                index=index,
                order=order,
                progress=pool_progress_callback(self),
                **pool_run_kwargs(execution),
            )
            record_chunk_events(chunk_span, run)
        with tracer.span("parallel.merge", chunks=len(run.outcomes)):
            self.last_pool_run = run
            for outcome in run.outcomes:
                apply_verdicts(state, outcome.verdicts)
            absorb_outcomes(self, run.outcomes, self.worker_stats)
            flush_pool_metrics(self.name, scheduler, run)
            self._flush_index_counts(
                sum(outcome.window_queries for outcome in run.outcomes),
                sum(outcome.index_candidates for outcome in run.outcomes),
                tracer,
            )
        self._final_sweep(groups, state)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def _flush_index_obs(self, index, tracer) -> None:
        """Record window-query counters on the current span and registry."""
        self._flush_index_counts(
            getattr(index, "window_queries", 0),
            getattr(index, "candidates_returned", 0),
            tracer,
        )

    def _flush_index_counts(self, queries: int, candidates: int, tracer) -> None:
        span = tracer.current_span()
        if span.is_recording:
            span.set_attribute("index_backend", self.index_backend)
            span.set_attribute("index_window_queries", queries)
            span.set_attribute("index_window_candidates", candidates)
        registry = obs_metrics.get_registry()
        labels = {"backend": self.index_backend, "algorithm": self.name}
        registry.counter(
            "index_window_queries_total",
            "Window queries issued by index-driven algorithms",
            ("backend", "algorithm"),
        ).inc(queries, **labels)
        registry.counter(
            "index_window_candidates_total",
            "Candidate groups returned by index window queries",
            ("backend", "algorithm"),
        ).inc(candidates, **labels)

    def _final_sweep(self, groups: List[Group], state: GroupState) -> None:
        """Hook for subclasses; the plain indexed algorithm needs nothing."""
