"""Sorted aggregate skyline (Algorithm 4 of the paper, "SI").

Groups are polled from a priority queue so that likely dominators — and,
for the global optimisation of Section 3.4, *cheap* (small) groups — are
processed first; the inner loop is Algorithm 3's.

Sort keys
---------
``"corner_distance"``
    Algorithm 4's key: the sum of the distances between the origin and the
    min and max corners of the group's MBB, descending (groups far from the
    origin in the *higher is better* space tend to dominate and prune).
``"size_corner"`` (default)
    The evaluation section's key ("sorting on the size and distance from the
    origin of the minimum corner"): group cardinality ascending first — the
    Section-3.4 global optimisation, comparisons involving small groups are
    quadratically cheaper — with corner distance descending as tie-break.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from .. import artifacts
from ..gamma import GammaLike
from ..groups import Group
from .base import AggregateSkylineAlgorithm, GroupState

__all__ = ["SortedAlgorithm", "SORT_KEYS"]


def _corner_distance(group: Group) -> float:
    box = group.bbox
    return float(
        np.linalg.norm(box.min_corner) + np.linalg.norm(box.max_corner)
    )


def _key_corner_distance(group: Group) -> Tuple:
    return (-_corner_distance(group),)


def _key_size_corner(group: Group) -> Tuple:
    return (group.size, -float(np.linalg.norm(group.bbox.min_corner)))


SORT_KEYS: dict = {
    "corner_distance": _key_corner_distance,
    "size_corner": _key_size_corner,
}


class SortedAlgorithm(AggregateSkylineAlgorithm):
    """Algorithm 4: priority-queue access order over Algorithm 3's loop."""

    name = "SI"

    def __init__(
        self,
        gamma: GammaLike = 0.5,
        use_stopping_rule: bool = True,
        use_bbox: bool = False,
        prune_policy: str = "paper",
        block_size: int = 1024,
        sort_key: str = "size_corner",
    ):
        super().__init__(
            gamma,
            use_stopping_rule=use_stopping_rule,
            use_bbox=use_bbox,
            prune_policy=prune_policy,
            block_size=block_size,
        )
        if sort_key not in SORT_KEYS:
            raise ValueError(
                f"sort_key must be one of {sorted(SORT_KEYS)}, got {sort_key!r}"
            )
        self.sort_key: Callable[[Group], Tuple] = SORT_KEYS[sort_key]
        self.sort_key_name = sort_key

    def _run(self, groups: List[Group], state: GroupState) -> None:
        # A static sort is equivalent to draining the paper's priority queue.
        # The order is memoised in the content-keyed derived-artifact cache
        # when the groups come from a columnar dataset (the common case).
        dataset = self._dataset
        if dataset is not None and len(dataset) == len(groups):
            order: List[int] = list(
                artifacts.sort_order(dataset, self.sort_key_name, self.sort_key)
            )
        else:
            order = sorted(
                range(len(groups)), key=lambda i: self.sort_key(groups[i])
            )
        for rank, i in enumerate(order):
            if self._skip_as_candidate(i, state):
                continue
            # Each unordered pair is compared once: the polled group meets
            # only the groups still in the queue (Algorithm 3's g1 <= g2
            # skip, transported to queue order).
            for j in order[rank + 1 :]:
                outcome = self._compare_pair(groups, i, j, state)
                if outcome is None:
                    continue
                if outcome.d21_strong and self.prune_policy == "paper":
                    break
