"""Skyline layers: ranking groups by iterative skyline peeling.

The classic "onion" technique transplanted to groups: layer 1 is the
aggregate skyline; remove it, recompute on the remainder for layer 2, and
so on.  The layer index is a coarse quality rank that — unlike the raw
skyline — covers *every* group, which applications often want (e.g. a
full leaderboard, tiered pricing).

One group-specific wrinkle: because γ-dominance admits cycles (see
docs/theory.md), a non-empty remainder can have an *empty* skyline and
the peeling stalls.  The fallback peels by domination degree instead:
the remaining groups with the smallest ``m(R) = max p(S > R)`` — the
least-dominated members of the entanglement — form the next layer.
:class:`LayeredResult.cycle_layer` records the first layer produced that
way (``None`` when peeling never stalled).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Union

from .algorithms import make_algorithm
from .dominance import Direction
from .gamma import GammaLike
from .groups import GroupedDataset
from .api import _coerce_dataset

__all__ = ["LayeredResult", "skyline_layers"]


@dataclass
class LayeredResult:
    """Groups partitioned into skyline layers (1 = undominated)."""

    layers: List[List[Hashable]] = field(default_factory=list)
    #: Index (1-based) of a final layer formed by a domination cycle,
    #: or None if peeling terminated normally.
    cycle_layer: Optional[int] = None

    def layer_of(self, key: Hashable) -> int:
        """1-based layer index of ``key``."""
        for depth, layer in enumerate(self.layers, start=1):
            if key in layer:
                return depth
        raise KeyError(f"unknown group {key!r}")

    def ranking(self) -> Dict[Hashable, int]:
        """``{key: layer index}`` for every group."""
        return {
            key: depth
            for depth, layer in enumerate(self.layers, start=1)
            for key in layer
        }

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)


def skyline_layers(
    groups: Union[GroupedDataset, Mapping[Hashable, Iterable]],
    gamma: GammaLike = 0.5,
    algorithm: str = "LO",
    directions: Union[None, str, Direction, list, tuple] = None,
    max_layers: Optional[int] = None,
    **algorithm_options,
) -> LayeredResult:
    """Peel aggregate skylines until every group is ranked.

    ``max_layers`` truncates the peeling; any remaining groups are then
    lumped into one final layer (without a cycle flag).
    """
    dataset = _coerce_dataset(groups, directions)
    remaining: Dict[Hashable, object] = {
        group.key: dataset.original_values(group.key) for group in dataset
    }
    result = LayeredResult()
    while remaining:
        if max_layers is not None and len(result.layers) >= max_layers:
            result.layers.append(list(remaining))
            break
        subset = GroupedDataset(remaining, directions=dataset.directions)
        engine = make_algorithm(algorithm, gamma, **algorithm_options)
        layer = engine.compute(subset).keys
        if not layer:
            # Domination cycle: no group is undominated.  Peel the
            # least-dominated groups (smallest degree) instead.
            from .ranking import compute_gamma_profile

            profile = compute_gamma_profile(subset)
            degrees = {key: profile.degree(key) for key in remaining}
            best = min(degrees.values())
            layer = [key for key, degree in degrees.items() if degree == best]
            if result.cycle_layer is None:
                result.cycle_layer = len(result.layers) + 1
        result.layers.append(list(layer))
        for key in layer:
            del remaining[key]
    return result
