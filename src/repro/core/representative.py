"""Representative and top-k dominating groups.

Two companions of the aggregate skyline, transplanted from the record-level
literature the paper cites:

* **Top-k dominating groups** (cf. the "k most representative skyline" of
  reference [14]): rank groups by how many *other* groups they γ-dominate
  and return the best k.  Unlike the skyline itself this is a ranking, so
  it stays informative even when (almost) every group is incomparable —
  e.g. the paper's 8-attribute NBA queries, where the skyline contains
  nearly everything.
* **Representative skyline**: choose k *skyline* groups that together
  γ-dominate as many non-skyline groups as possible (greedy max-coverage,
  the standard (1 − 1/e) approximation).

Both build on exact pairwise probabilities and reuse the Figure-9 corner
shortcuts through :class:`~repro.core.comparator.DirectionalProbe`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Set, Tuple, Union

from .api import _coerce_dataset
from .comparator import DirectionalProbe
from .dominance import Direction
from .gamma import GammaLike, GammaThresholds, dominance_holds
from .groups import GroupedDataset

__all__ = [
    "domination_counts",
    "top_k_dominating_groups",
    "representative_skyline",
]

GroupsLike = Union[GroupedDataset, Mapping[Hashable, Iterable]]


def _dominates_map(
    dataset: GroupedDataset, thresholds: GammaThresholds
) -> Dict[Hashable, Set[Hashable]]:
    """``{S: set of groups S γ-dominates}`` with corner pruning."""
    dominated: Dict[Hashable, Set[Hashable]] = {
        group.key: set() for group in dataset
    }
    groups = dataset.groups
    for s in groups:
        for r in groups:
            if s.key == r.key:
                continue
            probe = DirectionalProbe(s, r, use_bbox=True)
            lower, upper = probe.bounds()
            if lower == upper:
                p = lower
            elif dominance_holds(
                lower.numerator, lower.denominator, thresholds.gamma
            ):
                dominated[s.key].add(r.key)
                continue
            elif not dominance_holds(
                upper.numerator, upper.denominator, thresholds.gamma
            ):
                continue
            else:
                p = probe.exact()
            if dominance_holds(p.numerator, p.denominator, thresholds.gamma):
                dominated[s.key].add(r.key)
    return dominated


def domination_counts(
    groups: GroupsLike,
    gamma: GammaLike = 0.5,
    directions: Union[None, str, Direction, list, tuple] = None,
) -> Dict[Hashable, int]:
    """How many other groups each group γ-dominates."""
    dataset = _coerce_dataset(groups, directions)
    thresholds = GammaThresholds(gamma)
    return {
        key: len(victims)
        for key, victims in _dominates_map(dataset, thresholds).items()
    }


def top_k_dominating_groups(
    groups: GroupsLike,
    k: int,
    gamma: GammaLike = 0.5,
    directions: Union[None, str, Direction, list, tuple] = None,
) -> List[Tuple[Hashable, int]]:
    """The k groups γ-dominating the most other groups.

    Returns ``(key, dominated_count)`` pairs, best first; ties broken by
    input order (stable).
    """
    if k < 1:
        raise ValueError("k must be positive")
    counts = domination_counts(groups, gamma, directions)
    order = sorted(
        counts.items(), key=lambda item: -item[1]
    )
    return order[:k]


def representative_skyline(
    groups: GroupsLike,
    k: int,
    gamma: GammaLike = 0.5,
    directions: Union[None, str, Direction, list, tuple] = None,
) -> List[Hashable]:
    """k skyline groups covering (γ-dominating) the most excluded groups.

    Greedy max-coverage over the skyline members: repeatedly pick the
    skyline group dominating the largest number of not-yet-covered groups.
    If the skyline has at most k members, all of them are returned.
    """
    if k < 1:
        raise ValueError("k must be positive")
    dataset = _coerce_dataset(groups, directions)
    thresholds = GammaThresholds(gamma)
    dominates = _dominates_map(dataset, thresholds)

    every_key = [group.key for group in dataset]
    dominated_by_someone = {
        key
        for key in every_key
        if any(key in victims for victims in dominates.values())
    }
    skyline = [key for key in every_key if key not in dominated_by_someone]
    if len(skyline) <= k:
        return skyline

    chosen: List[Hashable] = []
    covered: Set[Hashable] = set()
    remaining = list(skyline)
    while len(chosen) < k and remaining:
        best = max(
            remaining,
            key=lambda key: len(dominates[key] - covered),
        )
        chosen.append(best)
        covered |= dominates[best]
        remaining.remove(best)
    return chosen
