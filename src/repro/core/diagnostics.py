"""Dataset diagnostics and algorithm suggestion.

The evaluation shows the winning algorithm depends on the data's shape:
group overlap (Figure 11), group-size distribution (Figure 13) and group
count all matter.  :func:`dataset_statistics` measures those shape
parameters; :func:`suggest_algorithm` turns them into a recommendation
(the same regime analysis the `AD` algorithm applies internally, exposed
for humans).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..obs.metrics import get_registry
from . import artifacts
from .groups import GroupedDataset

__all__ = ["DatasetStatistics", "dataset_statistics", "suggest_algorithm"]


@dataclass
class DatasetStatistics:
    """Shape parameters of a grouped dataset."""

    groups: int
    records: int
    dimensions: int
    min_group_size: int
    median_group_size: float
    max_group_size: int
    size_skew: float          # max / median; > ~5 means heavy tail
    overlap: float            # sampled fraction of intersecting MBB pairs
    pair_budget: int          # upper bound on record pairs (Eq. 3/4)

    def describe(self) -> str:
        return (
            f"{self.groups} groups, {self.records} records,"
            f" d={self.dimensions}; group sizes"
            f" {self.min_group_size}/{self.median_group_size:g}/"
            f"{self.max_group_size} (min/median/max,"
            f" skew {self.size_skew:.1f}); MBB overlap"
            f" {self.overlap:.0%}; worst-case record pairs"
            f" {self.pair_budget}"
        )


def dataset_statistics(
    dataset: GroupedDataset, overlap_samples: int = 256
) -> DatasetStatistics:
    """Measure the shape parameters the evaluation section sweeps.

    Raises ``ValueError`` on datasets with no groups or with empty groups
    (their zero sizes would poison the size-skew ratio and the pair
    budget).  The pair budget is also published to the process-global
    metrics registry as the ``skyline_dataset_pair_budget`` gauge.
    """
    sizes = np.array([group.size for group in dataset])
    if sizes.size == 0:
        raise ValueError("dataset_statistics needs at least one group")
    if int(sizes.min()) == 0:
        empty = [group.key for group in dataset if group.size == 0]
        raise ValueError(
            f"dataset contains empty groups {empty!r}; drop them before"
            " computing shape statistics"
        )
    median = float(np.median(sizes))
    pair_budget = int(
        (int(sizes.sum()) ** 2 - int((sizes**2).sum())) // 2
    )
    get_registry().gauge(
        "skyline_dataset_pair_budget",
        "Worst-case record pairs of the last diagnosed dataset (Eq. 3/4)",
    ).set(pair_budget)
    return DatasetStatistics(
        groups=len(dataset),
        records=int(sizes.sum()),
        dimensions=dataset.dimensions,
        min_group_size=int(sizes.min()),
        median_group_size=median,
        max_group_size=int(sizes.max()),
        size_skew=float(sizes.max() / max(median, 1.0)),
        # Content-memoised through the artifact cache: `aggskyline stats`
        # after a run (or vice versa) reuses the same probe.
        overlap=artifacts.overlap_estimate(
            dataset, sample_pairs=overlap_samples
        ),
        pair_budget=pair_budget,
    )


def suggest_algorithm(
    dataset: GroupedDataset, overlap_samples: int = 256
) -> str:
    """Recommend an algorithm name for this dataset's shape.

    Heuristics distilled from the reproduction's own measurements
    (EXPERIMENTS.md):

    * tiny problems — ``NL`` (overheads dominate);
    * heavy MBB overlap — ``SI`` (window queries return everything,
      Figure 11's crossover);
    * heavy-tailed group sizes — ``SI`` profits from small-groups-first,
      but the index methods still win — ``LO``;
    * otherwise — ``LO``.
    """
    stats = dataset_statistics(dataset, overlap_samples=overlap_samples)
    if stats.pair_budget <= 50_000:
        return "NL"
    if stats.overlap >= 0.65:
        return "SI"
    return "LO"
