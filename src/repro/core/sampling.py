"""Sampling-based approximation of γ-dominance.

For very large groups the exact pair count is quadratic even with the
bounding-box and Fenwick shortcuts.  ``p(S > R)`` is a population mean
over the pair universe, so Monte-Carlo sampling estimates it with a
Hoeffding guarantee: with ``n`` sampled pairs, the estimate is within
``ε = sqrt(ln(2/δ) / (2n))`` of the truth with probability ``1 − δ``.

:func:`approximate_aggregate_skyline` uses the estimates conservatively:
a group is only *excluded* when the estimate clears γ by the confidence
margin, so (with probability ≥ 1 − δ per comparison) the result is a
superset of the exact skyline — the same one-sided contract as the paper
mode's pruning.  Borderline comparisons (estimate within ε of γ) fall
back to the exact counter.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, List, Mapping, Optional, Union

import numpy as np

from .api import _coerce_dataset
from .dominance import Direction
from .gamma import GammaLike, GammaThresholds, dominance_holds, dominance_probability
from .groups import Group, GroupedDataset
from .result import AggregateSkylineResult, AlgorithmStats, Timer

__all__ = [
    "approximate_dominance_probability",
    "hoeffding_epsilon",
    "approximate_aggregate_skyline",
]


def hoeffding_epsilon(samples: int, delta: float = 0.05) -> float:
    """Two-sided Hoeffding half-width for a [0,1] mean estimate."""
    if samples < 1:
        raise ValueError("samples must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    return math.sqrt(math.log(2.0 / delta) / (2.0 * samples))


def approximate_dominance_probability(
    s: Union[Group, np.ndarray],
    r: Union[Group, np.ndarray],
    samples: int = 1024,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Monte-Carlo estimate of ``p(S > R)`` from ``samples`` random pairs."""
    if samples < 1:
        raise ValueError("samples must be positive")
    s_values = s.values if isinstance(s, Group) else np.asarray(s, dtype=float)
    r_values = r.values if isinstance(r, Group) else np.asarray(r, dtype=float)
    generator = rng if rng is not None else np.random.default_rng()
    s_idx = generator.integers(0, s_values.shape[0], size=samples)
    r_idx = generator.integers(0, r_values.shape[0], size=samples)
    chosen_s = s_values[s_idx]
    chosen_r = r_values[r_idx]
    ge = np.all(chosen_s >= chosen_r, axis=1)
    gt = np.any(chosen_s > chosen_r, axis=1)
    return float(np.count_nonzero(ge & gt)) / samples


def approximate_aggregate_skyline(
    groups: Union[GroupedDataset, Mapping[Hashable, Iterable]],
    gamma: GammaLike = 0.5,
    samples: int = 1024,
    delta: float = 0.05,
    seed: int = 0,
    directions: Union[None, str, Direction, list, tuple] = None,
) -> AggregateSkylineResult:
    """Sampled aggregate skyline with conservative exclusions.

    Small pair universes (at most ``samples`` pairs) and borderline
    estimates are resolved exactly, so accuracy degrades only where
    sampling genuinely saves work.
    """
    dataset = _coerce_dataset(groups, directions)
    thresholds = GammaThresholds(gamma)
    gamma_float = float(thresholds.gamma)
    epsilon = hoeffding_epsilon(samples, delta)
    rng = np.random.default_rng(seed)

    exact_fallbacks = 0
    sampled = 0
    with Timer() as timer:
        group_list = dataset.groups
        dominated = {g.key: False for g in group_list}
        for target in group_list:
            for rival in group_list:
                if rival.key == target.key or dominated[target.key]:
                    continue
                universe = rival.size * target.size
                if universe <= samples:
                    p = dominance_probability(rival, target)
                    exact_fallbacks += 1
                    if dominance_holds(
                        p.numerator, p.denominator, thresholds.gamma
                    ):
                        dominated[target.key] = True
                    continue
                sampled += 1
                estimate = approximate_dominance_probability(
                    rival, target, samples=samples, rng=rng
                )
                if estimate > gamma_float + epsilon:
                    dominated[target.key] = True
                elif estimate > gamma_float - epsilon:
                    # Borderline: resolve exactly.
                    exact_fallbacks += 1
                    p = dominance_probability(rival, target)
                    if dominance_holds(
                        p.numerator, p.denominator, thresholds.gamma
                    ):
                        dominated[target.key] = True
        keys = [g.key for g in group_list if not dominated[g.key]]

    stats = AlgorithmStats(
        algorithm="SAMPLE",
        group_comparisons=sampled + exact_fallbacks,
        record_pairs_examined=sampled * samples,
        elapsed_seconds=timer.elapsed,
    )
    return AggregateSkylineResult(
        keys=keys, gamma=gamma_float, stats=stats
    )
