"""High-level public API of the aggregate-skyline library.

Typical usage::

    from repro import aggregate_skyline

    result = aggregate_skyline(
        {"Tarantino": [[557, 9.0], [313, 8.2]],
         "Wiseau": [[10, 3.2]]},
        directions=["max", "max"],
        gamma=0.5,
    )
    print(result.keys)           # ['Tarantino']

or, starting from flat records with a grouping column::

    result = aggregate_skyline_from_records(
        records=[[557, 9.0], [313, 8.2], [10, 3.2]],
        keys=["Tarantino", "Tarantino", "Wiseau"],
    )
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..obs import runlog as obs_runlog
from .algorithms import make_algorithm
from .dominance import Direction
from .execution import ExecutionConfig
from .gamma import GammaLike, GammaThresholds, dominance_probability
from .groups import GroupedDataset
from .result import AggregateSkylineResult

__all__ = [
    "aggregate_skyline",
    "aggregate_skyline_from_records",
    "ExecutionConfig",
    "GammaProfile",
    "gamma_profile",
]


def _coerce_dataset(
    groups: Union[GroupedDataset, Mapping[Hashable, Iterable]],
    directions: Union[None, str, Direction, Sequence],
) -> GroupedDataset:
    if isinstance(groups, GroupedDataset):
        if directions is not None:
            raise ValueError(
                "directions are fixed at GroupedDataset construction;"
                " do not pass them again"
            )
        return groups
    return GroupedDataset(groups, directions=directions)


def aggregate_skyline(
    groups: Union[GroupedDataset, Mapping[Hashable, Iterable]],
    directions: Union[None, str, Direction, Sequence] = None,
    gamma: GammaLike = 0.5,
    algorithm: str = "LO",
    execution: Optional[ExecutionConfig] = None,
    **options,
) -> AggregateSkylineResult:
    """Compute the aggregate skyline of a set of groups (Definition 2).

    Parameters
    ----------
    groups:
        Either a prepared :class:`GroupedDataset` or a mapping
        ``{group key: array-like of records}``.
    directions:
        Per-dimension ``"max"``/``"min"`` preferences (default: all max,
        the paper's convention).  Only valid with a mapping input.
    gamma:
        Dominance threshold of Definition 3; must be ``>= .5``
        (Proposition 1).  ``.5`` is the paper's parameter-free default and
        the most selective choice; larger values admit more groups.
    algorithm:
        ``"NL"``, ``"TR"``, ``"SI"``, ``"IN"``, ``"LO"`` (default),
        ``"SQL"`` — or ``"auto"`` to let the plan optimizer pick from
        dataset statistics (see ``docs/planner.md``; the decision is
        recorded on ``result.plan``).  An explicit name is forced through
        the same pipeline bit-identically.
    execution:
        An :class:`ExecutionConfig` (or mapping / ``"k=v,..."`` spec)
        selecting the pooled execution path of ``PAR`` / ``IN`` / ``LO``:
        worker count, chunk scheduler, shared-memory shipping.  ``None``
        (default) keeps the serial code path untouched.
    options:
        Forwarded to the algorithm constructor (e.g. ``prune_policy``,
        ``use_stopping_rule``, ``sort_key``, ``index_backend``).

    Notes
    -----
    This is the one-shot convenience wrapper over an *ephemeral*
    :class:`repro.engine.SkylineEngine` session: one query, then every
    resource is torn down.  For repeated queries against the same data,
    hold a :class:`~repro.engine.SkylineEngine` open instead — it ships
    the dataset to a persistent worker pool once and reuses it (see
    ``docs/engine.md``).
    """
    dataset = _coerce_dataset(groups, directions)
    if obs_runlog.get_runlog().enabled:
        obs_runlog.emit(
            "api_call",
            api="aggregate_skyline",
            algorithm=str(algorithm),
            groups=len(dataset),
            gamma=str(gamma),
            execution=(
                execution.to_dict()
                if isinstance(execution, ExecutionConfig)
                else execution
            ),
        )
    # Imported here: repro.engine itself imports from repro.core.
    from ..engine import SkylineEngine

    with SkylineEngine.ephemeral(execution) as session:
        return session.query(
            dataset, gamma=gamma, algorithm=algorithm,
            execution=execution, **options,
        )


def aggregate_skyline_from_records(
    records: Iterable[Sequence[float]],
    keys: Iterable[Hashable],
    directions: Union[None, str, Direction, Sequence] = None,
    gamma: GammaLike = 0.5,
    algorithm: str = "LO",
    execution: Optional[ExecutionConfig] = None,
    **options,
) -> AggregateSkylineResult:
    """GROUP BY ``keys`` then compute the aggregate skyline of the groups."""
    dataset = GroupedDataset.from_records(records, keys, directions=directions)
    return aggregate_skyline(
        dataset, gamma=gamma, algorithm=algorithm, execution=execution, **options
    )


class GammaProfile:
    """Per-group domination degrees across all γ (Section 2.2).

    For every group ``R`` stores ``m(R) = max over S != R of p(S > R)``.
    ``R`` belongs to the γ-skyline iff no ``p`` equals 1 and ``m(R) <= γ``,
    so ``m(R)`` (clamped to ``.5``) is the minimum γ at which ``R`` enters
    the result — the sort key for the paper's "return groups ranked by the
    minimum γ for which they are in the skyline" mode.
    """

    def __init__(self, degrees: Mapping[Hashable, Fraction], strictly_dominated: set):
        self._degrees = dict(degrees)
        self._strict = set(strictly_dominated)

    def degree(self, key: Hashable) -> Fraction:
        """``m(R)``: the strongest domination suffered by group ``key``."""
        return self._degrees[key]

    def minimal_gamma(self, key: Hashable) -> Optional[Fraction]:
        """Smallest valid γ admitting ``key``, or ``None`` if never admitted.

        A group fully dominated by some other group (``p = 1``) is excluded
        at every γ (Definition 3's ``p = 1`` clause).
        """
        if key in self._strict:
            return None
        return max(Fraction(1, 2), self._degrees[key])

    def skyline_at(self, gamma: GammaLike) -> List[Hashable]:
        """Group keys in the aggregate skyline for this γ."""
        thresholds = GammaThresholds(gamma)
        result = []
        for key, degree in self._degrees.items():
            if key in self._strict:
                continue
            if degree > thresholds.gamma:
                continue
            result.append(key)
        return result

    def ranked(self) -> List[Tuple[Hashable, Optional[Fraction]]]:
        """All groups sorted by minimal admitting γ (never-admitted last)."""
        entries = [(key, self.minimal_gamma(key)) for key in self._degrees]
        return sorted(
            entries,
            key=lambda pair: (pair[1] is None, pair[1] if pair[1] is not None else 0),
        )

    def __len__(self) -> int:
        return len(self._degrees)


def gamma_profile(
    groups: Union[GroupedDataset, Mapping[Hashable, Iterable]],
    directions: Union[None, str, Direction, Sequence] = None,
) -> GammaProfile:
    """Exact domination degrees between all pairs of groups.

    Quadratic in groups and record pairs — meant for analysis and for the
    "γ as a result-size knob" workflow of Section 2.2, not for the hot path.
    """
    dataset = _coerce_dataset(groups, directions)
    degrees = {}
    strict = set()
    group_list = dataset.groups
    for target in group_list:
        worst = Fraction(0)
        for other in group_list:
            if other.key == target.key:
                continue
            p = dominance_probability(other, target)
            if p == 1:
                strict.add(target.key)
            if p > worst:
                worst = p
        degrees[target.key] = worst
    return GammaProfile(degrees, strict)
