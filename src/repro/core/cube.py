"""Aggregate-skyline cube: the operator across grouping granularities.

The paper's related work (MOOLAP [2], aggregate skylines for online users
[1], skylining data-cube measures [22]) studies skyline-flavoured analysis
over OLAP-style groupings.  This module computes the aggregate skyline for
*every combination* of candidate grouping attributes — the paper's own
Figure 14 evaluates exactly such a spread (by team, by year, by team+year,
by player) by hand; the cube automates it:

    cube = skyline_cube(nba, ["team", "year"], measures=["pts", "reb"])
    cube[("team",)]            # best teams
    cube[("team", "year")]     # best rosters

Results are exact per grouping; granularities are independent problems
(a group's verdict at one granularity implies nothing at another — the
paper's Figure 4 discussion is precisely about that), so no unsound
sharing is attempted.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..relational.operators import grouped_dataset_from_table
from ..relational.table import Table
from .algorithms import make_algorithm
from .gamma import GammaLike
from .result import AggregateSkylineResult

__all__ = ["SkylineCube", "skyline_cube"]


class SkylineCube:
    """Results of one cube computation, keyed by grouping-attribute tuple."""

    def __init__(
        self,
        results: Dict[Tuple[str, ...], AggregateSkylineResult],
        group_counts: Dict[Tuple[str, ...], int],
        gamma: float,
    ):
        self._results = dict(results)
        self._group_counts = dict(group_counts)
        self.gamma = gamma

    def groupings(self) -> List[Tuple[str, ...]]:
        """All computed groupings, coarsest (fewest attributes) first."""
        return sorted(self._results, key=lambda g: (len(g), g))

    def __getitem__(self, grouping: Sequence[str]) -> AggregateSkylineResult:
        return self._results[tuple(grouping)]

    def __contains__(self, grouping: Sequence[str]) -> bool:
        return tuple(grouping) in self._results

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[Tuple[str, ...]]:
        return iter(self.groupings())

    def group_count(self, grouping: Sequence[str]) -> int:
        """How many groups existed at this granularity."""
        return self._group_counts[tuple(grouping)]

    def summary_table(self) -> Table:
        """One row per granularity: groups, survivors, work, time."""
        rows = []
        for grouping in self.groupings():
            result = self._results[grouping]
            rows.append(
                (
                    "+".join(grouping),
                    self._group_counts[grouping],
                    len(result),
                    result.stats.group_comparisons,
                    result.stats.record_pairs_examined,
                    round(result.stats.elapsed_seconds, 4),
                )
            )
        return Table(
            ["grouping", "groups", "skyline", "group cmp",
             "record pairs", "time (s)"],
            rows,
        )


def skyline_cube(
    table: Table,
    grouping_attributes: Sequence[str],
    measures: Sequence[str],
    gamma: GammaLike = 0.5,
    algorithm: str = "LO",
    directions=None,
    min_attributes: int = 1,
    max_attributes: Optional[int] = None,
    **algorithm_options,
) -> SkylineCube:
    """Aggregate skylines for every grouping-attribute combination.

    ``min_attributes``/``max_attributes`` bound the lattice levels (default
    all non-empty combinations).  Measures and directions are shared by
    every granularity; algorithm options are forwarded unchanged.
    """
    attributes = list(dict.fromkeys(grouping_attributes))
    if not attributes:
        raise ValueError("at least one grouping attribute is required")
    for attribute in attributes:
        table.column_position(attribute)  # raises on unknown columns
    if min_attributes < 1:
        raise ValueError("min_attributes must be at least 1")
    top = len(attributes) if max_attributes is None else max_attributes
    if top < min_attributes:
        raise ValueError("max_attributes must be >= min_attributes")

    results: Dict[Tuple[str, ...], AggregateSkylineResult] = {}
    counts: Dict[Tuple[str, ...], int] = {}
    gamma_value: Optional[float] = None
    for level in range(min_attributes, top + 1):
        for combo in combinations(attributes, level):
            dataset = grouped_dataset_from_table(
                table, list(combo), measures, directions=directions
            )
            engine = make_algorithm(algorithm, gamma, **algorithm_options)
            result = engine.compute(dataset)
            results[combo] = result
            counts[combo] = len(dataset)
            gamma_value = result.gamma
    assert gamma_value is not None
    return SkylineCube(results, counts, gamma_value)
