"""Derived-artifact cache keyed by dataset content fingerprints.

Running the paper's experiment harness rebuilds the same derived structures
over and over: every ``IN``/``LO`` instantiation STR-packs the same R-tree
over the same max corners, every ``SI``/``IN`` run re-sorts the same groups
by the same key, repetition after repetition.  With the columnar backbone
each :class:`~repro.core.groups.GroupedDataset` carries a cheap content
:meth:`~repro.core.groups.GroupedDataset.fingerprint`, so those artifacts
can be memoised process-wide and shared across algorithm instances.

Entries are keyed by ``(fingerprint, kind, params)``; because the
fingerprint covers the full record matrix, any logically different dataset
— including a new snapshot produced by
:class:`~repro.core.incremental.IncrementalAggregateSkyline` after a
mutation (its ``version`` counter bumps and ``to_dataset`` yields new
content) — misses naturally, which *is* the invalidation story.  The cache
stores plain data (flat array dicts, index-order tuples); live objects with
per-run counters (e.g. :class:`~repro.index.rtree.FlatRTree`) are
re-hydrated per use so observability counters start at zero.

Hit/miss/eviction counters are flushed into the observability registry
(``artifact_cache_{hits,misses,evictions}_total`` by artifact kind), so a
``run_algorithms`` sweep makes the reuse visible in ``repro metrics``.

Disable with ``REPRO_ARTIFACT_CACHE=0`` (or :func:`configure`) to force
every build; the default keeps a small LRU per process.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..obs import runlog as obs_runlog

__all__ = [
    "ArtifactCache",
    "get_cache",
    "set_cache",
    "configure",
    "cache_enabled",
    "packed_rtree",
    "sort_order",
    "overlap_estimate",
]

ENV_VAR = "REPRO_ARTIFACT_CACHE"
_FALSE_VALUES = {"0", "false", "off", "no", ""}

CacheKey = Tuple[str, str, Tuple]


class ArtifactCache:
    """A thread-safe LRU of derived artifacts, keyed by content.

    ``maxsize`` bounds the number of entries (not bytes); the artifacts
    cached here (flat R-tree arrays, sort orders) are small compared to the
    datasets they derive from, and an experiment sweep touches only a
    handful of distinct datasets at a time.
    """

    def __init__(self, maxsize: int = 64):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._store: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def get_or_build(
        self,
        dataset,
        kind: str,
        params: Tuple[Hashable, ...],
        builder: Callable[[], Any],
    ) -> Any:
        """The artifact ``kind``/``params`` for ``dataset``, built at most once.

        ``builder`` runs outside the lock (it can be expensive); a racing
        duplicate build is tolerated — last writer wins, both get correct
        values.
        """
        key: CacheKey = (dataset.fingerprint(), kind, tuple(params))
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.hits += 1
                value = self._store[key]
                self._observe(kind, hit=True)
                return value
        value = builder()
        with self._lock:
            self.misses += 1
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)
                self.evictions += 1
                self._observe_eviction(kind)
        self._observe(kind, hit=False)
        return value

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._store),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    # ------------------------------------------------------------------

    @staticmethod
    def _observe(kind: str, hit: bool) -> None:
        registry = obs_metrics.get_registry()
        name = (
            "artifact_cache_hits_total" if hit else "artifact_cache_misses_total"
        )
        help_text = (
            "Derived-artifact cache hits (index/order rebuilt from cache)"
            if hit
            else "Derived-artifact cache misses (artifact built from scratch)"
        )
        registry.counter(name, help_text, ("kind",)).inc(1, kind=kind)
        obs_runlog.emit("cache_hit" if hit else "cache_miss", kind=kind)

    @staticmethod
    def _observe_eviction(kind: str) -> None:
        registry = obs_metrics.get_registry()
        registry.counter(
            "artifact_cache_evictions_total",
            "Derived-artifact cache LRU evictions",
            ("kind",),
        ).inc(1, kind=kind)


# ----------------------------------------------------------------------
# process-wide cache
# ----------------------------------------------------------------------

_cache: Optional[ArtifactCache] = None
_enabled: Optional[bool] = None
_state_lock = threading.Lock()


def cache_enabled() -> bool:
    """Is the process-wide cache on?  (env ``REPRO_ARTIFACT_CACHE``)."""
    global _enabled
    with _state_lock:
        if _enabled is None:
            raw = os.environ.get(ENV_VAR)
            _enabled = (
                True if raw is None else raw.strip().lower() not in _FALSE_VALUES
            )
        return _enabled


def configure(enabled: bool) -> None:
    """Force the cache on/off for this process (overrides the env var)."""
    global _enabled
    with _state_lock:
        _enabled = bool(enabled)


def get_cache() -> ArtifactCache:
    """The process-wide cache (created on first use)."""
    global _cache
    with _state_lock:
        if _cache is None:
            _cache = ArtifactCache()
        return _cache


def set_cache(cache: Optional[ArtifactCache]) -> None:
    """Swap the process-wide cache (tests use this for isolation)."""
    global _cache
    with _state_lock:
        _cache = cache


# ----------------------------------------------------------------------
# artifact builders used by the algorithms
# ----------------------------------------------------------------------


def packed_rtree(dataset, max_entries: int = 16):
    """A queryable :class:`~repro.index.rtree.FlatRTree` over the dataset's
    max corners, with the packed arrays cached by content.

    The cache stores the flat arrays (plain ndarrays); every call
    re-hydrates a fresh ``FlatRTree`` via ``from_arrays`` — zero-copy on
    the arrays, but with per-instance query counters starting at zero so
    observability and :class:`~repro.core.result.AlgorithmStats` stay
    bit-identical to an uncached build.
    """
    from ..index.rtree import FlatRTree

    def build():
        return FlatRTree.bulk_load_points(
            dataset.max_corners, max_entries=max_entries
        ).arrays()

    if not cache_enabled():
        return FlatRTree.from_arrays(build())
    arrays = get_cache().get_or_build(
        dataset, "flat_rtree", ("max_corners", max_entries), build
    )
    return FlatRTree.from_arrays(arrays)


def sort_order(dataset, key_name: str, key_func) -> Tuple[int, ...]:
    """The candidate-access order ``sorted(range(G), key=key_func(group))``,
    cached by content and key name (used by SI/IN/LO)."""

    def build() -> Tuple[int, ...]:
        groups = dataset.groups
        return tuple(
            sorted(range(len(groups)), key=lambda i: key_func(groups[i]))
        )

    if not cache_enabled():
        return build()
    return get_cache().get_or_build(dataset, "sort_order", (key_name,), build)


def overlap_estimate(
    dataset, sample_pairs: int = 256, seed: int = 0
) -> float:
    """The sampled MBB-overlap fraction of the dataset, memoised by content.

    Wraps :func:`repro.core.algorithms.adaptive.estimate_overlap` (the
    probe is deterministic given ``sample_pairs`` and ``seed``, so caching
    it is sound) and shares one entry between every consumer: the ``AD``
    algorithm's dispatch, :func:`repro.core.diagnostics.dataset_statistics`
    and the plan optimizer's statistics source all stop re-sampling pairs
    on repeated computes over the same dataset content.
    """

    def build() -> float:
        from .algorithms.adaptive import estimate_overlap as probe

        return probe(dataset.groups, sample_pairs=sample_pairs, seed=seed)

    if not cache_enabled():
        return build()
    return get_cache().get_or_build(
        dataset, "overlap_estimate", (sample_pairs, seed), build
    )
