"""Explanations for aggregate-skyline membership.

"Why is my group not in the result?" is the first question every skyline
user asks.  :func:`explain` answers it with the full evidence: every group
that γ-dominates the target, the exact probability, and — for groups in
the result — the strongest challenger that failed to reach γ.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Iterable, List, Mapping, Optional, Union

from .api import _coerce_dataset
from .dominance import Direction
from .gamma import GammaLike, GammaThresholds, dominance_holds, dominance_probability
from .groups import GroupedDataset

__all__ = ["Domination", "Explanation", "explain"]


@dataclass(frozen=True)
class Domination:
    """One group's domination evidence against the target."""

    dominator: Hashable
    probability: Fraction
    is_total: bool          # p = 1 (strict group dominance)

    def __str__(self) -> str:  # pragma: no cover - presentation
        kind = "totally dominates" if self.is_total else "dominates"
        return (
            f"{self.dominator!r} {kind} the target with"
            f" p = {float(self.probability):.4f}"
        )


@dataclass
class Explanation:
    """Why a group is in (or out of) the γ-skyline."""

    key: Hashable
    gamma: float
    in_skyline: bool
    #: Groups whose domination excludes the target (empty if in skyline).
    dominators: List[Domination]
    #: The strongest challenger overall (None for a singleton universe).
    strongest_challenger: Optional[Domination]
    #: Smallest γ that would admit the target (None: never admitted).
    minimal_gamma: Optional[Fraction]

    def summary(self) -> str:
        """One-paragraph human-readable explanation."""
        if self.in_skyline:
            if self.strongest_challenger is None:
                return f"{self.key!r} is in the skyline (no other groups)."
            challenger = self.strongest_challenger
            return (
                f"{self.key!r} is in the gamma={self.gamma:g} skyline:"
                f" the strongest challenger, {challenger.dominator!r},"
                f" only reaches p = {float(challenger.probability):.4f}"
                f" <= gamma."
            )
        lines = [
            f"{self.key!r} is NOT in the gamma={self.gamma:g} skyline;"
            f" dominated by {len(self.dominators)} group(s):"
        ]
        for domination in self.dominators:
            lines.append(f"  - {domination}")
        if self.minimal_gamma is None:
            lines.append(
                "  it is totally dominated (p = 1): no gamma admits it."
            )
        else:
            lines.append(
                f"  raising gamma to >= {float(self.minimal_gamma):.4f}"
                " would admit it."
            )
        return "\n".join(lines)


def explain(
    groups: Union[GroupedDataset, Mapping[Hashable, Iterable]],
    key: Hashable,
    gamma: GammaLike = 0.5,
    directions: Union[None, str, Direction, list, tuple] = None,
) -> Explanation:
    """Full membership evidence for one group (exact probabilities)."""
    dataset = _coerce_dataset(groups, directions)
    if key not in dataset:
        raise KeyError(f"unknown group {key!r}")
    thresholds = GammaThresholds(gamma)
    target = dataset[key]

    dominators: List[Domination] = []
    strongest: Optional[Domination] = None
    worst = Fraction(0)
    totally_dominated = False
    for other in dataset:
        if other.key == key:
            continue
        p = dominance_probability(other, target)
        evidence = Domination(other.key, p, is_total=(p == 1))
        if strongest is None or p > strongest.probability:
            strongest = evidence
        if p > worst:
            worst = p
        if p == 1:
            totally_dominated = True
        if dominance_holds(p.numerator, p.denominator, thresholds.gamma):
            dominators.append(evidence)

    dominators.sort(key=lambda d: -d.probability)
    minimal: Optional[Fraction]
    if totally_dominated:
        minimal = None
    else:
        minimal = max(Fraction(1, 2), worst)
    return Explanation(
        key=key,
        gamma=float(thresholds.gamma),
        in_skyline=not dominators,
        dominators=dominators,
        strongest_challenger=strongest,
        minimal_gamma=minimal,
    )
