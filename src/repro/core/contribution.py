"""Per-record contribution analysis: which stars carry the galaxy.

A group's fate under γ-dominance is decided by its records' pairwise wins
and losses.  This module attributes them: for a chosen group, each record
gets an **offense** score (how many rival-group records it dominates — its
contribution to the group's own dominations) and a **liability** score
(how many rival records dominate it — its contribution to the group being
dominated).  Sorting by these answers the practical follow-ups to a
skyline verdict: *which movies make Tarantino undominatable?  Which
seasons drag the franchise down?*

The removal analysis goes one step further: for each record, the exact
``p(S > R)`` against the strongest rival if that one record were deleted —
the actionable version of the paper's stability-to-updates property.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from .api import _coerce_dataset
from .dominance import Direction
from .gamma import GammaLike, GammaThresholds, dominance_holds
from .groups import GroupedDataset

__all__ = ["RecordContribution", "record_contributions", "removal_impact"]


@dataclass(frozen=True)
class RecordContribution:
    """Offense/liability of one record of the analysed group."""

    index: int                     # row index within the group
    record: Tuple[float, ...]      # original-orientation values
    offense: int                   # rival records it dominates
    liability: int                 # rival records dominating it

    @property
    def net(self) -> int:
        return self.offense - self.liability


def record_contributions(
    groups: Union[GroupedDataset, Mapping[Hashable, Iterable]],
    key: Hashable,
    directions: Union[None, str, Direction, list, tuple] = None,
) -> List[RecordContribution]:
    """Offense and liability per record of group ``key``, best-net first."""
    dataset = _coerce_dataset(groups, directions)
    if key not in dataset:
        raise KeyError(f"unknown group {key!r}")
    target = dataset[key]
    rivals = [g for g in dataset if g.key != key]
    if rivals:
        rival_matrix = np.vstack([g.values for g in rivals])
    else:
        rival_matrix = np.empty((0, target.dimensions))

    original = dataset.original_values(key)
    contributions = []
    for index, row in enumerate(target.values):
        if rival_matrix.shape[0]:
            ge = np.all(row >= rival_matrix, axis=1)
            gt = np.any(row > rival_matrix, axis=1)
            offense = int(np.count_nonzero(ge & gt))
            ge_r = np.all(rival_matrix >= row, axis=1)
            gt_r = np.any(rival_matrix > row, axis=1)
            liability = int(np.count_nonzero(ge_r & gt_r))
        else:
            offense = liability = 0
        contributions.append(
            RecordContribution(
                index=index,
                record=tuple(float(v) for v in original[index]),
                offense=offense,
                liability=liability,
            )
        )
    contributions.sort(key=lambda c: (-c.net, c.index))
    return contributions


def removal_impact(
    groups: Union[GroupedDataset, Mapping[Hashable, Iterable]],
    key: Hashable,
    gamma: GammaLike = 0.5,
    directions: Union[None, str, Direction, list, tuple] = None,
) -> List[Tuple[int, Fraction, bool]]:
    """Effect of deleting each single record of group ``key``.

    Returns, per record index, the *worst* domination probability any
    rival would then achieve against the group, and whether the group
    would be in the γ-skyline after that removal.  Groups of one record
    cannot lose it (a group must stay non-empty); they return an empty
    list.
    """
    dataset = _coerce_dataset(groups, directions)
    if key not in dataset:
        raise KeyError(f"unknown group {key!r}")
    thresholds = GammaThresholds(gamma)
    target = dataset[key]
    if target.size <= 1:
        return []
    rivals = [g for g in dataset if g.key != key]

    results: List[Tuple[int, Fraction, bool]] = []
    for index in range(target.size):
        remaining = np.delete(target.values, index, axis=0)
        worst = Fraction(0)
        survives = True
        for rival in rivals:
            ge = np.all(
                rival.values[:, None, :] >= remaining[None, :, :], axis=2
            )
            gt = np.any(
                rival.values[:, None, :] > remaining[None, :, :], axis=2
            )
            count = int(np.count_nonzero(ge & gt))
            p = Fraction(count, rival.size * remaining.shape[0])
            if p > worst:
                worst = p
            if dominance_holds(p.numerator, p.denominator, thresholds.gamma):
                survives = False
        results.append((index, worst, survives))
    return results
