"""Groups of records and grouped datasets.

The aggregate skyline operates on a *partition* of the record universe into
groups (Table 1 of the paper: ``U_g``).  A :class:`Group` wraps the numeric
payload of one group (records x dimensions, already normalised to *higher is
better*) together with its key and its minimum bounding box, which several
algorithms use for pruning (Section 3.3, Figure 9).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .dominance import Direction, normalize_values, parse_directions

__all__ = ["BoundingBox", "Group", "GroupedDataset"]


class BoundingBox:
    """Axis-aligned minimum bounding box of a set of records.

    ``min_corner`` / ``max_corner`` follow the paper's Figure 9: with the
    *higher is better* convention the max corner is the (virtual) best record
    of the group and the min corner the worst.
    """

    __slots__ = ("min_corner", "max_corner")

    def __init__(self, min_corner: np.ndarray, max_corner: np.ndarray):
        self.min_corner = np.asarray(min_corner, dtype=np.float64)
        self.max_corner = np.asarray(max_corner, dtype=np.float64)
        if self.min_corner.shape != self.max_corner.shape:
            raise ValueError("corner shapes differ")
        if np.any(self.min_corner > self.max_corner):
            raise ValueError("min corner exceeds max corner")

    @classmethod
    def of(cls, values: np.ndarray) -> "BoundingBox":
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 2 or array.shape[0] == 0:
            raise ValueError("bounding box needs a non-empty 2-d array")
        return cls(array.min(axis=0), array.max(axis=0))

    @property
    def dimensions(self) -> int:
        return int(self.min_corner.shape[0])

    def contains_point(self, point: np.ndarray) -> bool:
        pt = np.asarray(point, dtype=np.float64)
        return bool(
            np.all(pt >= self.min_corner) and np.all(pt <= self.max_corner)
        )

    def intersects(self, other: "BoundingBox") -> bool:
        return bool(
            np.all(self.min_corner <= other.max_corner)
            and np.all(other.min_corner <= self.max_corner)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoundingBox):
            return NotImplemented
        return bool(
            np.array_equal(self.min_corner, other.min_corner)
            and np.array_equal(self.max_corner, other.max_corner)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"BoundingBox({self.min_corner.tolist()}, {self.max_corner.tolist()})"


class Group:
    """One group of records, with key, payload and cached bounding box."""

    __slots__ = ("key", "values", "_bbox", "index")

    def __init__(self, key: Hashable, values: np.ndarray, index: int = -1):
        array = np.ascontiguousarray(values, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError("group values must be 2-d (records x dims)")
        if array.shape[0] == 0:
            raise ValueError(f"group {key!r} is empty")
        self.key = key
        self.values = array
        self.index = index
        self._bbox: Optional[BoundingBox] = None

    @property
    def size(self) -> int:
        """Number of records in the group (``|R|`` in the paper)."""
        return int(self.values.shape[0])

    @property
    def dimensions(self) -> int:
        return int(self.values.shape[1])

    @property
    def bbox(self) -> BoundingBox:
        """Minimum bounding box, computed lazily and cached."""
        if self._bbox is None:
            self._bbox = BoundingBox.of(self.values)
        return self._bbox

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Group({self.key!r}, n={self.size}, d={self.dimensions})"


GroupsInput = Union[
    Mapping[Hashable, Iterable],
    Sequence[Group],
]


class GroupedDataset:
    """A partition of the record universe into named groups.

    This is the input type of every aggregate-skyline algorithm.  It can be
    built from a mapping ``{key: array-like of records}`` (records as rows)
    or from a sequence of :class:`Group` objects.  On construction all values
    are normalised to *higher is better* according to ``directions``.
    """

    def __init__(
        self,
        groups: GroupsInput,
        directions: Union[None, str, Direction, Sequence] = None,
        dimensions: Optional[int] = None,
    ):
        raw: List[Tuple[Hashable, np.ndarray]] = []
        if isinstance(groups, Mapping):
            for key, values in groups.items():
                raw.append((key, np.asarray(values, dtype=np.float64)))
        else:
            for group in groups:
                if not isinstance(group, Group):
                    raise TypeError(
                        "sequence input must contain Group objects"
                    )
                raw.append((group.key, group.values))
        if not raw:
            raise ValueError("a grouped dataset needs at least one group")

        first = raw[0][1]
        if first.ndim == 1:
            first = first.reshape(1, -1)
        inferred = dimensions if dimensions is not None else first.shape[-1]
        self.directions = parse_directions(directions, inferred)
        self._groups: List[Group] = []
        self._by_key: Dict[Hashable, Group] = {}
        for position, (key, values) in enumerate(raw):
            if key in self._by_key:
                raise ValueError(f"duplicate group key: {key!r}")
            normalised = normalize_values(values, self.directions)
            group = Group(key, normalised, index=position)
            self._groups.append(group)
            self._by_key[key] = group

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[Sequence[float]],
        keys: Iterable[Hashable],
        directions: Union[None, str, Direction, Sequence] = None,
    ) -> "GroupedDataset":
        """Group flat records by parallel ``keys`` (a GROUP BY, basically)."""
        buckets: Dict[Hashable, List[Sequence[float]]] = {}
        for record, key in zip(records, keys):
            buckets.setdefault(key, []).append(record)
        return cls(
            {key: np.asarray(rows, dtype=np.float64) for key, rows in buckets.items()},
            directions=directions,
        )

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------

    @property
    def dimensions(self) -> int:
        return self._groups[0].dimensions

    @property
    def total_records(self) -> int:
        """Total number of records across all groups (``|U_r|``)."""
        return sum(group.size for group in self._groups)

    @property
    def groups(self) -> List[Group]:
        return list(self._groups)

    def keys(self) -> List[Hashable]:
        return [group.key for group in self._groups]

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[Group]:
        return iter(self._groups)

    def __getitem__(self, key: Hashable) -> Group:
        return self._by_key[key]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._by_key

    def original_values(self, key: Hashable) -> np.ndarray:
        """Records of one group in the user's original orientation."""
        from .dominance import denormalize_values

        return denormalize_values(self._by_key[key].values, self.directions)

    def subset(self, keys: Iterable[Hashable]) -> "GroupedDataset":
        """A new dataset containing only ``keys`` (same directions, order).

        Useful for drill-downs: run the operator, then re-analyse just the
        winners (or just the losers).
        """
        wanted = set(keys)
        missing = wanted - set(self._by_key)
        if missing:
            raise KeyError(f"unknown group keys: {sorted(map(str, missing))}")
        groups = {
            key: self.original_values(key)
            for key in self.keys()
            if key in wanted
        }
        return GroupedDataset(groups, directions=self.directions)

    def merge(self, other: "GroupedDataset") -> "GroupedDataset":
        """Union of two datasets over the same dimensions and directions.

        Shared keys have their records concatenated (both partitions'
        records belong to the same logical group).
        """
        if other.directions != self.directions:
            raise ValueError("datasets have different directions")
        if other.dimensions != self.dimensions:
            raise ValueError("datasets have different dimensionality")
        merged: Dict[Hashable, np.ndarray] = {
            key: self.original_values(key) for key in self.keys()
        }
        for key in other.keys():
            values = other.original_values(key)
            if key in merged:
                merged[key] = np.vstack([merged[key], values])
            else:
                merged[key] = values
        return GroupedDataset(merged, directions=self.directions)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"GroupedDataset(groups={len(self)}, records={self.total_records},"
            f" d={self.dimensions})"
        )
