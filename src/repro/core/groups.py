"""Groups of records and grouped datasets — the columnar backbone.

The aggregate skyline operates on a *partition* of the record universe into
groups (Table 1 of the paper: ``U_g``).  Since the columnar refactor the
canonical representation of a :class:`GroupedDataset` is **one contiguous
``(N_records × d)`` float64 matrix** (already normalised to *higher is
better*) plus CSR-style group row offsets and precomputed per-group MBB
corner matrices:

* ``dataset.matrix`` — all records, group after group, C-contiguous;
* ``dataset.offsets`` — ``int64`` array of length ``G + 1``; group ``i``'s
  records are ``matrix[offsets[i]:offsets[i + 1]]``;
* ``dataset.min_corners`` / ``dataset.max_corners`` — ``(G × d)`` matrices
  holding each group's MBB corners (Figure 9's virtual worst/best records).

:class:`Group` objects are **zero-copy views** into those columns: their
``values`` payload is a slice of the matrix and their bounding box reads the
corner rows.  The same contiguous layout feeds every other layer without
reshaping — ``repro.data.store`` persists the columns verbatim (format v2),
``repro.parallel.shm`` ships the matrix buffer to pool workers as-is, and
``repro.index`` bulk-loads its packed R-tree straight from the corner
matrices.  See ``docs/data-model.md``.

A dataset is immutable once built and identified by a content
:meth:`~GroupedDataset.fingerprint` (shape/dtype/offsets/keys/data hash),
which keys the derived-artifact cache (:mod:`repro.core.artifacts`).
"""

from __future__ import annotations

import hashlib
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .dominance import Direction, parse_directions

__all__ = ["BoundingBox", "Group", "GroupedDataset"]


class BoundingBox:
    """Axis-aligned minimum bounding box of a set of records.

    ``min_corner`` / ``max_corner`` follow the paper's Figure 9: with the
    *higher is better* convention the max corner is the (virtual) best record
    of the group and the min corner the worst.
    """

    __slots__ = ("min_corner", "max_corner")

    def __init__(self, min_corner: np.ndarray, max_corner: np.ndarray):
        self.min_corner = np.asarray(min_corner, dtype=np.float64)
        self.max_corner = np.asarray(max_corner, dtype=np.float64)
        if self.min_corner.shape != self.max_corner.shape:
            raise ValueError("corner shapes differ")
        if np.any(self.min_corner > self.max_corner):
            raise ValueError("min corner exceeds max corner")

    @classmethod
    def of(cls, values: np.ndarray) -> "BoundingBox":
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 2 or array.shape[0] == 0:
            raise ValueError("bounding box needs a non-empty 2-d array")
        return cls(array.min(axis=0), array.max(axis=0))

    @classmethod
    def _trusted(
        cls, min_corner: np.ndarray, max_corner: np.ndarray
    ) -> "BoundingBox":
        """Wrap pre-validated corner views without copies or checks.

        Used by :class:`GroupedDataset` to hand out boxes whose corners are
        rows of the dataset's corner matrices (already float64, already
        consistent by construction).
        """
        box = cls.__new__(cls)
        box.min_corner = min_corner
        box.max_corner = max_corner
        return box

    @property
    def dimensions(self) -> int:
        return int(self.min_corner.shape[0])

    def contains_point(self, point: np.ndarray) -> bool:
        pt = np.asarray(point, dtype=np.float64)
        return bool(
            np.all(pt >= self.min_corner) and np.all(pt <= self.max_corner)
        )

    def intersects(self, other: "BoundingBox") -> bool:
        return bool(
            np.all(self.min_corner <= other.max_corner)
            and np.all(other.min_corner <= self.max_corner)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoundingBox):
            return NotImplemented
        return bool(
            np.array_equal(self.min_corner, other.min_corner)
            and np.array_equal(self.max_corner, other.max_corner)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"BoundingBox({self.min_corner.tolist()}, {self.max_corner.tolist()})"


class Group:
    """One group of records, with key, payload and cached bounding box.

    When the group belongs to a columnar :class:`GroupedDataset`, ``values``
    is a zero-copy slice of the dataset matrix and the bounding box wraps
    rows of the precomputed corner matrices; standalone groups keep the old
    behaviour (own contiguous payload, box computed lazily).
    """

    __slots__ = ("key", "values", "_bbox", "index", "_span")

    def __init__(
        self,
        key: Hashable,
        values: np.ndarray,
        index: int = -1,
        bbox: Optional[BoundingBox] = None,
        span: Optional[Tuple[int, int]] = None,
    ):
        # ``ascontiguousarray`` is a no-op (returns the same view) for the
        # already-contiguous float64 slices a columnar dataset passes in.
        array = np.ascontiguousarray(values, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError("group values must be 2-d (records x dims)")
        if array.shape[0] == 0:
            raise ValueError(f"group {key!r} is empty")
        self.key = key
        self.values = array
        self.index = index
        self._bbox: Optional[BoundingBox] = bbox
        #: Row range of this view inside its dataset's record matrix
        #: (``None`` for standalone groups).  Lets the parallel layer
        #: recognise a consecutive columnar block in O(1) per group
        #: (:func:`repro.parallel.shm.ship_groups`).
        self._span = span

    @property
    def size(self) -> int:
        """Number of records in the group (``|R|`` in the paper)."""
        return int(self.values.shape[0])

    @property
    def dimensions(self) -> int:
        return int(self.values.shape[1])

    @property
    def bbox(self) -> BoundingBox:
        """Minimum bounding box, computed lazily and cached."""
        if self._bbox is None:
            self._bbox = BoundingBox.of(self.values)
        return self._bbox

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Group({self.key!r}, n={self.size}, d={self.dimensions})"


GroupsInput = Union[
    Mapping[Hashable, Iterable],
    Sequence[Group],
]


def _readonly_view(array: np.ndarray) -> np.ndarray:
    """A non-writeable view of ``array`` (zero-copy immutability guard)."""
    view = array.view()
    view.flags.writeable = False
    return view


class GroupedDataset:
    """A partition of the record universe into named groups.

    This is the input type of every aggregate-skyline algorithm.  It can be
    built from a mapping ``{key: array-like of records}`` (records as rows)
    or from a sequence of :class:`Group` objects.  On construction all values
    are normalised to *higher is better* according to ``directions`` and
    packed into the columnar layout described in the module docstring.

    Non-finite records (NaN or ±inf) poison dominance pair counts, so they
    are rejected with an error naming the offending group; pass
    ``allow_non_finite=True`` to accept them anyway (at your own risk).
    """

    def __init__(
        self,
        groups: GroupsInput,
        directions: Union[None, str, Direction, Sequence] = None,
        dimensions: Optional[int] = None,
        allow_non_finite: bool = False,
    ):
        raw: List[Tuple[Hashable, np.ndarray]] = []
        if isinstance(groups, Mapping):
            for key, values in groups.items():
                raw.append((key, np.asarray(values, dtype=np.float64)))
        else:
            for group in groups:
                if not isinstance(group, Group):
                    raise TypeError(
                        "sequence input must contain Group objects"
                    )
                raw.append((group.key, group.values))
        if not raw:
            raise ValueError("a grouped dataset needs at least one group")

        first = raw[0][1]
        if first.ndim == 1:
            first = first.reshape(1, -1)
        inferred = dimensions if dimensions is not None else first.shape[-1]
        directions_parsed = parse_directions(directions, inferred)
        dims = len(directions_parsed)

        keys: List[Hashable] = []
        arrays: List[np.ndarray] = []
        total = 0
        offsets = np.zeros(len(raw) + 1, dtype=np.int64)
        for position, (key, values) in enumerate(raw):
            array = values
            if array.ndim == 1:
                array = array.reshape(1, -1)
            if array.ndim != 2:
                raise ValueError(
                    "values must be a 2-d array (records x dimensions)"
                )
            if array.shape[1] != dims:
                raise ValueError(
                    f"values have {array.shape[1]} dimensions, "
                    f"expected {dims}"
                )
            if array.shape[0] == 0:
                raise ValueError(f"group {key!r} is empty")
            keys.append(key)
            arrays.append(array)
            total += array.shape[0]
            offsets[position + 1] = total

        matrix = np.empty((total, dims), dtype=np.float64)
        for position, array in enumerate(arrays):
            matrix[offsets[position] : offsets[position + 1]] = array
        for column, direction in enumerate(directions_parsed):
            if direction is Direction.MIN:
                matrix[:, column] = -matrix[:, column]

        self._init_columns(
            keys,
            matrix,
            offsets,
            directions_parsed,
            allow_non_finite=allow_non_finite,
        )

    # ------------------------------------------------------------------
    # columnar core
    # ------------------------------------------------------------------

    def _init_columns(
        self,
        keys: Sequence[Hashable],
        matrix: np.ndarray,
        offsets: np.ndarray,
        directions: Tuple[Direction, ...],
        allow_non_finite: bool = False,
    ) -> None:
        """Install pre-assembled columns (matrix already normalised)."""
        key_index: Dict[Hashable, int] = {}
        for position, key in enumerate(keys):
            if key in key_index:
                raise ValueError(f"duplicate group key: {key!r}")
            key_index[key] = position

        self.directions = directions
        self.allow_non_finite = bool(allow_non_finite)
        self._keys: Tuple[Hashable, ...] = tuple(keys)
        self._key_index = key_index
        self._matrix = _readonly_view(matrix)
        self._offsets = _readonly_view(offsets)
        if not allow_non_finite:
            self._check_finite()
        starts = offsets[:-1]
        self._min_corners = _readonly_view(
            np.minimum.reduceat(matrix, starts, axis=0)
        )
        self._max_corners = _readonly_view(
            np.maximum.reduceat(matrix, starts, axis=0)
        )
        # Zero-copy Group views are materialised lazily: large archive
        # loads and column-level consumers never pay for G python objects.
        self._group_views: Optional[List[Group]] = None
        self._fingerprint: Optional[str] = None

    def _check_finite(self) -> None:
        finite = np.isfinite(self._matrix)
        if finite.all():
            return
        bad_row = int(np.flatnonzero(~finite.all(axis=1))[0])
        position = int(
            np.searchsorted(self._offsets, bad_row, side="right") - 1
        )
        key = self._keys[position]
        value = self._matrix[bad_row]
        kind = "NaN" if np.isnan(value).any() else "infinite"
        raise ValueError(
            f"group {key!r} contains a non-finite record ({kind} value);"
            " NaN/inf poison dominance pair counts — clean the data or"
            " pass allow_non_finite=True to accept it anyway"
        )

    @classmethod
    def from_columns(
        cls,
        matrix: np.ndarray,
        offsets: np.ndarray,
        keys: Sequence[Hashable],
        directions: Union[None, str, Direction, Sequence] = None,
        *,
        normalized: bool = False,
        allow_non_finite: bool = False,
    ) -> "GroupedDataset":
        """Build a dataset directly from columnar inputs (the fast path).

        ``matrix`` holds all records group after group; group ``i`` owns rows
        ``offsets[i]:offsets[i + 1]``.  With ``normalized=False`` (default)
        the matrix is in the user's original orientation and MIN-direction
        columns are negated into a private copy; with ``normalized=True`` —
        or when every direction is MAX — **the matrix is adopted without a
        copy** (this is what makes ``mmap``-backed store-v2 loads and
        shared-memory attach zero-copy).  The caller must not mutate an
        adopted matrix afterwards.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-d (records x dimensions)")
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.shape[0] < 2:
            raise ValueError("offsets must be 1-d with at least 2 entries")
        if offsets[0] != 0 or offsets[-1] != matrix.shape[0]:
            raise ValueError(
                "offsets must start at 0 and end at the record count"
            )
        sizes = np.diff(offsets)
        if (sizes <= 0).any():
            position = int(np.flatnonzero(sizes <= 0)[0])
            keys = list(keys)
            key = keys[position] if position < len(keys) else position
            raise ValueError(f"group {key!r} is empty")
        keys = list(keys)
        if len(keys) != offsets.shape[0] - 1:
            raise ValueError(
                f"got {len(keys)} keys for {offsets.shape[0] - 1} groups"
            )
        parsed = parse_directions(directions, matrix.shape[1])
        if not normalized and any(d is Direction.MIN for d in parsed):
            matrix = np.ascontiguousarray(matrix)
            flipped = matrix.copy()
            for column, direction in enumerate(parsed):
                if direction is Direction.MIN:
                    flipped[:, column] = -flipped[:, column]
            matrix = flipped
        elif not matrix.flags["C_CONTIGUOUS"]:
            matrix = np.ascontiguousarray(matrix)
        dataset = cls.__new__(cls)
        dataset._init_columns(
            keys, matrix, offsets, parsed, allow_non_finite=allow_non_finite
        )
        return dataset

    @property
    def matrix(self) -> np.ndarray:
        """All records (normalised, C-contiguous, read-only), group-major."""
        return self._matrix

    @property
    def offsets(self) -> np.ndarray:
        """CSR row offsets: group ``i`` is ``matrix[offsets[i]:offsets[i+1]]``."""
        return self._offsets

    @property
    def min_corners(self) -> np.ndarray:
        """Per-group MBB min corners, ``(G × d)`` (read-only)."""
        return self._min_corners

    @property
    def max_corners(self) -> np.ndarray:
        """Per-group MBB max corners, ``(G × d)`` (read-only)."""
        return self._max_corners

    @property
    def group_sizes(self) -> np.ndarray:
        """Records per group (``int64`` vector of length ``G``)."""
        return np.diff(self._offsets)

    def fingerprint(self) -> str:
        """Content hash identifying this dataset (hex string, cached).

        Covers shape, dtype, directions, offsets, keys and the full record
        matrix, so two datasets with identical content share a fingerprint
        regardless of how they were built — the key of the derived-artifact
        cache (:mod:`repro.core.artifacts`).
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=20)
            digest.update(b"grouped-dataset/v1|")
            digest.update(
                f"{self._matrix.shape[0]}x{self._matrix.shape[1]}|".encode()
            )
            digest.update(self._matrix.dtype.str.encode() + b"|")
            digest.update(
                ",".join(d.value for d in self.directions).encode() + b"|"
            )
            digest.update(np.ascontiguousarray(self._offsets).data)
            for key in self._keys:
                digest.update(repr(key).encode("utf-8", "backslashreplace"))
                digest.update(b"\x1f")
            digest.update(np.ascontiguousarray(self._matrix).data)
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def _materialize(self) -> List[Group]:
        """Build (once) the zero-copy :class:`Group` views of the columns."""
        if self._group_views is None:
            matrix = self._matrix
            offsets = self._offsets
            min_corners = self._min_corners
            max_corners = self._max_corners
            views: List[Group] = []
            for position, key in enumerate(self._keys):
                start = int(offsets[position])
                stop = int(offsets[position + 1])
                bbox = BoundingBox._trusted(
                    min_corners[position], max_corners[position]
                )
                views.append(
                    Group(
                        key,
                        matrix[start:stop],
                        index=position,
                        bbox=bbox,
                        span=(start, stop),
                    )
                )
            self._group_views = views
        return self._group_views

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[Sequence[float]],
        keys: Iterable[Hashable],
        directions: Union[None, str, Direction, Sequence] = None,
        allow_non_finite: bool = False,
    ) -> "GroupedDataset":
        """Group flat records by parallel ``keys`` (a GROUP BY, basically)."""
        buckets: Dict[Hashable, List[Sequence[float]]] = {}
        for record, key in zip(records, keys):
            buckets.setdefault(key, []).append(record)
        return cls(
            {key: np.asarray(rows, dtype=np.float64) for key, rows in buckets.items()},
            directions=directions,
            allow_non_finite=allow_non_finite,
        )

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------

    @property
    def dimensions(self) -> int:
        return int(self._matrix.shape[1])

    @property
    def total_records(self) -> int:
        """Total number of records across all groups (``|U_r|``)."""
        return int(self._matrix.shape[0])

    @property
    def groups(self) -> List[Group]:
        return list(self._materialize())

    def keys(self) -> List[Hashable]:
        return list(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[Group]:
        return iter(self._materialize())

    def __getitem__(self, key: Hashable) -> Group:
        return self._materialize()[self._key_index[key]]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._key_index

    def original_values(self, key: Hashable) -> np.ndarray:
        """Records of one group in the user's original orientation."""
        position = self._key_index[key]
        start = int(self._offsets[position])
        stop = int(self._offsets[position + 1])
        return self._denormalize(self._matrix[start:stop])

    def _denormalize(self, values: np.ndarray) -> np.ndarray:
        result = values.copy()
        for column, direction in enumerate(self.directions):
            if direction is Direction.MIN:
                result[:, column] = -result[:, column]
        return result

    def original_matrix(self) -> np.ndarray:
        """The full record matrix in the user's original orientation.

        A copy with MIN columns un-negated (or a read-only view when every
        direction is MAX); rows follow :attr:`offsets`.  This is what the
        binary store persists (format v2 writes it verbatim).
        """
        if any(d is Direction.MIN for d in self.directions):
            return self._denormalize(self._matrix)
        return self._matrix

    def subset(self, keys: Iterable[Hashable]) -> "GroupedDataset":
        """A new dataset containing only ``keys`` (same directions, order).

        Useful for drill-downs: run the operator, then re-analyse just the
        winners (or just the losers).
        """
        wanted = set(keys)
        missing = wanted - set(self._key_index)
        if missing:
            raise KeyError(f"unknown group keys: {sorted(map(str, missing))}")
        groups = {
            key: self.original_values(key)
            for key in self._keys
            if key in wanted
        }
        return GroupedDataset(
            groups,
            directions=self.directions,
            allow_non_finite=self.allow_non_finite,
        )

    def merge(self, other: "GroupedDataset") -> "GroupedDataset":
        """Union of two datasets over the same dimensions and directions.

        Shared keys have their records concatenated (both partitions'
        records belong to the same logical group).
        """
        if other.directions != self.directions:
            raise ValueError("datasets have different directions")
        if other.dimensions != self.dimensions:
            raise ValueError("datasets have different dimensionality")
        merged: Dict[Hashable, np.ndarray] = {
            key: self.original_values(key) for key in self._keys
        }
        for key in other.keys():
            values = other.original_values(key)
            if key in merged:
                merged[key] = np.vstack([merged[key], values])
            else:
                merged[key] = values
        return GroupedDataset(
            merged,
            directions=self.directions,
            allow_non_finite=self.allow_non_finite or other.allow_non_finite,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"GroupedDataset(groups={len(self)}, records={self.total_records},"
            f" d={self.dimensions})"
        )
