"""Sub-quadratic dominance-pair counting for two dimensions.

Counting the pairs ``(s, r)`` with ``s > r`` is the inner loop of
γ-dominance (Equation 4 of the paper).  The generic kernel is a blocked
O(|S|·|R|) scan; in two dimensions the count is computable in
O((|S|+|R|) log |R|) with a sweep over the first dimension and a Fenwick
tree over ranks of the second:

* sort both sides by dimension 0 descending,
* advance through ``r``; before handling one ``r``, insert every ``s``
  with ``s0 >= r0`` into the tree keyed by the rank of ``s1``,
* the pairs ``componentwise >=`` for this ``r`` are the tree's suffix sum
  from ``rank(r1)``,
* subtract the exactly-equal pairs at the end (``>=`` everywhere but
  ``>`` nowhere is not dominance).

The kernel optionally takes non-negative integer weights per record and
then returns the *weighted* pair count ``Σ w_s · w_r`` over dominating
pairs — the quantity behind weighted γ-dominance
(:mod:`repro.core.weighted`).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..index.fenwick import FenwickTree

__all__ = ["count_dominating_pairs_2d", "FAST_PATH_MIN_PAIRS"]

#: Below this many pairs the quadratic numpy kernel wins on constants.
FAST_PATH_MIN_PAIRS = 4096


def count_dominating_pairs_2d(
    s_values: np.ndarray,
    r_values: np.ndarray,
    s_weights: Optional[np.ndarray] = None,
    r_weights: Optional[np.ndarray] = None,
) -> int:
    """Exact (optionally weighted) count of pairs with ``s > r`` in 2-d."""
    s_arr = np.asarray(s_values, dtype=np.float64)
    r_arr = np.asarray(r_values, dtype=np.float64)
    if s_arr.ndim != 2 or r_arr.ndim != 2:
        raise ValueError("inputs must be 2-d arrays")
    if s_arr.shape[1] != 2 or r_arr.shape[1] != 2:
        raise ValueError("the 2-d kernel needs exactly two dimensions")
    n_s, n_r = s_arr.shape[0], r_arr.shape[0]
    if n_s == 0 or n_r == 0:
        return 0
    w_s = _weights(s_weights, n_s)
    w_r = _weights(r_weights, n_r)

    ge = _count_componentwise_ge(s_arr, r_arr, w_s, w_r)
    eq = _count_equal_pairs(s_arr, r_arr, w_s, w_r)
    return ge - eq


def _weights(weights: Optional[np.ndarray], count: int) -> np.ndarray:
    if weights is None:
        return np.ones(count, dtype=np.int64)
    arr = np.asarray(weights)
    if arr.shape != (count,):
        raise ValueError("weights must be one per record")
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValueError("weights must be integers (exact arithmetic)")
    if np.any(arr < 0):
        raise ValueError("weights must be non-negative")
    return arr.astype(np.int64)


def _count_componentwise_ge(
    s_arr: np.ndarray,
    r_arr: np.ndarray,
    w_s: np.ndarray,
    w_r: np.ndarray,
) -> int:
    # Ranks of the second dimension over the union of both sides.
    combined = np.concatenate([s_arr[:, 1], r_arr[:, 1]])
    levels, inverse = np.unique(combined, return_inverse=True)
    s_ranks = inverse[: len(s_arr)]
    r_ranks = inverse[len(s_arr):]

    s_order = np.argsort(-s_arr[:, 0], kind="stable")
    r_order = np.argsort(-r_arr[:, 0], kind="stable")

    tree = FenwickTree(len(levels))
    total = 0
    cursor = 0
    for r_index in r_order:
        r0 = r_arr[r_index, 0]
        while cursor < len(s_order) and s_arr[s_order[cursor], 0] >= r0:
            s_index = s_order[cursor]
            tree.add(int(s_ranks[s_index]), int(w_s[s_index]))
            cursor += 1
        total += int(w_r[r_index]) * tree.suffix_sum(int(r_ranks[r_index]))
    return total


def _count_equal_pairs(
    s_arr: np.ndarray,
    r_arr: np.ndarray,
    w_s: np.ndarray,
    w_r: np.ndarray,
) -> int:
    weight_by_point: Dict[Tuple[float, float], int] = {}
    for row, weight in zip(s_arr, w_s):
        key = (float(row[0]), float(row[1]))
        weight_by_point[key] = weight_by_point.get(key, 0) + int(weight)
    total = 0
    for row, weight in zip(r_arr, w_r):
        key = (float(row[0]), float(row[1]))
        total += int(weight) * weight_by_point.get(key, 0)
    return total
