"""Anytime aggregate-skyline processing.

The paper's reference [15] (Magnani, Assent, Mortensen — *Anytime skyline
query processing for interactive systems*) motivates answering skyline
queries progressively: give the user a sound partial answer immediately
and refine it while time remains.  This module brings that model to the
aggregate skyline.

The key observation is that every pairwise domination predicate is decided
by *bounds*: after examining a subset of record pairs, ``p(S > R)`` is
confined to an interval (Section 3.3's stopping rule).  Group status
follows monotonically:

* ``EXCLUDED``  — some group's lower bound already γ-dominates it;
* ``CONFIRMED`` — every potential dominator's upper bound is too low;
* ``UNDECIDED`` — anything else; shrinks as more pairs are examined.

:class:`AnytimeAggregateSkyline` exposes ``step(pair_budget)`` for
incremental refinement plus the sound partial answers
``confirmed()``/``excluded()``/``candidates()`` at any time.  Once
``done``, ``confirmed()`` is exactly the Definition-2 skyline.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Hashable, List, Optional, Tuple, Union

from ..obs.progress import ProgressEvent, ProgressReporter
from .comparator import _DirectionalCount
from .gamma import GammaLike, GammaThresholds
from .groups import GroupedDataset

__all__ = ["GroupStatus", "AnytimeAggregateSkyline"]


class GroupStatus(enum.Enum):
    CONFIRMED = "confirmed"
    EXCLUDED = "excluded"
    UNDECIDED = "undecided"


class AnytimeAggregateSkyline:
    """Progressively refined aggregate skyline.

    Parameters
    ----------
    dataset:
        The grouped input.
    gamma:
        Definition-3 threshold (``>= .5``).
    block_size:
        Record pairs resolved per probe advance — the refinement
        granularity (smaller = smoother progress, more overhead).
    use_bbox:
        Seed every probe with the Figure-9 MBB pre-classification, which
        often decides pairs with zero record comparisons.
    """

    def __init__(
        self,
        dataset: GroupedDataset,
        gamma: GammaLike = 0.5,
        block_size: int = 256,
        use_bbox: bool = True,
    ):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.thresholds = GammaThresholds(gamma)
        self.block_size = block_size
        self._groups = dataset.groups
        self._keys = [group.key for group in self._groups]
        n = len(self._groups)
        self._status = [GroupStatus.UNDECIDED] * n
        self.pairs_examined = 0

        # One probe per ordered pair (i dominating j), created lazily so
        # bbox-decided pairs never allocate more than the counter.
        self._probes: Dict[Tuple[int, int], _DirectionalCount] = {}
        self._undecided_pairs: List[Tuple[int, int]] = []
        for j in range(n):
            for i in range(n):
                if i == j:
                    continue
                probe = _DirectionalCount(
                    self._groups[i], self._groups[j], use_bbox
                )
                self._probes[(i, j)] = probe
                if probe.decide(self.thresholds.gamma) is None:
                    self._undecided_pairs.append((i, j))
        #: Upper bound on record-pair checks still possible after the MBB
        #: pre-classification — the denominator for progress ETAs.
        self.pair_budget = sum(
            probe.pending for probe in self._probes.values()
        )
        self._refresh_statuses()

    # ------------------------------------------------------------------
    # refinement
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return all(s is not GroupStatus.UNDECIDED for s in self._status)

    @property
    def progress(self) -> float:
        """Fraction of groups whose status is final."""
        decided = sum(
            1 for s in self._status if s is not GroupStatus.UNDECIDED
        )
        return decided / len(self._status) if self._status else 1.0

    def step(self, pair_budget: int = 4096) -> bool:
        """Spend up to ``pair_budget`` record-pair checks; True when done.

        Work is spread round-robin over the pairs that can still influence
        an undecided group, so no group's verdict starves.
        """
        if pair_budget <= 0:
            raise ValueError("pair_budget must be positive")
        spent = 0
        while spent < pair_budget and not self.done:
            progressed = False
            still_open: List[Tuple[int, int]] = []
            for i, j in self._undecided_pairs:
                if spent >= pair_budget:
                    still_open.append((i, j))
                    continue
                if self._status[j] is not GroupStatus.UNDECIDED:
                    continue  # j's fate is sealed; pair is irrelevant
                probe = self._probes[(i, j)]
                if probe.decide(self.thresholds.gamma) is not None:
                    continue
                advanced = probe.advance(self.block_size)
                spent += advanced
                progressed = progressed or advanced > 0
                if probe.decide(self.thresholds.gamma) is None:
                    still_open.append((i, j))
            self._undecided_pairs = still_open
            self._refresh_statuses()
            if not progressed:
                break
        self.pairs_examined += spent
        return self.done

    def run(
        self,
        pair_budget_per_step: int = 4096,
        progress: Union[
            None, ProgressReporter, Callable[[ProgressEvent], None]
        ] = None,
    ) -> List[Hashable]:
        """Refine to completion; returns the exact skyline keys.

        ``progress`` is either a :class:`~repro.obs.progress.ProgressReporter`
        or a plain callback (wrapped in a reporter with a 0.5s heartbeat);
        it receives throttled events with groups decided / total, record
        pairs examined, and an ETA from the remaining pair budget.
        """
        reporter = self._coerce_reporter(progress)

        def heartbeat() -> None:
            if reporter is None:
                return
            decided = sum(
                1 for s in self._status if s is not GroupStatus.UNDECIDED
            )
            reporter.update(
                done=decided,
                total=len(self._status),
                pairs_examined=self.pairs_examined,
                pair_budget=self.pair_budget,
                phase="anytime-skyline",
                force=self.done,
            )

        while not self.done:
            self.step(pair_budget_per_step)
            heartbeat()
        if reporter is not None and reporter.events_emitted == 0:
            # Everything was decided by the MBB pre-classification before
            # the first step; still report the (instant) completion.
            heartbeat()
        return self.confirmed()

    @staticmethod
    def _coerce_reporter(progress) -> Optional[ProgressReporter]:
        if progress is None:
            return None
        if isinstance(progress, ProgressReporter):
            return progress
        return ProgressReporter(progress, min_interval=0.5)

    # ------------------------------------------------------------------
    # status derivation
    # ------------------------------------------------------------------

    def _refresh_statuses(self) -> None:
        gamma = self.thresholds.gamma
        n = len(self._groups)
        for j in range(n):
            if self._status[j] is not GroupStatus.UNDECIDED:
                continue
            all_false = True
            for i in range(n):
                if i == j:
                    continue
                verdict = self._probes[(i, j)].decide(gamma)
                if verdict is True:
                    self._status[j] = GroupStatus.EXCLUDED
                    all_false = False
                    break
                if verdict is None:
                    all_false = False
            if all_false:
                self._status[j] = GroupStatus.CONFIRMED

    # ------------------------------------------------------------------
    # partial answers (always sound)
    # ------------------------------------------------------------------

    def status(self, key: Hashable) -> GroupStatus:
        return self._status[self._keys.index(key)]

    def confirmed(self) -> List[Hashable]:
        """Groups guaranteed to be in the skyline."""
        return [
            key
            for key, status in zip(self._keys, self._status)
            if status is GroupStatus.CONFIRMED
        ]

    def excluded(self) -> List[Hashable]:
        """Groups guaranteed to be out."""
        return [
            key
            for key, status in zip(self._keys, self._status)
            if status is GroupStatus.EXCLUDED
        ]

    def candidates(self) -> List[Hashable]:
        """Upper bound on the skyline: confirmed plus undecided groups."""
        return [
            key
            for key, status in zip(self._keys, self._status)
            if status is not GroupStatus.EXCLUDED
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AnytimeAggregateSkyline(progress={self.progress:.2f},"
            f" confirmed={len(self.confirmed())},"
            f" excluded={len(self.excluded())})"
        )
