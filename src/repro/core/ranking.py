"""Efficient γ-profile computation (the ranked mode of Section 2.2).

The paper suggests running the operator once at ``γ = 1`` and returning all
candidate groups *sorted by the minimum γ* for which they enter the skyline.
That requires, for every group ``R``, its domination degree
``m(R) = max over S != R of p(S > R)`` — the brute force in
:func:`repro.core.api.gamma_profile` costs a full quadratic pass.

:func:`compute_gamma_profile` gets the same exact answer with two prunings:

* **bbox skip** — if ``S``'s best corner does not dominate ``R``'s worst
  corner, ``p(S > R) = 0`` with no record comparison at all;
* **bound skip** — the MBB region pre-classification (Figure 9) yields
  cheap lower/upper bounds on ``p(S > R)``; an exact count is only needed
  when the interval straddles the current maximum.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Iterable, Mapping, Union

from .api import GammaProfile, _coerce_dataset
from .comparator import DirectionalProbe
from .dominance import Direction
from .groups import GroupedDataset

__all__ = ["compute_gamma_profile", "ProfileStats"]


class ProfileStats:
    """Work counters of one profile computation (for tests/benchmarks)."""

    __slots__ = ("pairs_considered", "exact_counts", "bound_skips")

    def __init__(self) -> None:
        self.pairs_considered = 0
        self.exact_counts = 0
        self.bound_skips = 0


def compute_gamma_profile(
    groups: Union[GroupedDataset, Mapping[Hashable, Iterable]],
    directions: Union[None, str, Direction, list, tuple] = None,
    stats: Union[ProfileStats, None] = None,
) -> GammaProfile:
    """Exact :class:`GammaProfile` with bbox/bound pruning.

    Returns the same profile as :func:`repro.core.api.gamma_profile` —
    every skipped comparison is provably irrelevant to ``m(R)``.
    """
    dataset = _coerce_dataset(groups, directions)
    counters = stats if stats is not None else ProfileStats()

    degrees = {}
    strict = set()
    group_list = dataset.groups
    for target in group_list:
        worst = Fraction(0)
        fully_dominated = False
        # Two passes: resolve the cheap, fully-decided probes first so the
        # running maximum is as high as possible before any exact count.
        pending = []
        for other in group_list:
            if other.key == target.key:
                continue
            counters.pairs_considered += 1
            probe = DirectionalProbe(other, target, use_bbox=True)
            lower, upper = probe.bounds()
            if lower == upper:
                if lower > worst:
                    worst = lower
                continue
            pending.append((probe, upper))
        for probe, upper in pending:
            if upper <= worst:
                # The exact value cannot exceed the maximum already seen
                # (and p = 1 would need upper = 1 > worst anyway).
                counters.bound_skips += 1
                continue
            counters.exact_counts += 1
            p = probe.exact()
            if p > worst:
                worst = p
        if worst == 1:
            fully_dominated = True
        degrees[target.key] = worst
        if fully_dominated:
            strict.add(target.key)
    return GammaProfile(degrees, strict)
