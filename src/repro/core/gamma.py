"""γ-dominance between groups (Definition 3 of the paper).

The central quantity is ``p(S > R)``: the probability that a uniformly random
pair ``(s, r)`` from ``S x R`` satisfies record dominance ``s > r``.  Group
``S`` γ-dominates group ``R`` iff ``p = 1`` or ``p > γ``.

The thresholds are compared with exact rational arithmetic: ``p`` is a ratio
of integer pair counts and ``γ`` is held as a :class:`fractions.Fraction`, so
borderline cases (e.g. ``p`` exactly ``.5`` at ``γ = .5``) are never
misclassified by floating-point error.

The module also exposes the *weak transitivity* threshold
``γ̄ = 1 - sqrt(1 - γ)/2`` (Proposition 5) and the domination-matrix view used
in its proof, which the test suite exercises directly.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Tuple, Union

import numpy as np

from .groups import Group

__all__ = [
    "GammaThresholds",
    "as_fraction",
    "gamma_bar",
    "count_dominating_pairs",
    "dominance_probability",
    "gamma_dominates",
    "DominanceMatrix",
    "DEFAULT_BLOCK_SIZE",
]

#: Maximum number of record pairs processed per vectorised block.  Keeps the
#: intermediate ``(n1, n2, d)`` broadcast arrays bounded in memory.
DEFAULT_BLOCK_SIZE = 1 << 16

GammaLike = Union[float, int, Fraction]


def as_fraction(gamma: GammaLike) -> Fraction:
    """Coerce a threshold to an exact :class:`Fraction`.

    Floats are converted exactly (every IEEE-754 double is a dyadic
    rational), so ``as_fraction(0.5) == Fraction(1, 2)``.
    """
    if isinstance(gamma, Fraction):
        return gamma
    if isinstance(gamma, int):
        return Fraction(gamma)
    if isinstance(gamma, float):
        if math.isnan(gamma) or math.isinf(gamma):
            raise ValueError("gamma must be finite")
        return Fraction(gamma)
    raise TypeError(f"cannot interpret {gamma!r} as a threshold")


def gamma_bar(gamma: GammaLike) -> Fraction:
    """Weak-transitivity threshold ``γ̄ = 1 - sqrt(1 - γ)/2`` (Prop. 5).

    ``γ̄ ≥ γ`` for ``γ ∈ [.5, 1]``; dominance at level ``γ̄`` ("strong"
    dominance in Algorithm 3) is what justifies skipping a group entirely.
    The result is returned as an exact fraction of the computed double.
    """
    g = float(as_fraction(gamma))
    if not 0.0 <= g <= 1.0:
        raise ValueError("gamma must lie in [0, 1]")
    return Fraction(1.0 - math.sqrt(1.0 - g) / 2.0)


class GammaThresholds:
    """The pair ``(γ, strong)`` with validation of Proposition 1.

    Definition 3 is only asymmetric for ``γ ≥ .5`` (Proposition 1), so the
    public operator rejects smaller values unless ``allow_unsafe`` is set
    (used by the theory tests that demonstrate the inconsistency).

    The *strong* ("strongly dominated", Algorithm 3) threshold is
    ``max(γ, γ̄)``: Proposition 5's ``γ̄ = 1 - sqrt(1 - γ)/2`` drops *below*
    γ for ``γ > .75`` (the bound is quadratic), and a group may only be
    marked strongly dominated if it is in particular γ-dominated — raising
    the premise threshold keeps weak transitivity valid while never
    excluding a group that Definition 2 would keep.
    """

    __slots__ = ("gamma", "strong")

    def __init__(self, gamma: GammaLike, allow_unsafe: bool = False):
        self.gamma = as_fraction(gamma)
        if not allow_unsafe and self.gamma < Fraction(1, 2):
            raise ValueError(
                "gamma must be >= 0.5 to guarantee asymmetry (Proposition 1);"
                f" got {float(self.gamma)}"
            )
        if self.gamma > 1:
            raise ValueError("gamma cannot exceed 1")
        self.strong = max(self.gamma, gamma_bar(self.gamma))

    def exceeds(self, count: int, total: int) -> bool:
        """Exact test ``count/total = 1 or count/total > γ``."""
        return dominance_holds(count, total, self.gamma)

    def exceeds_strong(self, count: int, total: int) -> bool:
        """Exact test ``count/total = 1 or count/total > γ̄``."""
        return dominance_holds(count, total, self.strong)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"GammaThresholds(gamma={float(self.gamma):.6f},"
            f" strong={float(self.strong):.6f})"
        )


def dominance_holds(count: int, total: int, threshold: Fraction) -> bool:
    """Definition 3 predicate on raw pair counts.

    ``p = count/total`` dominates at ``threshold`` iff ``p == 1`` or
    ``p > threshold`` — evaluated by integer cross-multiplication.
    """
    if total <= 0:
        raise ValueError("total pair count must be positive")
    if count == total:
        return True
    return count * threshold.denominator > threshold.numerator * total


def count_dominating_pairs(
    s_values: np.ndarray,
    r_values: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> int:
    """Number of pairs ``(s, r)`` with ``s > r`` (record dominance).

    Both inputs are ``(n, d)`` arrays in the *higher is better* orientation.
    The computation is vectorised in blocks of at most ``block_size`` pairs
    to bound peak memory.
    """
    s_arr = np.asarray(s_values, dtype=np.float64)
    r_arr = np.asarray(r_values, dtype=np.float64)
    if s_arr.ndim != 2 or r_arr.ndim != 2:
        raise ValueError("inputs must be 2-d arrays")
    if s_arr.shape[1] != r_arr.shape[1]:
        raise ValueError("dimensionality mismatch")
    n_s = s_arr.shape[0]
    n_r = r_arr.shape[0]
    if n_s == 0 or n_r == 0:
        return 0

    if s_arr.shape[1] == 2:
        from .fastcount import FAST_PATH_MIN_PAIRS, count_dominating_pairs_2d

        if n_s * n_r >= FAST_PATH_MIN_PAIRS:
            return count_dominating_pairs_2d(s_arr, r_arr)

    rows_per_block = max(1, block_size // max(1, n_r))
    count = 0
    for start in range(0, n_s, rows_per_block):
        chunk = s_arr[start : start + rows_per_block]
        # (chunk, 1, d) vs (1, n_r, d)
        ge = np.all(chunk[:, None, :] >= r_arr[None, :, :], axis=2)
        gt = np.any(chunk[:, None, :] > r_arr[None, :, :], axis=2)
        count += int(np.count_nonzero(ge & gt))
    return count


def dominance_probability(
    s: Union[Group, np.ndarray],
    r: Union[Group, np.ndarray],
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Fraction:
    """Exact ``p(S > R)`` as a fraction (Definition 3's probability)."""
    s_values = s.values if isinstance(s, Group) else np.asarray(s, dtype=np.float64)
    r_values = r.values if isinstance(r, Group) else np.asarray(r, dtype=np.float64)
    total = s_values.shape[0] * r_values.shape[0]
    if total == 0:
        raise ValueError("groups must be non-empty")
    return Fraction(count_dominating_pairs(s_values, r_values, block_size), total)


def gamma_dominates(
    s: Union[Group, np.ndarray],
    r: Union[Group, np.ndarray],
    gamma: GammaLike = Fraction(1, 2),
    allow_unsafe: bool = False,
) -> bool:
    """``S ≻_γ R`` per Definition 3 (``p = 1`` or ``p > γ``)."""
    thresholds = GammaThresholds(gamma, allow_unsafe=allow_unsafe)
    p = dominance_probability(s, r)
    return dominance_holds(p.numerator, p.denominator, thresholds.gamma)


class DominanceMatrix:
    """0/1 domination matrix between two groups (Prop. 5's proof device).

    ``M[i, j] = 1`` iff record ``i`` of the first group dominates record
    ``j`` of the second.  ``pos()`` is the fraction of non-zero entries,
    which equals ``p(S > R)``; the boolean matrix product of two domination
    matrices is again a domination matrix (record dominance is transitive),
    which is what makes weak transitivity provable.
    """

    def __init__(self, matrix: np.ndarray):
        array = np.asarray(matrix)
        if array.ndim != 2:
            raise ValueError("domination matrix must be 2-d")
        self.matrix = (array != 0)

    @classmethod
    def between(cls, s: Union[Group, np.ndarray], r: Union[Group, np.ndarray]) -> "DominanceMatrix":
        s_values = s.values if isinstance(s, Group) else np.asarray(s, dtype=np.float64)
        r_values = r.values if isinstance(r, Group) else np.asarray(r, dtype=np.float64)
        ge = np.all(s_values[:, None, :] >= r_values[None, :, :], axis=2)
        gt = np.any(s_values[:, None, :] > r_values[None, :, :], axis=2)
        return cls(ge & gt)

    @property
    def shape(self) -> Tuple[int, int]:
        return tuple(self.matrix.shape)  # type: ignore[return-value]

    def pos(self) -> Fraction:
        """Fraction of non-zero entries (``pos`` in the paper's proof)."""
        rows, cols = self.matrix.shape
        if rows == 0 or cols == 0:
            raise ValueError("empty domination matrix")
        return Fraction(int(np.count_nonzero(self.matrix)), rows * cols)

    def compose(self, other: "DominanceMatrix") -> "DominanceMatrix":
        """Boolean matrix product: a domination matrix for (R, T).

        If ``self`` relates R to S and ``other`` relates S to T, an entry of
        the product is non-zero iff some ``s`` satisfies ``r > s`` and
        ``s > t`` — and record dominance being transitive, ``r > t``.
        """
        if self.matrix.shape[1] != other.matrix.shape[0]:
            raise ValueError("inner dimensions do not match")
        product = self.matrix.astype(np.int64) @ other.matrix.astype(np.int64)
        return DominanceMatrix(product)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"DominanceMatrix(shape={self.shape}, pos={float(self.pos()):.3f})"
