"""Result and statistics types for aggregate-skyline computations."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, List, Optional

__all__ = ["AlgorithmStats", "AggregateSkylineResult", "Timer"]


@dataclass
class AlgorithmStats:
    """Work counters of one aggregate-skyline run.

    The paper analyses algorithms by the number of group comparisons
    (Equation 3's outer term) and record-level dominance checks (Equation 4's
    inner term); both are tracked here, plus wall-clock time and counters for
    the individual optimisations.  The same counters are flushed into the
    process-global :mod:`repro.obs.metrics` registry after every run.
    """

    algorithm: str = ""
    group_comparisons: int = 0
    record_pairs_examined: int = 0
    bbox_shortcuts: int = 0
    groups_skipped: int = 0
    index_candidates: int = 0
    stopping_rule_exits: int = 0
    elapsed_seconds: float = 0.0

    @property
    def pairs_per_second(self) -> float:
        """Record-pair throughput (0 when no time was measured)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.record_pairs_examined / self.elapsed_seconds

    @property
    def shortcut_hit_rate(self) -> float:
        """Fraction of group comparisons fully resolved by MBB corners."""
        if self.group_comparisons <= 0:
            return 0.0
        return self.bbox_shortcuts / self.group_comparisons

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "group_comparisons": self.group_comparisons,
            "record_pairs_examined": self.record_pairs_examined,
            "bbox_shortcuts": self.bbox_shortcuts,
            "groups_skipped": self.groups_skipped,
            "index_candidates": self.index_candidates,
            "stopping_rule_exits": self.stopping_rule_exits,
            "elapsed_seconds": self.elapsed_seconds,
            # derived rates (for dashboards and benchmark diffs)
            "pairs_per_second": self.pairs_per_second,
            "shortcut_hit_rate": self.shortcut_hit_rate,
        }


@dataclass
class AggregateSkylineResult:
    """Output of an aggregate-skyline query.

    ``keys`` are the surviving group keys in input order; ``gamma`` is the
    threshold the query ran with, ``stats`` the work counters.  When tracing
    is enabled (:func:`repro.obs.tracing.enable_tracing`), ``trace`` holds
    the root :class:`~repro.obs.tracing.Span` of the run; render it with
    :func:`repro.obs.tracing.render_trace`.  ``plan`` is the planner's
    decision record (:meth:`repro.plan.PlanDecision.as_dict`) when the
    query went through the plan pipeline — for ``algorithm="auto"`` it
    carries the candidate costs and the statistics snapshot that drove the
    choice.  Both are metadata: excluded from equality so results stay
    comparable across entry paths.
    """

    keys: List[Hashable]
    gamma: float
    stats: AlgorithmStats = field(default_factory=AlgorithmStats)
    trace: Optional[object] = field(default=None, repr=False, compare=False)
    plan: Optional[dict] = field(default=None, repr=False, compare=False)

    def __iter__(self):
        return iter(self.keys)

    def __len__(self) -> int:
        return len(self.keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in set(self.keys)

    def as_set(self) -> set:
        return set(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AggregateSkylineResult(keys={self.keys!r},"
            f" gamma={self.gamma}, algorithm={self.stats.algorithm!r})"
        )


class Timer:
    """Reusable, re-entrant context-manager stopwatch.

    * ``elapsed`` can be read *while running* (live value) — progress
      callbacks poll it mid-run.
    * Re-entering an already running timer nests (depth counting): only the
      outermost exit stops the clock, so helper functions can share their
      caller's timer without clobbering ``_start``.
    * Reuse after completion restarts the measurement (each outermost
      ``with`` block times itself).
    * ``__exit__`` without a matching ``__enter__`` raises ``RuntimeError``
      instead of failing an ``assert`` (which ``python -O`` would skip).
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._start: Optional[float] = None
        self._depth = 0

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Seconds of the current (live) or last completed measurement."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed

    def reset(self) -> None:
        if self._depth:
            raise RuntimeError("cannot reset a running Timer")
        self._elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        if self._depth == 0:
            self._start = time.perf_counter()
        self._depth += 1
        return self

    def __exit__(self, *exc_info) -> None:
        if self._depth == 0 or self._start is None:
            raise RuntimeError("Timer.__exit__ without matching __enter__")
        self._depth -= 1
        if self._depth == 0:
            self._elapsed = time.perf_counter() - self._start
            self._start = None
