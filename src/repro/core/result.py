"""Result and statistics types for aggregate-skyline computations."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, List, Optional

__all__ = ["AlgorithmStats", "AggregateSkylineResult", "Timer"]


@dataclass
class AlgorithmStats:
    """Work counters of one aggregate-skyline run.

    The paper analyses algorithms by the number of group comparisons
    (Equation 3's outer term) and record-level dominance checks (Equation 4's
    inner term); both are tracked here, plus wall-clock time and counters for
    the individual optimisations.
    """

    algorithm: str = ""
    group_comparisons: int = 0
    record_pairs_examined: int = 0
    bbox_shortcuts: int = 0
    groups_skipped: int = 0
    index_candidates: int = 0
    elapsed_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "group_comparisons": self.group_comparisons,
            "record_pairs_examined": self.record_pairs_examined,
            "bbox_shortcuts": self.bbox_shortcuts,
            "groups_skipped": self.groups_skipped,
            "index_candidates": self.index_candidates,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass
class AggregateSkylineResult:
    """Output of an aggregate-skyline query.

    ``keys`` are the surviving group keys in input order; ``gamma`` is the
    threshold the query ran with, ``stats`` the work counters.
    """

    keys: List[Hashable]
    gamma: float
    stats: AlgorithmStats = field(default_factory=AlgorithmStats)

    def __iter__(self):
        return iter(self.keys)

    def __len__(self) -> int:
        return len(self.keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in set(self.keys)

    def as_set(self) -> set:
        return set(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AggregateSkylineResult(keys={self.keys!r},"
            f" gamma={self.gamma}, algorithm={self.stats.algorithm!r})"
        )


class Timer:
    """Minimal context-manager stopwatch used by algorithms and benches."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
