"""The persistent worker pool behind :class:`repro.engine.SkylineEngine`.

The one-shot executor (:mod:`repro.parallel.executor`) builds a fresh
``multiprocessing.Pool`` per run and ships the dataset through the pool
initializer — correct, but every query pays interpreter spawn, payload
shipping and worker-side ``Group`` materialisation again.  This module
keeps the worker processes *alive across queries*:

* **slots** — the pool is a fixed set of worker slots, each one long-lived
  ``Process`` with its own control queue; chunk tasks flow through one
  shared task queue that idle workers claim dynamically (the engine
  analogue of the work-stealing scheduler: decreasing guided chunks +
  self-scheduling against a shared tail).
* **attach once** — a dataset is shipped once (``ShmArena`` segments when
  shared memory is available, pickled inline otherwise) and pinned in
  every worker under a token; packed R-tree arrays and candidate orders
  are pinned the same way, keyed by content digest, so repeat queries
  ship nothing but tiny ``(qid, span)`` tuples.
* **surviving-pool reuse** — when a worker dies the pool respawns *only
  the dead slot* (PR 7's "next step"): the survivors keep their pids and
  their pinned state, the replacement replays the attach/pin log, and the
  in-flight query's undelivered chunks are re-enqueued.  Duplicated
  deliveries are harmless — chunks are deterministic, the parent keeps
  the first result per span.
* **per-worker retry budgets** — each slot may be respawned at most
  ``max_respawns`` times over the pool's lifetime (not per run).  A slot
  that exhausts its budget is retired; the pool narrows.  When every slot
  is gone the query either finishes inline on the parent
  (``on_failure="serial"``) or raises
  :class:`~repro.parallel.executor.WorkerCrashError`.
* **concurrent admission** — many threads may call :meth:`run_query`
  at once (the network front-end in :mod:`repro.net` does).  Every
  delivery is tagged ``(qid, span)``: a parent-side *router thread*
  drains the one shared result queue and routes each message to its
  query's pending record, deduplicating by span within the query, so
  interleaved chunk streams never cross.  Workers hold one
  ``_WorkerQuery`` per active qid — each query keeps its own
  comparator, reset per chunk — which is why interleaving does not
  perturb any ``AlgorithmStats`` counter.

Determinism: chunks execute the exact kernels of the one-shot executor
(:func:`~repro.parallel.executor.compare_span` /
:func:`~repro.parallel.executor.compare_candidate_span`) with a fresh
comparator reset per chunk, and the parent merges outcomes in span order —
so results *and every work counter* are bit-identical to a cold serial
run, regardless of scheduling, crashes and respawns.

Telemetry rides the obs v2 vocabulary: ``slot_respawn`` run-log events,
``engine_*`` metrics counters and worker-side ``parallel.chunk`` trace
spans grafted back through :attr:`ChunkOutcome.spans`.
"""

from __future__ import annotations

import multiprocessing as mp
import hashlib
import os
import threading
import time
import weakref
from dataclasses import dataclass, field
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..obs import metrics as obs_metrics
from ..obs import runlog as obs_runlog
from ..obs import tracing as obs_tracing
from ..obs.tracing import TraceContext, Tracer
from ..parallel.executor import (
    ChunkOutcome,
    PoolTimeoutError,
    WorkerConfig,
    WorkerCrashError,
    _signal_name,
    comparator_for,
    compare_candidate_span,
    compare_span,
    preferred_start_method,
)
from ..parallel.faults import FaultSpec
from ..parallel.shm import (
    ArrayRef,
    ShmArena,
    detach_all,
    load_arrays,
    load_groups,
    ship_arrays,
    ship_groups,
    shm_available,
)

__all__ = ["PersistentPool", "EngineClosedError"]


class EngineClosedError(RuntimeError):
    """The engine (or its pool) was used after :meth:`close`."""


#: How long a worker sleeps on the shared task queue before re-checking
#: its control queue — the latency ceiling for attach/prepare/stop.
_TASK_POLL_SECONDS = 0.05

#: Parent-side liveness cadence while draining results (mirrors the
#: one-shot executor's ``_LIVENESS_POLL_SECONDS``).
_LIVENESS_POLL_SECONDS = 0.25

#: A worker that waits longer than this for the prepare of a claimed
#: chunk gives the task up as stale (defensive; the parent's pool
#: timeout is the real backstop).
_PREPARE_WAIT_SECONDS = 60.0


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------


class _WorkerQuery:
    """Per-query state inside one worker: comparator, kernel inputs, tracer."""

    __slots__ = ("config", "kind", "groups", "index", "order", "comparator", "tracer")

    def __init__(self, config, kind, groups, index, order, trace_ctx):
        self.config = config
        self.kind = kind
        self.groups = groups
        self.index = index
        self.order = order
        self.comparator = comparator_for(config)
        self.tracer = (
            Tracer(context=trace_ctx)
            if trace_ctx is not None
            else obs_tracing.NOOP_TRACER
        )


def _execute_worker_chunk(query: _WorkerQuery, span, slot: int, fault) -> ChunkOutcome:
    """One chunk in an engine worker — mirrors the executor's ``_run_chunk``
    exactly (fresh counter reset, same kernels, same outcome fields), so a
    warm chunk is bit-identical to a cold pool or inline chunk."""
    if fault is not None:
        fault.maybe_fire()
    comparator = query.comparator
    comparator.reset_stats()
    chunk_span = query.tracer.span(
        "parallel.chunk",
        start=span[0],
        stop=span[1],
        kind=query.kind,
        slot=slot,
        stolen=False,
        pid=os.getpid(),
    )
    started = time.perf_counter()
    skipped = 0
    window_queries = 0
    index_candidates = 0
    with chunk_span:
        if query.kind == "candidates":
            verdicts, window_queries, index_candidates = compare_candidate_span(
                query.groups, comparator, query.index, query.order, span
            )
        else:
            verdicts, skipped = compare_span(
                query.groups,
                comparator,
                span,
                prune_policy=query.config.prune_policy,
                flags=None,
                exchange_interval=0,
            )
        if chunk_span.is_recording:
            chunk_span.set_attribute("verdicts", len(verdicts))
            chunk_span.set_attribute("comparisons", comparator.comparisons)
            chunk_span.set_attribute("pairs_examined", comparator.pairs_examined)
            if window_queries:
                chunk_span.set_attribute("window_queries", window_queries)
                chunk_span.set_attribute("index_candidates", index_candidates)
    outcome = ChunkOutcome(
        start=span[0],
        stop=span[1],
        verdicts=verdicts,
        comparisons=comparator.comparisons,
        pairs_examined=comparator.pairs_examined,
        bbox_shortcuts=comparator.bbox_shortcuts,
        stopping_rule_exits=comparator.stopping_rule_exits,
        pairs_skipped=skipped,
        elapsed_seconds=time.perf_counter() - started,
        worker_pid=os.getpid(),
        window_queries=window_queries,
        index_candidates=index_candidates,
        slot=slot,
        stolen=False,
    )
    if chunk_span.is_recording:
        outcome.spans = [chunk_span.to_dict()]
    return outcome


class _WorkerState:
    """Everything a long-lived engine worker accumulates."""

    def __init__(self):
        self.groups: Dict[str, list] = {}  # token -> List[Group]
        self.pinned: Dict[str, Any] = {}  # digest key -> index / order
        self.queries: Dict[int, _WorkerQuery] = {}
        self.finished: set = set()
        self.watermark: int = -1  # qids below this and unknown are stale
        self.stop = False


def _worker_handle_ctrl(state: _WorkerState, msg, slot: int, results) -> None:
    kind = msg[0]
    if kind == "attach":
        _, token, shipment = msg
        state.groups[token] = load_groups(shipment)
        results.put(("ack", slot, os.getpid(), token))
    elif kind == "pin":
        _, key, tag, payload = msg
        if tag == "index":
            from ..index.rtree import FlatRTree

            state.pinned[key] = FlatRTree.from_arrays(load_arrays(payload))
        else:  # "order"
            if isinstance(payload, ArrayRef):
                from ..parallel.shm import attach_array

                state.pinned[key] = attach_array(payload)
            else:
                state.pinned[key] = payload
        results.put(("ack", slot, os.getpid(), key))
    elif kind == "prepare":
        _, qid, token, config, qkind, index_key, order_key, trace_ctx = msg
        state.queries[qid] = _WorkerQuery(
            config,
            qkind,
            state.groups[token],
            state.pinned[index_key] if index_key is not None else None,
            state.pinned[order_key] if order_key is not None else None,
            trace_ctx,
        )
    elif kind == "finish":
        _, qid = msg
        state.queries.pop(qid, None)
        state.finished.add(qid)
    elif kind == "detach":
        _, token, keys = msg
        state.groups.pop(token, None)
        for key in keys:
            state.pinned.pop(key, None)
        results.put(("ack", slot, os.getpid(), token))
    elif kind == "watermark":
        state.watermark = max(state.watermark, msg[1])
    elif kind == "stop":
        state.stop = True


def _engine_worker_main(slot, ctrl, tasks, results, faults, fault_state) -> None:
    """Main loop of one engine worker slot.

    Control messages (attach / pin / prepare / finish / stop) arrive on
    the slot's private ``ctrl`` queue and are drained before every task
    claim; chunk tasks ``(qid, span)`` are claimed from the shared
    ``tasks`` queue.  Observability mirrors the pool initializer: the
    run log is silenced, the global tracer is a no-op, and each query
    carries its own :class:`TraceContext` so worker chunk spans graft
    back onto the parent trace.
    """
    obs_runlog.set_runlog(obs_runlog.NOOP_RUNLOG)
    obs_tracing.set_tracer(obs_tracing.NOOP_TRACER)
    fault = faults.arm(fault_state) if faults is not None else None
    state = _WorkerState()
    try:
        while not state.stop:
            while True:
                try:
                    msg = ctrl.get_nowait()
                except Empty:
                    break
                _worker_handle_ctrl(state, msg, slot, results)
            if state.stop:
                break
            try:
                task = tasks.get(timeout=_TASK_POLL_SECONDS)
            except Empty:
                continue
            qid, span = task
            if qid in state.finished:
                continue
            waited = 0.0
            stale = False
            while qid not in state.queries:
                # The prepare for this qid is still in flight on the ctrl
                # queue (the parent always sends prepares before chunks) —
                # or the task predates this worker's respawn watermark.
                if qid in state.finished or qid < state.watermark:
                    stale = True
                    break
                try:
                    msg = ctrl.get(timeout=1.0)
                except Empty:
                    waited += 1.0
                    if waited >= _PREPARE_WAIT_SECONDS:
                        stale = True
                        break
                    continue
                _worker_handle_ctrl(state, msg, slot, results)
                if state.stop:
                    return
            if stale or qid not in state.queries:
                continue
            try:
                outcome = _execute_worker_chunk(
                    state.queries[qid], tuple(span), slot, fault
                )
            except BaseException as exc:  # noqa: BLE001 - shipped to parent
                results.put(("chunk_error", slot, os.getpid(), qid, tuple(span), exc))
                continue
            results.put(("chunk", slot, os.getpid(), qid, outcome))
    finally:
        detach_all()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


@dataclass
class _Slot:
    """One worker slot: its live process, control queue and retry budget."""

    index: int
    process: Any
    ctrl: Any
    pid: int
    respawns: int = 0
    failures: int = 0  # worker tracebacks charged against the budget
    disabled: bool = False


def _release_pool_state(state: Dict[str, list]) -> None:
    """GC / exit-time cleanup: kill processes, drop queues, free segments.

    Idempotent and exception-safe; registered through ``weakref.finalize``
    so an engine that is never closed still cannot leak processes, pipe
    feeder threads or ``/dev/shm`` segments.
    """
    for proc in state.get("processes", ()):
        try:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
    state["processes"] = []
    for q in state.get("queues", ()):
        try:
            q.close()
            q.cancel_join_thread()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
    state["queues"] = []
    for arena in state.get("arenas", ()):
        try:
            arena.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
    state["arenas"] = []


def _engine_counter(name: str, help_text: str):
    return obs_metrics.get_registry().counter(name, help_text, ())


class _AckWait:
    """One thread blocked on attach/pin acknowledgements from every slot."""

    __slots__ = ("key", "pending", "cond", "error")

    def __init__(self, key: str, pending: Set[int], cond: "threading.Condition"):
        self.key = key
        self.pending = pending  # slot indices still owing an ack
        self.cond = cond
        self.error: Optional[BaseException] = None


class _PendingQuery:
    """Parent-side record of one in-flight query on the shared pool.

    The router thread owns delivery: it moves spans out of
    ``outstanding`` into ``outcomes`` (worker deliveries, deduplicated
    by span) or ``inline`` (serial-fallback spans the *waiting* thread
    must execute itself — chunk kernels never run on the router).  All
    fields are guarded by the pool lock; ``cond`` shares it.
    """

    __slots__ = (
        "qid", "outstanding", "outcomes", "inline", "total", "on_failure",
        "progress", "inline_fallback", "cond", "error",
    )

    def __init__(
        self, qid, outstanding, total, on_failure, progress,
        inline_fallback, cond,
    ):
        self.qid = qid
        self.outstanding: Set[Tuple[int, int]] = outstanding
        self.outcomes: List[ChunkOutcome] = []
        self.inline: List[Tuple[int, int]] = []
        self.total = total
        self.on_failure = on_failure
        self.progress = progress
        self.inline_fallback = inline_fallback
        self.cond = cond
        self.error: Optional[BaseException] = None

    def fail(self, exc: BaseException) -> None:
        if self.error is None:
            self.error = exc
        self.cond.notify_all()


class PersistentPool:
    """A fixed set of long-lived worker slots shared by many queries.

    Created by :class:`~repro.engine.SkylineEngine` at first attach;
    everything here is synchronous and single-owner (one engine, one
    thread).  See the module docstring for the protocol and the fault
    model.
    """

    def __init__(
        self,
        workers: int,
        *,
        start_method: Optional[str] = None,
        shm: Optional[bool] = None,
        max_respawns: int = 2,
        faults: Optional[FaultSpec] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {max_respawns}")
        self.workers = workers
        self.start_method = start_method or preferred_start_method()
        self._ctx = mp.get_context(self.start_method)
        # Workers outlive any single attach, so fork inheritance cannot
        # carry late-attached datasets: shared memory is the default
        # shipping path whenever the platform offers it.
        self.use_shm = shm_available() if shm is None else bool(shm) and shm_available()
        self.max_respawns = max_respawns
        self.total_respawns = 0
        self._faults = faults
        self._fault_state = self._ctx.Value("i", 0) if faults is not None else None
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._replay: List[tuple] = []  # attach/pin log replayed on respawn
        self._arenas: Dict[str, ShmArena] = {}
        self._pinned: Dict[str, tuple] = {}  # key -> (tag, strong payload ref)
        self._pin_keys_by_token: Dict[str, List[str]] = {}
        #: prepare messages of every in-flight query, replayed on respawn
        self._active_prepares: Dict[int, tuple] = {}
        self._next_qid = 0
        self._closed = False
        # Concurrent admission: the pool lock guards qid allocation, slot
        # casualty handling, the replay log and every pending record; the
        # ship lock serialises attach/pin shipping (rare, content-deduped)
        # so two threads never double-ship the same payload.
        self._lock = threading.Lock()
        self._ship_lock = threading.Lock()
        self._pending: Dict[int, _PendingQuery] = {}
        self._ack_waits: Dict[str, List[_AckWait]] = {}
        self._router_stop = False
        self._last_survey = time.monotonic()
        self._state = {
            "processes": [],
            "queues": [self._tasks, self._results],
            "arenas": [],
        }
        self._finalizer = weakref.finalize(self, _release_pool_state, self._state)
        self._slots: List[_Slot] = [self._spawn_slot(i) for i in range(workers)]
        self._router = threading.Thread(
            target=self._route_loop, name="repro-engine-router", daemon=True
        )
        self._router.start()

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def live_slots(self) -> List[_Slot]:
        return [slot for slot in self._slots if not slot.disabled]

    @property
    def pids(self) -> List[int]:
        """Current pid of every non-retired slot (tests assert on these)."""
        return [slot.pid for slot in self.live_slots]

    def _spawn_slot(self, index: int) -> _Slot:
        ctrl = self._ctx.Queue()
        process = self._ctx.Process(
            target=_engine_worker_main,
            args=(
                index,
                ctrl,
                self._tasks,
                self._results,
                self._faults,
                self._fault_state,
            ),
            daemon=True,
            name=f"repro-engine-{index}",
        )
        process.start()
        # The watermark marks qids *below every in-flight query* stale —
        # using _next_qid here would race the replayed prepares and let
        # the fresh worker drop live tasks it claims before its ctrl
        # queue drains.
        watermark = min(self._active_prepares, default=self._next_qid)
        ctrl.put(("watermark", watermark))
        for msg in self._replay:
            ctrl.put(msg)
        for qid in sorted(self._active_prepares):
            ctrl.put(self._active_prepares[qid])
        self._state["processes"].append(process)
        self._state["queues"].append(ctrl)
        return _Slot(index=index, process=process, ctrl=ctrl, pid=process.pid)

    def close(self) -> None:
        """Stop the workers and release every owned resource (idempotent).

        Graceful first — a ``stop`` message lets workers run their own
        teardown (shm detach) — then the ``weakref.finalize`` hook
        terminates stragglers, drops the queue feeder threads and unlinks
        the shared-memory arenas.
        """
        if self._closed:
            return
        self._closed = True
        self._router_stop = True
        router = getattr(self, "_router", None)
        if (
            router is not None
            and router.is_alive()
            and router is not threading.current_thread()
        ):
            router.join(timeout=2.0)
        with self._lock:
            closed = EngineClosedError("the engine pool has been closed")
            for pending in self._pending.values():
                pending.fail(closed)
            for waits in self._ack_waits.values():
                for wait in waits:
                    wait.error = closed
                    wait.cond.notify_all()
        for slot in self.live_slots:
            try:
                slot.ctrl.put(("stop",))
            except Exception:  # pragma: no cover - queue already broken
                pass
        deadline = time.monotonic() + 5.0
        for slot in self.live_slots:
            slot.process.join(timeout=max(0.0, deadline - time.monotonic()))
        self._finalizer()

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise EngineClosedError("the engine pool has been closed")

    # ------------------------------------------------------------------
    # shipping: attach datasets, pin derived artifacts

    def attach(self, token: str, groups: Sequence, *, timeout: float = 300.0) -> bool:
        """Ship *groups* to every worker and pin them under *token*.

        Returns True when the payload travelled via shared memory.
        """
        self._require_open()
        with self._ship_lock:
            arena = None
            if self.use_shm:
                arena = ShmArena()
                self._arenas[token] = arena
                self._state["arenas"].append(arena)
            shipment = ship_groups(groups, arena)
            msg = ("attach", token, shipment)
            wait = self._ship(msg, token, replay=msg)
            self._await_acks(wait, timeout)
            return shipment.via_shm

    def detach(self, token: str, *, timeout: float = 300.0) -> None:
        """Drop the dataset and its pinned artifacts from every worker."""
        self._require_open()
        with self._ship_lock:
            with self._lock:
                keys = self._pin_keys_by_token.pop(token, [])
                msg = ("detach", token, tuple(keys))
                self._replay = [
                    m
                    for m in self._replay
                    if not (m[0] == "attach" and m[1] == token)
                    and not (m[0] == "pin" and m[1] in keys)
                ]
                for key in keys:
                    self._pinned.pop(key, None)
                wait = self._register_ack_wait(token)
                self._broadcast(msg)
            self._await_acks(wait, timeout)
            arena = self._arenas.pop(token, None)
            if arena is not None:
                arena.close()

    def pin_index(self, token: str, index, *, timeout: float = 300.0) -> str:
        """Pin a packed FlatRTree's arrays in every worker; returns its key.

        Keys are content digests, so the same cached artifact
        (:func:`repro.core.artifacts.packed_rtree` returns the same array
        dict across queries) ships exactly once per engine — including
        when two concurrent queries race to pin it.
        """
        arrays = index.arrays()
        digest = hashlib.blake2b(digest_size=12)
        for name in sorted(arrays):
            array = arrays[name]
            digest.update(name.encode())
            digest.update(str(array.shape).encode())
            digest.update(array.dtype.str.encode())
            digest.update(array.tobytes())
        key = f"{token}/index/{digest.hexdigest()}"
        with self._ship_lock:
            if key in self._pinned:
                return key
            payload = ship_arrays(arrays, self._arenas.get(token))
            self._pin(token, key, "index", payload, arrays, timeout)
        return key

    def pin_order(self, token: str, order: Sequence[int], *, timeout: float = 300.0) -> str:
        """Pin a candidate access order in every worker; returns its key."""
        import numpy as np

        array = np.asarray(list(order), dtype=np.int64)
        digest = hashlib.blake2b(array.tobytes(), digest_size=12).hexdigest()
        key = f"{token}/order/{digest}"
        with self._ship_lock:
            if key in self._pinned:
                return key
            arena = self._arenas.get(token)
            payload: Any
            if arena is not None:
                payload = arena.share(array)
            else:
                payload = tuple(int(i) for i in array)
            self._pin(token, key, "order", payload, array, timeout)
        return key

    def _pin(self, token, key, tag, payload, strong_ref, timeout) -> None:
        self._require_open()
        msg = ("pin", key, tag, payload)
        with self._lock:
            self._pinned[key] = (tag, strong_ref)
            self._pin_keys_by_token.setdefault(token, []).append(key)
            self._replay.append(msg)
            wait = self._register_ack_wait(key)
            self._broadcast(msg)
        self._await_acks(wait, timeout)

    def _ship(self, msg: tuple, ack_key: str, *, replay: Optional[tuple]) -> _AckWait:
        """Broadcast *msg* with the pool lock held; returns the ack wait.

        The wait is registered *before* the broadcast so the router
        cannot drop acks that race the registration.
        """
        with self._lock:
            if replay is not None:
                self._replay.append(replay)
            wait = self._register_ack_wait(ack_key)
            self._broadcast(msg)
        return wait

    def _register_ack_wait(self, key: str) -> _AckWait:
        """Create an ack wait for *key* (caller holds the pool lock)."""
        wait = _AckWait(
            key,
            {slot.index for slot in self.live_slots},
            threading.Condition(self._lock),
        )
        self._ack_waits.setdefault(key, []).append(wait)
        return wait

    def _broadcast(self, msg: tuple) -> None:
        """Send *msg* to every live slot (caller holds the pool lock)."""
        for slot in self.live_slots:
            slot.ctrl.put(msg)

    def _await_acks(self, wait: _AckWait, timeout: float) -> None:
        """Block until every live slot acknowledged the wait's key.

        Crashes during the wait are handled by the router's liveness
        survey: a dead slot is respawned (budget permitting) and its
        replayed attach/pin log produces the missing ack from the new
        process; a retired slot is dropped from the wait.
        """
        deadline = time.monotonic() + timeout
        try:
            with self._lock:
                while wait.pending and wait.error is None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise PoolTimeoutError(
                            f"engine workers failed to acknowledge"
                            f" {wait.key!r} within {timeout:.0f}s"
                            f" ({len(wait.pending)} slot(s) pending)"
                        )
                    wait.cond.wait(timeout=min(_LIVENESS_POLL_SECONDS, remaining))
            if wait.error is not None:
                raise wait.error
        finally:
            with self._lock:
                waits = self._ack_waits.get(wait.key)
                if waits is not None and wait in waits:
                    waits.remove(wait)
                    if not waits:
                        self._ack_waits.pop(wait.key, None)

    # ------------------------------------------------------------------
    # queries

    def run_query(
        self,
        token: str,
        config: WorkerConfig,
        spans: Sequence[Tuple[int, int]],
        *,
        kind: str = "pairs",
        index_key: Optional[str] = None,
        order_key: Optional[str] = None,
        pool_timeout: float = 300.0,
        on_failure: str = "raise",
        progress: Optional[Callable[[int, int], None]] = None,
        inline_fallback: Optional[Callable[[Tuple[int, int]], ChunkOutcome]] = None,
    ) -> List[ChunkOutcome]:
        """Run *spans* of one query over the warm pool; ordered outcomes.

        Safe to call from many threads at once: the parent enqueues every
        chunk as a ``(qid, span)``-tagged task on the shared queue, the
        router thread routes deliveries back to this query's pending
        record (deduplicating by span within the query), and the calling
        thread blocks on the record until it completes, fails, or the
        pool timeout expires.  On a crash the router respawns only the
        dead slot and re-enqueues every in-flight query's undelivered
        chunks (``on_failure != "raise"``).  ``inline_fallback`` finishes
        remaining chunks on the *calling* thread when no slot survives
        and the policy is ``"serial"``.
        """
        self._require_open()
        self.ensure_healthy()
        if not self.live_slots:
            if on_failure == "serial" and inline_fallback is not None:
                return self._finish_inline(spans, [], set(spans), inline_fallback)
            raise WorkerCrashError(
                "no live engine worker slots remain (respawn budgets exhausted)"
            )
        trace_ctx = obs_tracing.current_trace_context()
        outstanding = {(int(a), int(b)) for a, b in spans}
        with self._lock:
            qid = self._next_qid
            self._next_qid += 1
            prepare = (
                "prepare",
                qid,
                token,
                config,
                kind,
                index_key,
                order_key,
                trace_ctx,
            )
            self._active_prepares[qid] = prepare
            pending = _PendingQuery(
                qid,
                outstanding=set(outstanding),
                total=len(outstanding),
                on_failure=on_failure,
                progress=progress,
                inline_fallback=inline_fallback,
                cond=threading.Condition(self._lock),
            )
            self._pending[qid] = pending
            self._broadcast(prepare)
            for span in sorted(outstanding):
                self._tasks.put((qid, span))
        try:
            self._drain_pending(pending, pool_timeout)
        finally:
            with self._lock:
                self._pending.pop(qid, None)
                self._active_prepares.pop(qid, None)
                if not self._closed:
                    self._broadcast(("finish", qid))
        outcomes = pending.outcomes
        outcomes.sort(key=lambda outcome: (outcome.start, outcome.stop))
        return outcomes

    def _drain_pending(self, pending: _PendingQuery, pool_timeout: float) -> None:
        """Block until *pending* completes; run its serial-fallback spans.

        Inline spans are executed outside the pool lock — the router only
        ever *assigns* them, the thread that owns the query runs them.
        """
        deadline = time.monotonic() + pool_timeout
        while True:
            inline_spans: List[Tuple[int, int]] = []
            with self._lock:
                while True:
                    if pending.error is not None:
                        raise pending.error
                    if pending.inline:
                        inline_spans = sorted(pending.inline)
                        pending.inline.clear()
                        break
                    if not pending.outstanding:
                        return
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise PoolTimeoutError(
                            f"engine pool produced no result within"
                            f" {pool_timeout:.0f}s ({len(self.live_slots)} live"
                            f" slots, {len(pending.outstanding)} chunks"
                            f" outstanding)"
                        )
                    pending.cond.wait(
                        timeout=min(_LIVENESS_POLL_SECONDS, remaining)
                    )
            for span in inline_spans:
                outcome = pending.inline_fallback(tuple(span))
                with self._lock:
                    pending.outcomes.append(outcome)

    # ------------------------------------------------------------------
    # the router: delivery routing, liveness, fault handling

    def _route_loop(self) -> None:
        """Drain the shared result queue and run the liveness survey.

        The single reader of ``self._results``: chunk deliveries, chunk
        errors and attach/pin acks are routed to their pending records
        under the pool lock.  Casualties are detected here too, on the
        same cadence as the one-shot executor's liveness poll.
        """
        while not self._router_stop:
            try:
                msg = self._results.get(timeout=_LIVENESS_POLL_SECONDS)
            except Empty:
                msg = None
            except (OSError, ValueError, EOFError):  # pragma: no cover
                break  # queue torn down under us mid-close
            with self._lock:
                if msg is not None:
                    self._route_locked(msg)
                now = time.monotonic()
                if now - self._last_survey >= _LIVENESS_POLL_SECONDS:
                    self._last_survey = now
                    self._survey_locked()

    def _route_locked(self, msg: tuple) -> None:
        kind = msg[0]
        if kind == "chunk":
            _, slot_index, pid, qid, outcome = msg
            pending = self._pending.get(qid)
            if pending is None:
                return  # stale delivery for a finished/abandoned query
            span = (outcome.start, outcome.stop)
            if span not in pending.outstanding:
                return  # duplicate delivery (respawn over-enqueue): dedup
            pending.outstanding.discard(span)
            pending.outcomes.append(outcome)
            if pending.progress is not None:
                done = pending.total - len(pending.outstanding) - len(pending.inline)
                pending.progress(done, pending.total)
            if not pending.outstanding:
                pending.cond.notify_all()
        elif kind == "chunk_error":
            _, slot_index, pid, qid, span, exc = msg
            pending = self._pending.get(qid)
            span = tuple(span)
            if pending is None or span not in pending.outstanding:
                return
            self._handle_chunk_error_locked(pending, slot_index, span, exc)
        elif kind == "ack":
            _, slot_index, pid, key = msg
            for wait in self._ack_waits.get(key, ()):
                wait.pending.discard(slot_index)
                if not wait.pending:
                    wait.cond.notify_all()
        # anything else is a stale message from a dead worker: ignore

    def _handle_chunk_error_locked(
        self, pending: _PendingQuery, slot_index: int, span, exc
    ) -> None:
        """A chunk raised inside a surviving worker (worker-traceback model)."""
        obs_runlog.emit_error(
            "pool_error",
            exc,
            slot=slot_index,
            chunk=list(span),
            scope="engine",
        )
        if pending.on_failure == "raise":
            pending.fail(exc)
            return
        slot = self._slots[slot_index]
        if slot.failures < self.max_respawns:
            slot.failures += 1
            obs_runlog.emit(
                "chunk_retry",
                attempt=slot.failures,
                max_retries=self.max_respawns,
                chunks=1,
                scope="engine",
                slot=slot_index,
            )
            self._tasks.put((pending.qid, span))
            return
        if pending.on_failure == "serial" and pending.inline_fallback is not None:
            pending.outstanding.discard(span)
            pending.inline.append(span)
            obs_runlog.emit("pool_fallback", chunks=1, scope="engine")
            pending.cond.notify_all()
            return
        pending.fail(exc)

    def _survey_locked(self) -> None:
        """Liveness poll: detect casualties, respawn/retire, recover chunks.

        Fail-fast (``on_failure="raise"``) queries are failed without a
        respawn — the pool repairs itself lazily on the next
        :meth:`run_query` via :meth:`ensure_healthy`, exactly like the
        single-query engine did.  Queries under ``"retry"``/``"serial"``
        (and threads blocked on attach/pin acks) trigger an immediate
        single-slot respawn and a re-enqueue of every undelivered chunk.
        """
        crashed = self._collect_casualties()
        if not crashed:
            return
        _engine_counter(
            "engine_worker_crashes_total",
            "Engine worker processes that died mid-session",
        ).inc(len(crashed))
        pids = [slot.pid for slot in crashed]
        exitcodes = [slot.process.exitcode for slot in crashed]
        detail = ", ".join(
            f"pid {slot.pid}"
            f" ({_signal_name(slot.process.exitcode) or f'exit {slot.process.exitcode}'})"
            for slot in crashed
        )
        survivors_needed = False
        for pending in self._pending.values():
            if pending.error is not None:
                continue
            if pending.on_failure == "raise":
                pending.fail(
                    WorkerCrashError(
                        f"engine worker crashed mid-query: {detail};"
                        f" {len(pending.outstanding)} chunk(s) undelivered",
                        pids=pids,
                        exitcodes=exitcodes,
                        lost_spans=sorted(pending.outstanding),
                    )
                )
            else:
                survivors_needed = True
        ack_waits = [
            wait
            for waits in self._ack_waits.values()
            for wait in waits
            if wait.error is None
        ]
        if not survivors_needed and not ack_waits:
            return  # leave the casualties to the lazy repair path
        for slot in crashed:
            self._handle_casualty(slot, respawn=True)
        live = {slot.index for slot in self.live_slots}
        if not live:
            for wait in ack_waits:
                wait.error = WorkerCrashError(
                    "every engine worker slot died while attaching",
                    pids=pids,
                    exitcodes=exitcodes,
                )
                wait.cond.notify_all()
            for pending in self._pending.values():
                if pending.error is not None or pending.on_failure == "raise":
                    continue
                if (
                    pending.on_failure == "serial"
                    and pending.inline_fallback is not None
                ):
                    spans = sorted(pending.outstanding)
                    pending.outstanding.clear()
                    pending.inline.extend(spans)
                    obs_runlog.emit(
                        "pool_fallback", chunks=len(spans), scope="engine"
                    )
                    _engine_counter(
                        "engine_serial_fallbacks_total",
                        "Engine queries finished inline after losing every"
                        " worker slot",
                    ).inc(1)
                    pending.cond.notify_all()
                else:
                    pending.fail(
                        WorkerCrashError(
                            "every engine worker slot is gone (respawn"
                            " budgets exhausted);"
                            f" {len(pending.outstanding)} chunk(s) undelivered",
                            pids=pids,
                            exitcodes=exitcodes,
                            lost_spans=sorted(pending.outstanding),
                        )
                    )
            return
        for wait in ack_waits:
            wait.pending &= live
            if not wait.pending:
                wait.cond.notify_all()
        # Re-enqueue everything undelivered for every surviving query:
        # chunks the dead worker held AND chunks still queued — duplicates
        # are deduplicated by (qid, span) on delivery, so over-submission
        # is safe.
        for pending in self._pending.values():
            if pending.error is not None or pending.on_failure == "raise":
                continue
            for span in sorted(pending.outstanding):
                self._tasks.put((pending.qid, span))

    # ------------------------------------------------------------------
    # fault handling

    def _collect_casualties(self) -> List[_Slot]:
        return [
            slot
            for slot in self._slots
            if not slot.disabled and slot.process.exitcode is not None
        ]

    def _handle_casualty(self, slot: _Slot, *, respawn: bool) -> None:
        """Retire or respawn one dead slot (caller holds the pool lock)."""
        exitcode = slot.process.exitcode
        old_pid = slot.pid
        can_respawn = respawn and slot.respawns < self.max_respawns
        if can_respawn:
            slot.ctrl.close()
            slot.ctrl.cancel_join_thread()
            replacement = self._spawn_slot(slot.index)
            slot.process = replacement.process
            slot.ctrl = replacement.ctrl
            slot.pid = replacement.pid
            slot.respawns += 1
            self.total_respawns += 1
            # _spawn_slot appended a fresh _Slot-shaped record's resources
            # to the finalizer state already; the slot list keeps its
            # original entry with the swapped process.
            self._slots[slot.index] = slot
            _engine_counter(
                "engine_slot_respawns_total",
                "Engine worker slots respawned after a crash",
            ).inc(1)
        else:
            slot.disabled = True
            _engine_counter(
                "engine_slots_retired_total",
                "Engine worker slots retired after exhausting their"
                " respawn budget",
            ).inc(1)
        obs_runlog.emit(
            "slot_respawn",
            slot=slot.index,
            old_pid=old_pid,
            new_pid=slot.pid if can_respawn else None,
            exitcode=exitcode,
            signal=_signal_name(exitcode),
            respawned=can_respawn,
            respawns=slot.respawns,
            budget=self.max_respawns,
        )

    def _finish_inline(self, spans, outcomes, outstanding, inline_fallback):
        """Run every remaining chunk on the parent (serial fallback)."""
        obs_runlog.emit("pool_fallback", chunks=len(outstanding), scope="engine")
        _engine_counter(
            "engine_serial_fallbacks_total",
            "Engine queries finished inline after losing every worker slot",
        ).inc(1)
        for span in sorted(outstanding):
            outcomes.append(inline_fallback(tuple(span)))
        outstanding.clear()
        outcomes.sort(key=lambda outcome: (outcome.start, outcome.stop))
        return outcomes

    def ensure_healthy(self) -> int:
        """Respawn every repairable dead slot; returns the live-slot count.

        Called at the top of each query so a crash under
        ``on_failure="raise"`` (which fails the query immediately) still
        leaves the pool usable for the next one.
        """
        self._require_open()
        with self._lock:
            for slot in self._collect_casualties():
                self._handle_casualty(slot, respawn=True)
            return len(self.live_slots)
