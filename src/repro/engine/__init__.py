"""Persistent aggregate-skyline engine: session API over a resident pool.

See :mod:`repro.engine.session` (the public :class:`SkylineEngine` /
:class:`DatasetHandle` surface) and :mod:`repro.engine.pool` (the
long-lived worker-slot pool with surviving-pool reuse and per-worker
respawn budgets), plus ``docs/engine.md`` for lifecycle, batching and
failure semantics.
"""

from .pool import EngineClosedError, PersistentPool
from .session import DatasetHandle, EngineStats, SkylineEngine

__all__ = [
    "SkylineEngine",
    "DatasetHandle",
    "EngineStats",
    "PersistentPool",
    "EngineClosedError",
]
