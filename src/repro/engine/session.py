"""The session-oriented public API: :class:`SkylineEngine`.

``aggregate_skyline()`` answers one query and tears everything down —
pool, shipped payload, pinned index.  Under the service workload the
ROADMAP targets (many queries against a resident dataset, the assumption
group-skyline work such as Yu et al.'s contour computation and
Bhattacharya & Teja's aggregate skyline joins also makes), that cold
path wastes almost all of its time on setup.  The engine amortises it:

* :meth:`SkylineEngine.attach` ships a dataset to a persistent worker
  pool (:class:`~repro.engine.pool.PersistentPool`) **once** and returns
  a :class:`DatasetHandle`;
* :meth:`SkylineEngine.query` runs one ``(dims, gamma, algorithm,
  execution)`` query — warm-eligible algorithms (``PAR`` and the
  parallel ``IN``/``LO`` paths) execute their chunk spans over the
  resident pool, everything else runs the unchanged cold path;
* :meth:`SkylineEngine.submit_batch` pipelines many queries over the
  shared pool;
* :meth:`SkylineEngine.close` (or the context manager) releases the
  worker processes and every shared-memory segment deterministically.

Determinism contract
--------------------
A warm query builds the *same* algorithm object with the same spans,
worker config, index and candidate order as a cold
``aggregate_skyline()`` call; only the span executor is swapped (the
``_pool_runner`` hook).  Chunk kernels, per-chunk comparator resets and
the span-ordered merge are shared code, so warm results **and every
``AlgorithmStats`` counter** are bit-identical to cold, serial runs.

Failure semantics
-----------------
Worker deaths surface within a liveness-poll tick.  Under
``on_failure="retry"``/``"serial"`` the engine respawns only the dead
slot — surviving workers keep their pids and their pinned data — and
re-enqueues the undelivered chunks; each slot carries a lifetime respawn
budget (``ExecutionConfig.max_retries``).  ``"raise"`` fails the query
immediately and repairs the pool lazily before the next one.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..core import artifacts
from ..core.algorithms.sorted_access import SORT_KEYS
from ..core.dominance import Direction
from ..core.execution import ExecutionConfig, coerce_execution
from ..core.gamma import GammaLike
from ..core.groups import GroupedDataset
from ..core.result import AggregateSkylineResult
from ..obs import runlog as obs_runlog
from ..obs import metrics as obs_metrics
from ..plan import logical_for_dataset, optimize
from ..parallel.executor import (
    PoolRun,
    _reports_from_outcomes,
    comparator_for,
    execute_span_inline,
    resolve_workers,
)
from ..parallel.faults import FaultSpec
from .pool import EngineClosedError, PersistentPool

__all__ = ["SkylineEngine", "DatasetHandle", "EngineStats", "EngineClosedError"]

#: Algorithms whose pooled span execution the warm path can take over.
WARM_ALGORITHMS = ("PAR", "IN", "LO")


@dataclass
class EngineStats:
    """Lifetime counters of one engine session (see also ``engine_*`` metrics)."""

    attaches: int = 0
    queries: int = 0
    warm_queries: int = 0
    cold_queries: int = 0
    batches: int = 0
    slot_respawns: int = 0


class DatasetHandle:
    """A dataset resident in an engine: parent-side views + worker pins.

    Obtained from :meth:`SkylineEngine.attach`; pass it (or the raw
    dataset, which re-resolves to the same handle by fingerprint) to
    :meth:`SkylineEngine.query`.  ``dims`` projections are materialised
    parent-side once per dimension tuple and attached as child handles.
    """

    def __init__(self, engine: "SkylineEngine", dataset: GroupedDataset, token: str):
        self.engine = engine
        self.dataset = dataset
        self.token = token
        #: True when the payload travelled via shared memory.
        self.via_shm = False
        self._projections: Dict[Tuple[int, ...], "DatasetHandle"] = {}

    def __len__(self) -> int:
        return len(self.dataset)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"DatasetHandle(groups={len(self.dataset)},"
            f" token={self.token[:12]}..., via_shm={self.via_shm})"
        )

    def project(self, dims: Sequence[int]) -> "DatasetHandle":
        """Handle over the sub-space ``dims`` (columns of the value space).

        The projected dataset is built once per dimension tuple from the
        parent's normalised matrix (directions were applied at
        construction, so the slice needs none) and attached to the same
        engine; repeat queries over the same ``dims`` reuse it.
        """
        key = tuple(int(d) for d in dims)
        dimensions = self.dataset.dimensions
        for d in key:
            if not 0 <= d < dimensions:
                raise ValueError(
                    f"dims entry {d} out of range for a"
                    f" {dimensions}-dimensional dataset"
                )
        if len(set(key)) != len(key):
            raise ValueError(f"dims must not repeat, got {key}")
        handle = self._projections.get(key)
        if handle is None:
            projected = GroupedDataset(
                {
                    group.key: group.values[:, key]
                    for group in self.dataset.groups
                }
            )
            handle = self.engine.attach(projected)
            self._projections[key] = handle
        return handle


class SkylineEngine:
    """A long-lived aggregate-skyline session over a persistent pool.

    Parameters
    ----------
    execution:
        Default :class:`ExecutionConfig` (or mapping / spec string) for
        the session: its ``workers`` sizes the pool, ``max_retries`` is
        the per-slot lifetime respawn budget, ``on_failure`` the default
        crash policy.  ``None`` defaults to a work-stealing config sized
        by the standard worker resolution (``$REPRO_WORKERS`` → cpu).
    start_method:
        Multiprocessing start method for the pool (default: the
        platform/env preference, see ``$REPRO_START_METHOD``).
    faults:
        Fault-injection spec for tests and demos (default: honour
        ``$REPRO_FAULTS``); see :mod:`repro.parallel.faults`.

    Usage::

        with SkylineEngine(execution="workers=4,scheduler=stealing") as eng:
            movies = eng.attach(dataset)
            first = eng.query(movies, gamma=0.5, algorithm="LO")
            rest = eng.submit_batch(movies, [
                {"gamma": 0.6}, {"gamma": 0.7, "algorithm": "PAR"},
            ])

    The pool spins up lazily at the first :meth:`attach`; a purely cold
    engine (serial algorithms only) never forks at all.
    """

    def __init__(
        self,
        execution: Union[None, ExecutionConfig, str, Mapping] = None,
        *,
        start_method: Optional[str] = None,
        faults: Optional[FaultSpec] = None,
        _ephemeral: bool = False,
    ):
        execution = coerce_execution(execution)
        if execution is None:
            execution = ExecutionConfig(
                workers=resolve_workers(None), scheduler="stealing"
            )
        self.execution = execution
        self.start_method = start_method
        self._faults = faults if faults is not None else FaultSpec.from_env()
        self._ephemeral = _ephemeral
        self.stats = EngineStats()
        self._pool: Optional[PersistentPool] = None
        self._handles: Dict[str, DatasetHandle] = {}
        self._closed = False
        # Concurrent admission (repro.net, submit_batch(concurrency=N)):
        # attach/pool-creation/stats are guarded; query execution itself
        # runs outside the lock so chunk streams genuinely interleave on
        # the shared pool (the pool routes deliveries by (qid, span)).
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # lifecycle

    @classmethod
    def ephemeral(cls, execution=None) -> "SkylineEngine":
        """A one-shot engine: no persistent pool, no session telemetry.

        This is what :func:`repro.aggregate_skyline` wraps — queries run
        the exact legacy cold path (one-shot pools included), so the
        wrapper is behaviourally identical to the pre-engine API.
        """
        return cls(execution, _ephemeral=True)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pool(self) -> Optional[PersistentPool]:
        """The persistent pool, or ``None`` before the first attach."""
        return self._pool

    @property
    def worker_pids(self) -> List[int]:
        """Pids of the live worker slots (empty before the first attach)."""
        return [] if self._pool is None else self._pool.pids

    def close(self) -> None:
        """Release the pool, its queues and every shm segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._pool is not None:
            self.stats.slot_respawns = self._pool.total_respawns
            if not self._ephemeral and obs_runlog.get_runlog().enabled:
                obs_runlog.emit(
                    "engine_end",
                    queries=self.stats.queries,
                    warm_queries=self.stats.warm_queries,
                    attaches=self.stats.attaches,
                    slot_respawns=self._pool.total_respawns,
                )
            self._pool.close()
        self._handles.clear()

    def __enter__(self) -> "SkylineEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # GC safety net; the pool has its own finalizer
        if getattr(self, "_closed", True) or self._pool is None:
            return
        try:
            self._pool.close()
        except (OSError, ValueError, RuntimeError, EOFError) as exc:
            # The narrow set a queue/process/shm teardown can actually
            # raise.  Swallowing silently here used to hide leaked shm
            # segments and wedged worker slots — record the failure so
            # it is visible in the run log and the metrics registry.
            # Anything outside this set propagates (Python prints it as
            # "Exception ignored in __del__", which is the point).
            self._report_teardown_failure(exc)

    @staticmethod
    def _report_teardown_failure(exc: BaseException) -> None:
        """Make a failed engine/pool release visible (runlog + counter)."""
        try:
            obs_metrics.get_registry().counter(
                "engine_teardown_errors_total",
                "Engine pool releases that failed (possible leaked shm"
                " segments or worker slots)",
            ).inc(1)
            obs_runlog.emit_error("engine_teardown_error", exc, scope="engine")
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def _require_open(self) -> None:
        if self._closed:
            raise EngineClosedError("this SkylineEngine has been closed")

    # ------------------------------------------------------------------
    # attach

    def _ensure_pool(self) -> Optional[PersistentPool]:
        if self._ephemeral:
            return None
        with self._lock:
            return self._ensure_pool_locked()

    def _ensure_pool_locked(self) -> Optional[PersistentPool]:
        if self._pool is None:
            workers = self.execution.resolve_workers()
            if workers < 2:
                return None
            self._pool = PersistentPool(
                workers,
                start_method=self.start_method,
                shm=self.execution.shm,
                max_respawns=self.execution.max_retries,
                faults=self._faults,
            )
            obs_metrics.get_registry().counter(
                "engine_starts_total", "SkylineEngine pools started"
            ).inc(1)
            obs_runlog.emit(
                "engine_start",
                workers=workers,
                start_method=self._pool.start_method,
                shm=self._pool.use_shm,
                pids=self._pool.pids,
                respawn_budget=self.execution.max_retries,
            )
        return self._pool

    def attach(
        self,
        groups: Union[GroupedDataset, Mapping[Hashable, Iterable]],
        directions: Union[None, str, Direction, Sequence] = None,
        *,
        warm: bool = True,
    ) -> DatasetHandle:
        """Make a dataset resident: ship it to the pool, pin it, hand back
        a :class:`DatasetHandle`.

        Re-attaching content-identical data (same fingerprint) returns
        the existing handle without re-shipping.  With ``warm=True`` the
        packed R-tree and the default candidate order are precomputed
        (through the content-keyed :mod:`~repro.core.artifacts` cache)
        and pinned in every worker, so even the *first* ``IN``/``LO``
        query skips index shipping.
        """
        self._require_open()
        dataset = (
            groups
            if isinstance(groups, GroupedDataset) and directions is None
            else (
                groups
                if isinstance(groups, GroupedDataset)
                else GroupedDataset(groups, directions=directions)
            )
        )
        if isinstance(groups, GroupedDataset) and directions is not None:
            raise ValueError(
                "directions are fixed at GroupedDataset construction;"
                " do not pass them again"
            )
        token = dataset.fingerprint()
        with self._lock:
            handle = self._handles.get(token)
            if handle is not None:
                return handle
            handle = DatasetHandle(self, dataset, token)
            started = time.perf_counter()
            pool = self._ensure_pool_locked() if not self._ephemeral else None
            if pool is not None:
                handle.via_shm = pool.attach(
                    token, dataset.groups, timeout=self.execution.pool_timeout
                )
                if warm:
                    index = artifacts.packed_rtree(dataset)
                    pool.pin_index(token, index, timeout=self.execution.pool_timeout)
                    order = artifacts.sort_order(
                        dataset, "size_corner", SORT_KEYS["size_corner"]
                    )
                    pool.pin_order(token, order, timeout=self.execution.pool_timeout)
            self._handles[token] = handle
            self.stats.attaches += 1
        obs_metrics.get_registry().counter(
            "engine_attaches_total", "Datasets attached to a SkylineEngine"
        ).inc(1)
        if not self._ephemeral and obs_runlog.get_runlog().enabled:
            obs_runlog.emit(
                "attach",
                token=token[:16],
                groups=len(dataset),
                records=dataset.total_records,
                via_shm=handle.via_shm,
                warm=warm and pool is not None,
                elapsed_seconds=time.perf_counter() - started,
            )
        return handle

    def detach(self, handle: DatasetHandle) -> None:
        """Release a resident dataset (worker pins + shm segments)."""
        self._require_open()
        for child in handle._projections.values():
            self.detach(child)
        handle._projections.clear()
        if self._handles.pop(handle.token, None) is None:
            return
        if self._pool is not None:
            self._pool.detach(handle.token, timeout=self.execution.pool_timeout)

    # ------------------------------------------------------------------
    # queries

    def query(
        self,
        data: Union[DatasetHandle, GroupedDataset, Mapping[Hashable, Iterable]],
        *,
        gamma: GammaLike = 0.5,
        algorithm: str = "LO",
        execution: Union[None, ExecutionConfig, str, Mapping] = None,
        dims: Optional[Sequence[int]] = None,
        **options,
    ) -> AggregateSkylineResult:
        """Answer one aggregate-skyline query against resident data.

        ``execution`` defaults to the session's config; pass ``None``
        explicitly per query to inherit it, or any coercible shape
        (config / mapping / ``"k=v"`` spec) to override.  ``dims``
        restricts the query to a projection of the value space (resident
        per dimension tuple after the first use).  All other ``options``
        are the usual algorithm options, validated with did-you-mean
        suggestions by :func:`~repro.core.algorithms.make_algorithm`.

        Every query goes through the shared plan pipeline
        (:mod:`repro.plan`): ``algorithm="auto"`` lets the optimizer pick
        the engine from dataset statistics (decisions are memoised per
        ``(dataset fingerprint, plan shape)`` through the artifact cache,
        so warm repeats skip the probe); an explicit name is forced
        through unchanged — same construction, same counters, bit-for-bit.
        """
        self._require_open()
        execution = coerce_execution(execution)
        name = str(algorithm).upper()
        handle: Optional[DatasetHandle]
        if isinstance(data, DatasetHandle):
            if data.engine is not self:
                raise ValueError("DatasetHandle belongs to a different engine")
            handle = data
        elif self._ephemeral:
            handle = None
        else:
            handle = self.attach(data)
        if handle is not None and dims is not None:
            handle = handle.project(dims)
        if handle is not None:
            dataset = handle.dataset
        else:
            dataset = (
                data
                if isinstance(data, GroupedDataset)
                else GroupedDataset(data)
            )
            if dims is not None:
                dataset = GroupedDataset(
                    {
                        group.key: group.values[:, tuple(int(d) for d in dims)]
                        for group in dataset.groups
                    }
                )
        logical = logical_for_dataset(
            dataset, gamma=gamma, algorithm=name, dims=dims
        )
        physical = optimize(
            logical,
            dataset,
            gamma=gamma,
            algorithm=name,
            execution=execution,
            options=options,
            entry="api" if self._ephemeral else "engine",
        )
        name = physical.algorithm
        if (
            execution is None
            and not self._ephemeral
            and name in WARM_ALGORITHMS
        ):
            # Session default: warm-eligible algorithms inherit the
            # engine's config.  Ephemeral engines (the aggregate_skyline
            # wrapper) must not — execution=None keeps the legacy serial
            # path for IN/LO and PAR's legacy defaults.  Applied after
            # the optimizer resolved "auto": the decision was made for a
            # serial query, and PAR is never auto-picked without an
            # explicit ExecutionConfig, so the chosen algorithm is valid
            # under the session default too.
            execution = self.execution
            physical = physical.replace_execution(execution)
        engine_algorithm = physical.build_algorithm()
        warm = (
            handle is not None
            and self._pool is not None
            and not self._pool.closed
            and name in WARM_ALGORITHMS
            and execution is not None
            and execution.parallel
            and execution.resolve_workers() >= 2
            and execution.exchange_interval == 0
            and hasattr(engine_algorithm, "_pool_runner")
        )
        if warm:
            engine_algorithm._pool_runner = self._warm_runner(handle, execution)
        with self._lock:
            self.stats.queries += 1
            if warm:
                self.stats.warm_queries += 1
            else:
                self.stats.cold_queries += 1
        obs_metrics.get_registry().counter(
            "engine_queries_total",
            "Queries answered by a SkylineEngine",
            ("mode",),
        ).inc(1, mode="warm" if warm else "cold")
        emit_events = not self._ephemeral and obs_runlog.get_runlog().enabled
        if emit_events:
            obs_runlog.emit(
                "query_start",
                algorithm=name,
                gamma=str(gamma),
                groups=len(dataset),
                warm=warm,
                dims=list(dims) if dims is not None else None,
            )
        started = time.perf_counter()
        try:
            result = physical.execute(dataset, algorithm=engine_algorithm)
        except BaseException as exc:
            if emit_events:
                obs_runlog.emit_error("query_end", exc, algorithm=name, warm=warm)
            raise
        if emit_events:
            obs_runlog.emit(
                "query_end",
                algorithm=name,
                warm=warm,
                survivors=len(result.keys),
                elapsed_seconds=time.perf_counter() - started,
            )
        if self._pool is not None:
            self.stats.slot_respawns = self._pool.total_respawns
        return result

    def explain(
        self,
        data: Union[DatasetHandle, GroupedDataset, Mapping[Hashable, Iterable]],
        *,
        gamma: GammaLike = 0.5,
        algorithm: str = "auto",
        execution: Union[None, ExecutionConfig, str, Mapping] = None,
        dims: Optional[Sequence[int]] = None,
        measures: Optional[Sequence[str]] = None,
        **options,
    ) -> str:
        """Render the plan a :meth:`query` with these arguments would run,
        without executing it (and without attaching ``data`` or spinning
        up a pool).

        Statistics and candidate costs are probed even for an explicit
        ``algorithm`` so the tree always shows the optimizer's comparison;
        ``measures`` optionally names the skyline dimensions for display.
        """
        self._require_open()
        execution = coerce_execution(execution)
        name = str(algorithm).strip().upper()
        if isinstance(data, DatasetHandle):
            dataset = data.dataset
        elif isinstance(data, GroupedDataset):
            dataset = data
        else:
            dataset = GroupedDataset(data)
        if dims is not None:
            columns = tuple(int(d) for d in dims)
            dataset = GroupedDataset(
                {
                    group.key: group.values[:, columns]
                    for group in dataset.groups
                }
            )
        if execution is None and not self._ephemeral and name in WARM_ALGORITHMS:
            execution = self.execution
        logical = logical_for_dataset(
            dataset, gamma=gamma, algorithm=name, dims=dims, measures=measures
        )
        physical = optimize(
            logical,
            dataset,
            gamma=gamma,
            algorithm=name,
            execution=execution,
            options=options,
            entry="api" if self._ephemeral else "engine",
            probe=True,
        )
        return physical.render()

    def submit_batch(
        self,
        data: Union[DatasetHandle, GroupedDataset, Mapping[Hashable, Iterable]],
        queries: Sequence[Mapping[str, Any]],
        *,
        concurrency: int = 1,
    ) -> List[AggregateSkylineResult]:
        """Run many queries against one resident dataset over the shared
        pool; results in submission order.

        Each entry is a mapping of :meth:`query` keyword arguments
        (``gamma``, ``algorithm``, ``execution``, ``dims``, options...).
        The dataset is attached once up front; warm-eligible queries then
        ship nothing but chunk spans, and the pool's dynamic task queue
        keeps every worker busy across query boundaries (the engine-side
        analogue of the work-stealing scheduler).

        ``concurrency`` overlaps up to that many queries' chunk streams
        on the one resident pool — deliveries are routed by
        ``(query id, span)``, so results and every ``AlgorithmStats``
        counter stay bit-identical to running the batch sequentially.
        With ``concurrency=1`` the batch is fail-fast: the first failing
        query raises and the rest are not run.  With ``concurrency > 1``
        queries already in flight run to completion and the error of the
        earliest failing query is raised after they settle.
        """
        self._require_open()
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        handle = (
            data if isinstance(data, DatasetHandle) or self._ephemeral
            else self.attach(data)
        )
        with self._lock:
            self.stats.batches += 1
        if concurrency == 1 or len(queries) <= 1:
            results: List[AggregateSkylineResult] = []
            for spec in queries:
                results.append(self.query(handle, **dict(spec)))
            return results
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(
            max_workers=min(concurrency, len(queries)),
            thread_name_prefix="repro-engine-batch",
        ) as executor:
            futures = [
                executor.submit(self.query, handle, **dict(spec))
                for spec in queries
            ]
            outcome: List[Any] = []
            first_error: Optional[BaseException] = None
            for future in futures:
                try:
                    outcome.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = exc
                    outcome.append(None)
            if first_error is not None:
                raise first_error
            return outcome

    # ------------------------------------------------------------------
    # warm span execution

    def _warm_runner(self, handle: DatasetHandle, execution: ExecutionConfig):
        """A ``run_spans``-compatible closure over the persistent pool.

        The algorithm calls it exactly where it would call
        :func:`~repro.parallel.executor.run_spans`; the closure pins the
        query's index/order (content-keyed, so repeats ship nothing),
        schedules the spans on the resident workers and re-packages the
        outcomes as a :class:`~repro.parallel.executor.PoolRun`.
        ``scheduler``/``shm`` knobs are satisfied structurally (dynamic
        task queue, shipping decided at attach); ``max_retries`` is
        enforced as the pool's per-slot lifetime budget.
        """
        pool = self._pool
        token = handle.token

        def runner(
            groups,
            config,
            spans,
            workers,
            *,
            kind: str = "pairs",
            index=None,
            order=None,
            progress=None,
            pool_timeout: float = 300.0,
            on_failure: str = "raise",
            scheduler: str = "static",
            shm=None,
            owners=None,
            max_retries: int = 2,
            retry_backoff: float = 0.1,
            faults=None,
        ) -> PoolRun:
            index_key = (
                pool.pin_index(token, index, timeout=pool_timeout)
                if index is not None
                else None
            )
            order_key = (
                pool.pin_order(token, order, timeout=pool_timeout)
                if order is not None
                else None
            )

            def inline_fallback(span):
                return execute_span_inline(
                    groups, comparator_for(config), config, kind,
                    index, order, None, span,
                )

            outcomes = pool.run_query(
                token,
                config,
                spans,
                kind=kind,
                index_key=index_key,
                order_key=order_key,
                pool_timeout=pool_timeout,
                on_failure=on_failure,
                progress=progress,
                inline_fallback=inline_fallback,
            )
            return PoolRun(
                outcomes=outcomes, reports=_reports_from_outcomes(outcomes)
            )

        return runner
