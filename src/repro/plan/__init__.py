"""Unified query planning: one plan → optimize → execute pipeline.

Every aggregate-skyline entry path — :func:`repro.aggregate_skyline`, the
SQL executor and :class:`repro.engine.SkylineEngine` — compiles its
request to a :class:`LogicalPlan`, hands it to :func:`optimize` (which
resolves ``algorithm="auto"`` against cheap dataset statistics, or passes
an explicit name through untouched) and finishes via
:meth:`PhysicalPlan.execute`.  ``EXPLAIN``/`--explain` render the same
:func:`render_plan` tree from all of them.

Note this is distinct from :func:`repro.core.explain.explain`, which
explains *why a group was dominated*; this package explains *how a query
will run*.
"""

from .logical import (
    AggregateSkylineNode,
    FilterNode,
    GroupNode,
    LogicalNode,
    LogicalPlan,
    OrderLimitNode,
    ProjectNode,
    ScanNode,
    logical_for_dataset,
)
from .optimizer import (
    AUTO_ALGORITHM,
    HIGH_OVERLAP,
    TINY_PAIR_BUDGET,
    CandidateCost,
    PlanDecision,
    decide,
    estimate_costs,
    optimize,
)
from .physical import PhysicalPlan, render_plan
from .stats import PlanStatistics, collect_statistics, describe_statistics

__all__ = [
    "AUTO_ALGORITHM",
    "HIGH_OVERLAP",
    "TINY_PAIR_BUDGET",
    "AggregateSkylineNode",
    "CandidateCost",
    "FilterNode",
    "GroupNode",
    "LogicalNode",
    "LogicalPlan",
    "OrderLimitNode",
    "PhysicalPlan",
    "PlanDecision",
    "PlanStatistics",
    "ProjectNode",
    "ScanNode",
    "collect_statistics",
    "decide",
    "describe_statistics",
    "estimate_costs",
    "explain_dataset",
    "logical_for_dataset",
    "optimize",
    "render_plan",
]


def explain_dataset(
    dataset,
    *,
    gamma=0.5,
    algorithm: str = "auto",
    execution=None,
    dims=None,
    measures=None,
    options=None,
) -> str:
    """Render the plan a dataset-level query would run, without running it.

    The helper behind ``aggskyline skyline --explain`` and the serve
    REPL's ``explain`` command; :meth:`repro.engine.SkylineEngine.explain`
    delegates here too.  Probes statistics and candidate costs even for an
    explicitly forced algorithm, so the tree always shows the comparison.
    """
    from ..core.execution import coerce_execution
    from ..core.groups import GroupedDataset

    if dims is not None:
        columns = tuple(int(d) for d in dims)
        dataset = GroupedDataset(
            {group.key: group.values[:, columns] for group in dataset.groups}
        )
    logical = logical_for_dataset(
        dataset, gamma=gamma, algorithm=algorithm, dims=dims, measures=measures
    )
    physical = optimize(
        logical,
        dataset,
        gamma=gamma,
        algorithm=algorithm,
        execution=coerce_execution(execution),
        options=dict(options or {}),
        entry="explain",
        probe=True,
    )
    return physical.render()
