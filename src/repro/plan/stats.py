"""Cheap dataset statistics feeding the plan optimizer's cost model.

These are the shape parameters the paper's evaluation sweeps (Section 4):
group count, group-size distribution (Figure 13), dimensionality, and the
fraction of intersecting group MBBs (Figure 11's overlap regime).  All of
them come from structures the columnar backbone already holds zero-copy —
group sizes from the offsets table, MBBs from the corner matrices — except
the overlap probe, which samples pairs via
:func:`repro.core.artifacts.overlap_estimate` and is therefore memoised by
dataset fingerprint so repeated planning (and the ``AD`` algorithm) never
re-samples the same content.

Unlike :func:`repro.core.diagnostics.dataset_statistics` (a user-facing
diagnostic that *rejects* degenerate datasets), this collector never
raises: the planner must be able to plan empty or degenerate inputs too —
they simply cost nothing.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Mapping

import numpy as np

from ..core import artifacts

__all__ = ["PlanStatistics", "collect_statistics", "describe_statistics"]


@dataclass(frozen=True)
class PlanStatistics:
    """Shape snapshot of one dataset, as the optimizer sees it."""

    groups: int
    records: int
    dimensions: int
    min_group_size: int
    median_group_size: float
    max_group_size: int
    size_skew: float          # max / median; > ~5 means a heavy tail
    overlap: float            # sampled fraction of intersecting MBB pairs
    pair_budget: int          # worst-case record pairs (Eq. 3/4)

    def as_dict(self) -> dict:
        return asdict(self)

    def describe(self) -> str:
        return describe_statistics(self.as_dict())


def describe_statistics(stats: Mapping) -> str:
    """One-line rendering shared by ``EXPLAIN`` and the compare reports."""
    return (
        f"statistics: {stats['groups']} groups,"
        f" {stats['records']} records, d={stats['dimensions']};"
        f" sizes {stats['min_group_size']}/"
        f"{stats['median_group_size']:g}/{stats['max_group_size']}"
        f" (skew {stats['size_skew']:.1f});"
        f" overlap {stats['overlap']:.0%};"
        f" pair budget {stats['pair_budget']}"
    )


def collect_statistics(
    dataset, sample_pairs: int = 256, seed: int = 0
) -> PlanStatistics:
    """Measure ``dataset``; the overlap probe is content-memoised.

    Degenerate inputs (no groups, empty groups) yield zeroed statistics
    instead of raising — the cost model then collapses every candidate to
    its fixed overhead and the cheapest (NL) wins, which is correct: there
    is nothing to compute.
    """
    sizes = np.array([group.size for group in dataset], dtype=np.int64)
    if sizes.size == 0:
        return PlanStatistics(
            groups=0, records=0, dimensions=0,
            min_group_size=0, median_group_size=0.0, max_group_size=0,
            size_skew=0.0, overlap=0.0, pair_budget=0,
        )
    median = float(np.median(sizes))
    total = int(sizes.sum())
    pair_budget = int((total**2 - int((sizes**2).sum())) // 2)
    return PlanStatistics(
        groups=len(dataset),
        records=total,
        dimensions=dataset.dimensions,
        min_group_size=int(sizes.min()),
        median_group_size=median,
        max_group_size=int(sizes.max()),
        size_skew=float(sizes.max() / max(median, 1.0)),
        overlap=artifacts.overlap_estimate(
            dataset, sample_pairs=sample_pairs, seed=seed
        ),
        pair_budget=pair_budget,
    )
