"""Logical query plans shared by every aggregate-skyline entry path.

The three front doors — :func:`repro.aggregate_skyline`, the SQL executor
(:mod:`repro.query.executor`) and :meth:`repro.engine.SkylineEngine.query`
— historically each carried their own bespoke dispatch.  This module gives
them one shared intermediate representation: a linear chain of logical
operator nodes (scan → filter → group → aggregate-skyline → project →
order/limit), mirroring the dialect's evaluation order::

    FROM -> WHERE -> GROUP BY -> HAVING -> SKYLINE -> SELECT -> ORDER -> LIMIT

A :class:`LogicalPlan` is *what* to compute; picking *how* (which of the
paper's NL/TR/SI/IN/LO algorithms runs the skyline node, under which
:class:`~repro.core.execution.ExecutionConfig`) is the optimizer's job
(:mod:`repro.plan.optimizer`), producing a
:class:`~repro.plan.physical.PhysicalPlan`.

Every node exposes

* :meth:`~LogicalNode.signature` — a hashable tuple (callables excluded)
  so whole plans can key caches: :meth:`LogicalPlan.shape` is the tuple of
  node signatures and, together with the dataset fingerprint, identifies a
  cached planner decision in the :mod:`~repro.core.artifacts` cache;
* :meth:`~LogicalNode.describe` — the one-line rendering used by the
  ``EXPLAIN`` tree (shared verbatim by SQL, CLI and serve mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

__all__ = [
    "LogicalNode",
    "ScanNode",
    "FilterNode",
    "GroupNode",
    "AggregateSkylineNode",
    "ProjectNode",
    "OrderLimitNode",
    "LogicalPlan",
    "logical_for_dataset",
]


class LogicalNode:
    """Base class of the plan-node taxonomy (documentation anchor)."""

    def signature(self) -> Tuple:  # pragma: no cover - overridden
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass
class ScanNode(LogicalNode):
    """Produce the input relation: a catalog table or a grouped dataset.

    ``source`` is the table name for SQL plans; dataset-level plans (the
    API/engine entry paths) have no name — they describe the input by its
    group/record counts instead, so the rendered line is identical no
    matter which front door built the plan.
    """

    source: Optional[str] = None
    groups: Optional[int] = None
    records: Optional[int] = None

    def signature(self) -> Tuple:
        return ("scan", self.source, self.groups, self.records)

    def describe(self) -> str:
        if self.source is not None:
            suffix = f" ({self.records} rows)" if self.records is not None else ""
            return f"scan {self.source}{suffix}"
        return f"scan [{self.groups} groups, {self.records} records]"


@dataclass
class FilterNode(LogicalNode):
    """WHERE: keep the rows satisfying a boolean expression.

    ``predicate`` is the compiled row predicate (execution only; excluded
    from the signature so textually identical filters share cache keys).
    """

    description: str
    predicate: Optional[Callable] = field(default=None, repr=False, compare=False)

    def signature(self) -> Tuple:
        return ("filter", self.description)

    def describe(self) -> str:
        return f"filter {self.description}"


@dataclass
class GroupNode(LogicalNode):
    """GROUP BY (plus HAVING, which restricts which groups even compete).

    ``raw=True`` keeps the raw row partitions (the aggregate-skyline path
    feeds them to the algorithm); ``raw=False`` folds each partition to
    one row of aggregates (the plain GROUP BY path).
    """

    keys: Tuple[str, ...]
    raw: bool = False
    having: Optional[str] = None
    aggregates: Tuple[str, ...] = ()

    def signature(self) -> Tuple:
        return ("group", self.keys, self.raw, self.having, self.aggregates)

    def describe(self) -> str:
        text = f"group by [{', '.join(self.keys)}]"
        if self.aggregates:
            text += f" computing [{', '.join(self.aggregates)}]"
        if self.having is not None:
            text += f" having {self.having}"
        return text


@dataclass
class AggregateSkylineNode(LogicalNode):
    """The skyline operator — Definition 2 (grouped) or record-level.

    ``algorithm`` is the *requested* engine: an explicit name forces it,
    ``"AUTO"`` delegates the choice to the optimizer.  ``gamma`` is kept
    as given (float / Fraction / string); signatures stringify it.
    """

    measures: Tuple[str, ...] = ()
    directions: Tuple[str, ...] = ()
    gamma: Any = None
    algorithm: Optional[str] = None
    prune_policy: Optional[str] = None
    weight: Optional[str] = None
    record_level: bool = False

    def signature(self) -> Tuple:
        return (
            "aggregate-skyline",
            self.measures,
            self.directions,
            str(self.gamma),
            self.algorithm,
            self.prune_policy,
            self.weight,
            self.record_level,
        )

    def describe(self) -> str:
        if self.record_level:
            dims = ", ".join(
                f"{m} {d}" for m, d in zip(self.measures, self.directions)
            )
            return f"record-skyline of [{dims}]"
        if self.measures:
            dims = ", ".join(
                f"{m} {d}" for m, d in zip(self.measures, self.directions)
            )
        else:
            dims = ", ".join(self.directions)
        text = f"aggregate-skyline of [{dims}] γ={self.gamma}"
        if self.weight is not None:
            text += f" weight by {self.weight}"
        else:
            text += f" algorithm={self.algorithm}"
        if self.prune_policy is not None:
            text += f" prune={self.prune_policy}"
        return text


@dataclass
class ProjectNode(LogicalNode):
    """SELECT-list projection (with aliases resolved to output names).

    ``mode`` records which finishing pipeline the executor runs:
    ``"select"`` (plain rows), ``"record"`` (after a record skyline),
    ``"grouped-agg"`` (plain GROUP BY), ``"grouped-skyline"`` (regroup the
    surviving groups, then project) or ``"dims"`` (the engine's value-space
    projection of a grouped dataset).
    """

    columns: Tuple[str, ...]
    mode: str = "select"

    def signature(self) -> Tuple:
        return ("project", self.columns, self.mode)

    def describe(self) -> str:
        if self.mode == "dims":
            return f"project dims [{', '.join(self.columns)}]"
        return f"project [{', '.join(self.columns)}]"


@dataclass
class OrderLimitNode(LogicalNode):
    """ORDER BY / LIMIT; present even when empty so plan shapes align."""

    order: Tuple[Tuple[str, bool], ...] = ()
    limit: Optional[int] = None

    def signature(self) -> Tuple:
        return ("order-limit", self.order, self.limit)

    def describe(self) -> str:
        parts = []
        if self.order:
            rendered = ", ".join(
                f"{column}{' desc' if descending else ''}"
                for column, descending in self.order
            )
            parts.append(f"order by [{rendered}]")
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        return " ".join(parts) if parts else "order-limit (none)"


@dataclass
class LogicalPlan:
    """An ordered chain of logical nodes (first node produces the input)."""

    nodes: Tuple[LogicalNode, ...]

    def shape(self) -> Tuple:
        """Hashable identity of the plan's structure (cache-key half)."""
        return tuple(node.signature() for node in self.nodes)

    def skyline_node(self) -> Optional[AggregateSkylineNode]:
        for node in self.nodes:
            if isinstance(node, AggregateSkylineNode):
                return node
        return None

    def __iter__(self):
        return iter(self.nodes)


def logical_for_dataset(
    dataset,
    *,
    gamma,
    algorithm,
    dims=None,
    measures=None,
) -> LogicalPlan:
    """The canonical plan of a dataset-level query (API/engine/CLI paths):
    scan the grouped dataset, optionally project a value sub-space, run the
    aggregate-skyline operator.

    ``measures`` optionally names the skyline dimensions (the CLI knows
    its CSV columns; a raw :class:`~repro.core.groups.GroupedDataset` does
    not) so the rendered plan matches the SQL dialect's.
    """
    nodes: List[LogicalNode] = [
        ScanNode(groups=len(dataset), records=dataset.total_records)
    ]
    if dims is not None:
        nodes.append(
            ProjectNode(
                columns=tuple(str(int(d)) for d in dims), mode="dims"
            )
        )
    nodes.append(
        AggregateSkylineNode(
            measures=tuple(measures or ()),
            directions=tuple(d.value for d in dataset.directions),
            gamma=gamma,
            algorithm=str(algorithm).strip().upper(),
        )
    )
    return LogicalPlan(tuple(nodes))
