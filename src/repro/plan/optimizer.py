"""Statistics-driven choice of the physical skyline algorithm.

The paper's evaluation (Section 4) shows no algorithm wins everywhere:
``NL`` on tiny problems (every overhead dominates), ``SI`` when group MBBs
overlap heavily (Figure 11 — window queries return nearly everything while
the index still costs its build), the index methods ``LO``/``IN``
otherwise, ``PAR`` when a worker pool is available.  This module turns
that regime analysis into an explicit cost model over
:class:`~repro.plan.stats.PlanStatistics` and picks the cheapest *kept*
candidate; the guardrails that reject candidates mirror
:func:`repro.core.diagnostics.suggest_algorithm` exactly, so ``EXPLAIN``
and ``aggskyline stats`` never disagree.

Cost model (unit: comparator work ~ one record pair).  With ``P`` the pair
budget, ``G`` the group count, ``ω`` the sampled MBB overlap, ``γ`` the
threshold and ``w`` the resolved worker count (1 when serial)::

    NL  = 2γ·P
    TR  = 2_000 + 2γ·0.9·P                      (presort + early breaks)
    SI  = G·log2(G+1) + 5_000 + 2γ·0.55·P       (sorted access + bbox)
    IN  = 4G·log2(G+1) + 2_000 + 2γ·(0.20 + 0.80ω)·P / w
    LO  = 4G·log2(G+1) + 2_000 + 2γ·(0.12 + 0.55ω)·P / w
    PAR = 3_000 + 2γ·P / w
    SQL = 2γ·25·P                               (always rejected: baseline)

The pair-term coefficients are distilled from this reproduction's own
measurements (EXPERIMENTS.md): how much of the worst-case pair budget each
algorithm's optimisations typically shave, and how that saving erodes as
overlap grows for the window-query methods.  The uniform ``2γ`` factor
models γ's selectivity (larger γ keeps more groups alive longer); it
scales every candidate alike, so it shows sensitivity in ``EXPLAIN``
without flipping rankings.

Planner decisions for ``algorithm="auto"`` are memoised per
``(dataset fingerprint, plan shape, execution)`` through the
:mod:`~repro.core.artifacts` cache — a mutated
:class:`~repro.core.incremental.IncrementalAggregateSkyline` snapshot
changes its fingerprint and misses naturally, which *is* the invalidation
story.  Hits/misses surface as ``plan_cache_{hits,misses}_total`` counters
and every planning pass emits ``plan_start``/``plan_choice`` run-log
events, so planning is observable like every other phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core import artifacts
from ..core.algorithms import ALGORITHMS
from ..core.execution import ExecutionConfig
from ..obs import metrics as obs_metrics
from ..obs import runlog as obs_runlog
from .logical import LogicalPlan
from .stats import PlanStatistics, collect_statistics

__all__ = [
    "AUTO_ALGORITHM",
    "TINY_PAIR_BUDGET",
    "HIGH_OVERLAP",
    "CandidateCost",
    "PlanDecision",
    "estimate_costs",
    "decide",
    "optimize",
]

#: The ``algorithm=`` value that delegates the choice to this module.
AUTO_ALGORITHM = "AUTO"

#: Below this pair budget every overhead dominates — NL wins outright
#: (same threshold as :func:`repro.core.diagnostics.suggest_algorithm`).
TINY_PAIR_BUDGET = 50_000

#: At this sampled MBB overlap the window-query methods degenerate
#: (Figure 11's crossover; same threshold as ``AD`` and the diagnostics).
HIGH_OVERLAP = 0.65

#: Candidate order is fixed so EXPLAIN output is deterministic.
CANDIDATES = ("NL", "TR", "SI", "IN", "LO", "PAR", "SQL")


@dataclass(frozen=True)
class CandidateCost:
    """One candidate's estimated cost and keep/reject verdict."""

    algorithm: str
    cost: float
    kept: bool
    reason: str

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "cost": self.cost,
            "kept": self.kept,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CandidateCost":
        return cls(
            algorithm=str(data["algorithm"]),
            cost=float(data["cost"]),
            kept=bool(data["kept"]),
            reason=str(data["reason"]),
        )


@dataclass
class PlanDecision:
    """What the planner decided, and why — attached to every result.

    ``forced`` decisions (an explicit ``algorithm=`` through any entry
    path) carry no statistics or candidates unless they were probed for
    ``EXPLAIN``: the forced fast path must stay bit-identical to the
    pre-planner behaviour, including not sampling overlap pairs.
    """

    requested: str
    algorithm: str
    forced: bool
    cached: bool = False
    entry: str = "api"
    statistics: Optional[dict] = None
    candidates: Tuple[CandidateCost, ...] = ()

    def as_dict(self) -> dict:
        data: Dict[str, Any] = {
            "requested": self.requested,
            "algorithm": self.algorithm,
            "forced": self.forced,
            "cached": self.cached,
            "entry": self.entry,
        }
        if self.statistics is not None:
            data["statistics"] = dict(self.statistics)
        if self.candidates:
            data["candidates"] = [c.as_dict() for c in self.candidates]
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlanDecision":
        return cls(
            requested=str(data["requested"]),
            algorithm=str(data["algorithm"]),
            forced=bool(data["forced"]),
            cached=bool(data.get("cached", False)),
            entry=str(data.get("entry", "api")),
            statistics=(
                dict(data["statistics"])
                if data.get("statistics") is not None
                else None
            ),
            candidates=tuple(
                CandidateCost.from_dict(c)
                for c in data.get("candidates", ())
            ),
        )

    def describe_lines(self) -> List[str]:
        """The EXPLAIN annotation block under the skyline node.

        Deliberately excludes ``entry`` and ``cached`` so the same query
        renders the same tree from SQL, CLI and serve mode, on cold and
        repeat invocations alike.
        """
        from .stats import describe_statistics

        lines: List[str] = []
        if self.statistics is not None:
            lines.append(describe_statistics(self.statistics))
        for candidate in self.candidates:
            mark = ""
            if candidate.algorithm == self.algorithm:
                mark = "  <- forced by caller" if self.forced else "  <- chosen"
            lines.append(
                f"{candidate.algorithm:<4} cost≈{candidate.cost:,.0f}"
                f"  {candidate.reason}{mark}"
            )
        if not self.candidates:
            lines.append(
                f"algorithm {self.algorithm} forced by caller (not costed)"
            )
        return lines


def _gamma_factor(gamma) -> float:
    """``2γ`` as a float — γ may arrive as float, Fraction or string."""
    from ..core.gamma import GammaThresholds

    return 2.0 * float(GammaThresholds(gamma).gamma)


def estimate_costs(
    statistics: PlanStatistics,
    execution: Optional[ExecutionConfig],
    gamma=0.5,
) -> List[CandidateCost]:
    """Cost every candidate and apply the keep/reject guardrails."""
    pairs = float(max(statistics.pair_budget, 0))
    groups = max(statistics.groups, 1)
    overlap = statistics.overlap
    log_g = math.log2(groups + 1)
    index_overhead = 4.0 * groups * log_g + 2_000.0
    sort_overhead = groups * log_g
    parallel = execution is not None and execution.parallel
    workers = float(execution.resolve_workers()) if parallel else 1.0
    scale = _gamma_factor(gamma)

    costs = {
        "NL": scale * pairs,
        "TR": 2_000.0 + scale * 0.9 * pairs,
        "SI": sort_overhead + 5_000.0 + scale * 0.55 * pairs,
        "IN": index_overhead + scale * (0.20 + 0.80 * overlap) * pairs / workers,
        "LO": index_overhead + scale * (0.12 + 0.55 * overlap) * pairs / workers,
        "PAR": 3_000.0 + scale * pairs / workers,
        "SQL": scale * 25.0 * pairs,
    }

    tiny = statistics.pair_budget <= TINY_PAIR_BUDGET
    crowded = overlap >= HIGH_OVERLAP
    verdicts: List[CandidateCost] = []
    for name in CANDIDATES:
        kept = True
        reason = "kept"
        supports = getattr(ALGORITHMS[name], "supports_execution", False)
        if name == "SQL":
            kept = False
            reason = "rejected: sqlite measurement baseline, never auto-picked"
        elif execution is not None and not supports:
            kept = False
            reason = "rejected: no pooled path for the given ExecutionConfig"
        elif execution is None and name == "PAR":
            kept = False
            reason = "rejected: needs an ExecutionConfig (query is serial)"
        elif execution is None and tiny and name != "NL":
            kept = False
            reason = (
                f"rejected: pair budget ≤ {TINY_PAIR_BUDGET}"
                " — overheads dominate, NL wins tiny problems"
            )
        elif crowded and name in ("IN", "LO"):
            kept = False
            reason = (
                f"rejected: MBB overlap ≥ {HIGH_OVERLAP:.0%}"
                " — window queries degenerate (Figure 11)"
            )
        verdicts.append(
            CandidateCost(
                algorithm=name, cost=costs[name], kept=kept, reason=reason
            )
        )
    return verdicts


def _execution_signature(execution: Optional[ExecutionConfig]) -> Tuple:
    if execution is None:
        return ()
    return tuple(sorted(execution.to_dict().items()))


def decide(
    dataset,
    logical: LogicalPlan,
    *,
    gamma,
    algorithm: str,
    execution: Optional[ExecutionConfig] = None,
    entry: str = "api",
    probe: bool = False,
    sample_pairs: int = 256,
    seed: int = 0,
) -> PlanDecision:
    """Resolve ``algorithm`` (a name or ``"auto"``) to a `PlanDecision`.

    Explicit names short-circuit: no statistics probe, no cache traffic —
    the forced path stays bit-identical to pre-planner behaviour.
    ``probe=True`` (the EXPLAIN path) computes statistics and candidate
    costs even for a forced algorithm, so the rendered tree always shows
    what the optimizer *would* have said.
    """
    name = str(algorithm).strip().upper()
    forced = name != AUTO_ALGORITHM
    runlog_on = obs_runlog.get_runlog().enabled
    if runlog_on:
        obs_runlog.emit(
            "plan_start",
            entry=entry,
            requested=name,
            groups=len(dataset),
            gamma=str(gamma),
        )

    if forced and not probe:
        decision = PlanDecision(
            requested=name, algorithm=name, forced=True, entry=entry
        )
    elif forced:
        statistics = collect_statistics(
            dataset, sample_pairs=sample_pairs, seed=seed
        )
        decision = PlanDecision(
            requested=name,
            algorithm=name,
            forced=True,
            entry=entry,
            statistics=statistics.as_dict(),
            candidates=tuple(estimate_costs(statistics, execution, gamma)),
        )
    else:
        params = (
            logical.shape(),
            _execution_signature(execution),
            sample_pairs,
            seed,
        )
        built: List[bool] = []

        def build() -> dict:
            built.append(True)
            statistics = collect_statistics(
                dataset, sample_pairs=sample_pairs, seed=seed
            )
            candidates = estimate_costs(statistics, execution, gamma)
            kept = [c for c in candidates if c.kept]
            chosen = min(kept, key=lambda c: c.cost)
            return {
                "algorithm": chosen.algorithm,
                "statistics": statistics.as_dict(),
                "candidates": [c.as_dict() for c in candidates],
            }

        if artifacts.cache_enabled():
            payload = artifacts.get_cache().get_or_build(
                dataset, "plan_choice", params, build
            )
            cached = not built
        else:
            payload = build()
            cached = False
        obs_metrics.get_registry().counter(
            "plan_cache_hits_total" if cached else "plan_cache_misses_total",
            "Planner decisions served from the artifact cache"
            if cached
            else "Planner decisions computed from dataset statistics",
        ).inc(1)
        decision = PlanDecision(
            requested=name,
            algorithm=payload["algorithm"],
            forced=False,
            cached=cached,
            entry=entry,
            statistics=dict(payload["statistics"]),
            candidates=tuple(
                CandidateCost.from_dict(c) for c in payload["candidates"]
            ),
        )

    if runlog_on:
        obs_runlog.emit(
            "plan_choice",
            entry=entry,
            requested=name,
            algorithm=decision.algorithm,
            forced=decision.forced,
            cached=decision.cached,
        )
    return decision


def optimize(
    logical: LogicalPlan,
    dataset,
    *,
    gamma,
    algorithm: str,
    execution: Optional[ExecutionConfig] = None,
    options: Optional[Mapping[str, Any]] = None,
    entry: str = "api",
    probe: bool = False,
    sample_pairs: int = 256,
    seed: int = 0,
):
    """Decide the physical algorithm and wrap everything executable.

    The one planning entry point shared by ``aggregate_skyline``, the SQL
    executor and ``SkylineEngine.query``; returns a
    :class:`~repro.plan.physical.PhysicalPlan`.
    """
    from .physical import PhysicalPlan

    decision = decide(
        dataset,
        logical,
        gamma=gamma,
        algorithm=algorithm,
        execution=execution,
        entry=entry,
        probe=probe,
        sample_pairs=sample_pairs,
        seed=seed,
    )
    return PhysicalPlan(
        logical=logical,
        decision=decision,
        gamma=gamma,
        execution=execution,
        options=dict(options or {}),
    )
