"""The executable half of a plan: decision + config + render.

A :class:`PhysicalPlan` binds a :class:`~repro.plan.logical.LogicalPlan`
to the optimizer's :class:`~repro.plan.optimizer.PlanDecision` and the
execution knobs (γ, :class:`~repro.core.execution.ExecutionConfig`,
algorithm options).  All three entry paths finish through
:meth:`PhysicalPlan.execute`, which builds the algorithm with the *same*
``make_algorithm`` call the pre-planner code used — a forced explicit
algorithm therefore computes a bit-identical skyline with bit-identical
:class:`~repro.core.result.AlgorithmStats` counters — and stamps the
decision onto the result (``result.plan``) for persistence and reports.

:func:`render_plan` draws the ``EXPLAIN`` tree (output operator on top,
scan at the bottom); the aggregate-skyline node carries the decision's
statistics and candidate-cost annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from ..core.execution import ExecutionConfig
from .logical import AggregateSkylineNode, LogicalPlan
from .optimizer import PlanDecision

__all__ = ["PhysicalPlan", "render_plan"]


@dataclass
class PhysicalPlan:
    """An optimized, runnable plan for one aggregate-skyline query."""

    logical: LogicalPlan
    decision: PlanDecision
    gamma: Any
    execution: Optional[ExecutionConfig] = None
    options: Dict[str, Any] = field(default_factory=dict)

    @property
    def algorithm(self) -> str:
        """The resolved physical algorithm name."""
        return self.decision.algorithm

    def replace_execution(
        self, execution: Optional[ExecutionConfig]
    ) -> "PhysicalPlan":
        """The same plan under a different execution config (the engine
        applies its session default after the algorithm is resolved)."""
        return replace(self, execution=execution)

    def build_algorithm(self):
        """Instantiate the chosen algorithm — the exact ``make_algorithm``
        call (name, γ, execution, options) the pre-planner entry paths
        made, so validation errors and did-you-mean hints are unchanged."""
        from ..core.algorithms import make_algorithm

        return make_algorithm(
            self.decision.algorithm,
            self.gamma,
            execution=self.execution,
            **self.options,
        )

    def execute(self, dataset, algorithm=None):
        """Run the plan against ``dataset`` and annotate the result.

        ``algorithm`` lets a caller pass a pre-built (possibly warm-wired)
        instance of :meth:`build_algorithm`'s output — the engine swaps in
        its pool runner before computing.
        """
        engine = algorithm if algorithm is not None else self.build_algorithm()
        result = engine.compute(dataset)
        result.plan = self.decision.as_dict()
        return result

    def render(self) -> str:
        """The EXPLAIN tree for this plan."""
        return render_plan(self.logical, self.decision)


def render_plan(
    logical: LogicalPlan, decision: Optional[PlanDecision] = None
) -> str:
    """Draw a plan as a tree: last operator on top, scan at the bottom.

    The aggregate-skyline node is annotated with the decision's statistics
    line and one line per candidate (cost, keep/reject reason, chosen
    marker).  The annotation block is byte-identical for the same dataset,
    γ and requested algorithm no matter which entry path asked, which is
    what lets ``EXPLAIN`` output be compared across SQL, CLI and serve
    mode.
    """
    lines: List[str] = []
    nodes = list(logical.nodes)
    for depth, node in enumerate(reversed(nodes)):
        if depth == 0:
            prefix = ""
        else:
            prefix = "   " * (depth - 1) + "└─ "
        lines.append(prefix + node.describe())
        if decision is not None and isinstance(node, AggregateSkylineNode):
            annotation_prefix = "   " * depth + "·  "
            for extra in decision.describe_lines():
                lines.append(annotation_prefix + extra)
    return "\n".join(lines)
