"""Named workloads: the evaluation's recurring configurations, by name.

Examples, tests and ad-hoc experiments keep needing "the paper's default
anti-correlated workload" or "the high-overlap stress case"; this registry
gives them stable names and one place to tweak.  Every workload accepts a
``scale`` factor multiplying the record count (group sizes scale with the
square root so both loops of Equation 3/4 grow).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from ..core.groups import GroupedDataset
from .synthetic import SyntheticSpec, generate_grouped

__all__ = ["WORKLOADS", "load_workload", "workload_names"]


def _spec(scale: float, **overrides) -> SyntheticSpec:
    base = {
        "n_records": 10_000,
        "avg_group_size": 100,
        "dimensions": 5,
        "distribution": "independent",
        "group_spread": 0.2,
        "size_distribution": "uniform",
        "seed": 0,
    }
    base.update(overrides)
    n = max(50, int(base["n_records"] * scale))
    size = max(5, int(base["avg_group_size"] * math.sqrt(scale)))
    base["n_records"] = n
    base["avg_group_size"] = min(size, n)
    return SyntheticSpec(**base)


WORKLOADS: Dict[str, Callable[[float], SyntheticSpec]] = {
    # the paper's Section-4 default parameters
    "paper-default": lambda scale: _spec(scale),
    # the hardest standard distribution (large skylines)
    "anticorrelated": lambda scale: _spec(
        scale, distribution="anticorrelated"
    ),
    # the easiest (strong pruning everywhere)
    "correlated": lambda scale: _spec(scale, distribution="correlated"),
    # Figure 11's stress case: group MBBs overlap heavily
    "high-overlap": lambda scale: _spec(
        scale, distribution="anticorrelated", group_spread=0.8
    ),
    # Figure 13a: heavy-tailed group sizes
    "zipf-heavy": lambda scale: _spec(
        scale,
        distribution="anticorrelated",
        size_distribution="zipf",
        zipf_exponent=1.2,
    ),
    # many tiny groups: the regime closest to a record skyline
    "many-tiny-groups": lambda scale: _spec(
        scale, distribution="anticorrelated", avg_group_size=5
    ),
    # few huge groups: the internal-cost regime
    "few-huge-groups": lambda scale: _spec(
        scale, distribution="independent", avg_group_size=1000
    ),
}


def workload_names() -> List[str]:
    return sorted(WORKLOADS)


def load_workload(name: str, scale: float = 0.1) -> GroupedDataset:
    """Instantiate a named workload at ``scale`` (1.0 = paper size)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {workload_names()}"
        ) from None
    return generate_grouped(builder(scale))
