"""Synthetic grouped-data generator (Section 4.1's workloads).

The paper evaluates on the three classical skyline distributions of
Börzsönyi et al. [5] — independent, correlated and anti-correlated — adapted
to groups (the acknowledgements credit an adaptation of [5]'s generator):

* group *centers* are drawn from the chosen distribution in the unit cube;
* each group's records are spread uniformly around its center over a
  configurable fraction of the data space (``group_spread`` — the paper's
  default is 20 %, and Figure 11's *overlap* experiment sweeps it);
* records-per-group follow either a uniform or a Zipfian (heavy-tail)
  distribution (Figure 13a).

All randomness flows through a seeded :class:`numpy.random.Generator`, so
every experiment is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.groups import GroupedDataset

__all__ = [
    "DISTRIBUTIONS",
    "SyntheticSpec",
    "generate_points",
    "zipf_group_sizes",
    "uniform_group_sizes",
    "generate_grouped",
]

DISTRIBUTIONS = ("independent", "correlated", "anticorrelated")


def generate_points(
    count: int,
    dimensions: int,
    distribution: str,
    rng: np.random.Generator,
) -> np.ndarray:
    """``count`` points in ``[0, 1]^dimensions`` from a named distribution.

    * ``independent`` — uniform in the cube.
    * ``correlated`` — points hug the main diagonal: a common base value per
      point plus small per-dimension noise (records good in one dimension
      tend to be good in all).
    * ``anticorrelated`` — points hug the anti-diagonal hyperplane
      ``sum(x) = d/2``: a record good in one dimension tends to be bad in
      another, which maximises incomparability (the hardest case for
      skylines, as the paper notes).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if dimensions < 1:
        raise ValueError("dimensions must be positive")
    if distribution == "independent":
        return rng.uniform(0.0, 1.0, size=(count, dimensions))
    if distribution == "correlated":
        base = rng.uniform(0.0, 1.0, size=(count, 1))
        noise = rng.normal(0.0, 0.08, size=(count, dimensions))
        return np.clip(base + noise, 0.0, 1.0)
    if distribution == "anticorrelated":
        base = np.clip(
            rng.normal(0.5, 0.12, size=(count, 1)), 0.0, 1.0
        )
        offsets = rng.uniform(-0.5, 0.5, size=(count, dimensions))
        # Zero-sum offsets keep each point near the plane sum(x) = d * base.
        offsets -= offsets.mean(axis=1, keepdims=True)
        return np.clip(base + offsets, 0.0, 1.0)
    raise ValueError(
        f"unknown distribution {distribution!r}; choose from {DISTRIBUTIONS}"
    )


def uniform_group_sizes(
    total_records: int, group_count: int
) -> List[int]:
    """Split ``total_records`` into ``group_count`` near-equal sizes."""
    if group_count < 1:
        raise ValueError("group_count must be positive")
    if total_records < group_count:
        raise ValueError("need at least one record per group")
    base, remainder = divmod(total_records, group_count)
    return [base + (1 if i < remainder else 0) for i in range(group_count)]


def zipf_group_sizes(
    total_records: int,
    group_count: int,
    exponent: float = 1.0,
) -> List[int]:
    """Heavy-tailed sizes: group ``k`` gets weight ``1 / k**exponent``.

    Guarantees at least one record per group and sizes summing exactly to
    ``total_records`` (Figure 13a's workload: a few huge groups, many tiny
    ones).
    """
    if group_count < 1:
        raise ValueError("group_count must be positive")
    if total_records < group_count:
        raise ValueError("need at least one record per group")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, group_count + 1, dtype=np.float64)
    weights = 1.0 / ranks**exponent
    weights /= weights.sum()
    sizes = np.maximum(1, np.floor(weights * total_records).astype(int))
    # Fix the rounding drift, preferring the largest groups for surplus and
    # never dropping a group below one record.
    drift = total_records - int(sizes.sum())
    index = 0
    while drift != 0:
        position = index % group_count
        if drift > 0:
            sizes[position] += 1
            drift -= 1
        elif sizes[position] > 1:
            sizes[position] -= 1
            drift += 1
        index += 1
    return [int(s) for s in sizes]


@dataclass
class SyntheticSpec:
    """Parameters of one synthetic workload (paper defaults baked in).

    The paper's Section 4 defaults: 10 000 records, 100 average records per
    class, class spread 20 % of the data space, dimensionality 5.
    """

    n_records: int = 10_000
    avg_group_size: int = 100
    dimensions: int = 5
    distribution: str = "independent"
    group_spread: float = 0.2
    size_distribution: str = "uniform"     # "uniform" | "zipf"
    zipf_exponent: float = 1.0
    seed: int = 0
    key_prefix: str = "g"

    @property
    def group_count(self) -> int:
        return max(1, self.n_records // self.avg_group_size)

    def validate(self) -> None:
        if self.n_records < 1:
            raise ValueError("n_records must be positive")
        if self.avg_group_size < 1:
            raise ValueError("avg_group_size must be positive")
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {self.distribution!r}"
            )
        if not 0.0 <= self.group_spread <= 1.0:
            raise ValueError("group_spread must lie in [0, 1]")
        if self.size_distribution not in ("uniform", "zipf"):
            raise ValueError(
                f"size_distribution must be 'uniform' or 'zipf',"
                f" got {self.size_distribution!r}"
            )


def generate_grouped(spec: SyntheticSpec) -> GroupedDataset:
    """Generate a grouped dataset per ``spec`` (all dimensions MAX)."""
    spec.validate()
    rng = np.random.default_rng(spec.seed)
    group_count = spec.group_count

    centers = generate_points(
        group_count, spec.dimensions, spec.distribution, rng
    )
    if spec.size_distribution == "zipf":
        sizes = zipf_group_sizes(
            spec.n_records, group_count, spec.zipf_exponent
        )
        # Decorrelate group size from center position: without this the
        # biggest groups would always sit at the same generated centers.
        rng.shuffle(sizes)
    else:
        sizes = uniform_group_sizes(spec.n_records, group_count)

    half_spread = spec.group_spread / 2.0
    groups: Dict[str, np.ndarray] = {}
    width = len(str(group_count - 1)) if group_count > 1 else 1
    for position, (center, size) in enumerate(zip(centers, sizes)):
        offsets = rng.uniform(
            -half_spread, half_spread, size=(size, spec.dimensions)
        )
        records = np.clip(center + offsets, 0.0, 1.0)
        groups[f"{spec.key_prefix}{position:0{width}d}"] = records
    return GroupedDataset(groups)
