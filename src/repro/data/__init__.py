"""Datasets: the paper's movie example, synthetic workloads, NBA stand-in."""

from .movies import (
    MOVIE_ROWS,
    director_filmographies,
    directors_dataset,
    figure1_directors_dataset,
    movie_table,
)
from .nba import NBA_COLUMNS, STAT_COLUMNS, nba_table
from .store import load_grouped, save_grouped
from .workloads import WORKLOADS, load_workload, workload_names
from .synthetic import (
    DISTRIBUTIONS,
    SyntheticSpec,
    generate_grouped,
    generate_points,
    uniform_group_sizes,
    zipf_group_sizes,
)

__all__ = [
    "MOVIE_ROWS",
    "movie_table",
    "director_filmographies",
    "directors_dataset",
    "figure1_directors_dataset",
    "nba_table",
    "NBA_COLUMNS",
    "STAT_COLUMNS",
    "SyntheticSpec",
    "generate_grouped",
    "generate_points",
    "uniform_group_sizes",
    "zipf_group_sizes",
    "DISTRIBUTIONS",
    "WORKLOADS",
    "load_workload",
    "workload_names",
    "save_grouped",
    "load_grouped",
]
