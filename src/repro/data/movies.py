"""The paper's movie working example (Figures 1-5, Table 2).

Two datasets:

* :func:`movie_table` — the ten-row Movie relation of Figure 1, used by the
  introduction's Examples 1-3 (record skyline, aggregate query, aggregate
  skyline of directors).
* :func:`director_filmographies` / :func:`directors_dataset` — curated
  filmographies for Tarantino, Wiseau, Fleischer and Jackson whose pairwise
  domination probabilities reproduce Table 2 exactly (after the paper's
  two-decimal rounding):

  ======================  ==========
  pair                    p(S > R)
  ======================  ==========
  Tarantino > Wiseau      1.00
  Tarantino > Fleischer   .94 (30/32)
  Tarantino > Jackson     .68 (49/72)
  Wiseau > Tarantino      .00
  Fleischer > Tarantino   .06 (2/32)
  Jackson > Tarantino     .26 (19/72)
  ======================  ==========

  The paper's §2.1 walk-through also holds by construction: three Fleischer
  movies are dominated by all eight Tarantino movies and one (Zombieland)
  by exactly six, giving 3*8 + 1*6 = 30 of 32 combinations.

The IMDB numbers behind the original figures are not recoverable from the
paper, so the coordinates here are hand-tuned stand-ins (popularity in
thousands of votes, quality on [0, 10]) engineered to give the published
probabilities; see DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.groups import GroupedDataset
from ..relational.table import Table

__all__ = [
    "MOVIE_ROWS",
    "movie_table",
    "director_filmographies",
    "directors_dataset",
    "figure1_directors_dataset",
]

#: Figure 1 verbatim: (title, year, director, popularity, quality).
MOVIE_ROWS: List[Tuple[str, int, str, int, float]] = [
    ("Avatar", 2009, "Cameron", 404, 8.0),
    ("Batman Begins", 2005, "Nolan", 371, 8.3),
    ("Kill Bill", 2003, "Tarantino", 313, 8.2),
    ("Pulp Fiction", 1994, "Tarantino", 557, 9.0),
    ("Star Wars (V)", 1980, "Kershner", 362, 8.8),
    ("Terminator (II)", 1991, "Cameron", 326, 8.6),
    ("The Godfather", 1972, "Coppola", 531, 9.2),
    ("The Lord of the Rings", 2001, "Jackson", 518, 8.7),
    ("The Room", 2003, "Wiseau", 10, 3.2),
    ("Dracula", 1992, "Coppola", 76, 7.3),
]


def movie_table() -> Table:
    """The Movie relation of Figure 1 as a relational table."""
    return Table(
        ["title", "year", "director", "pop", "qual"],
        MOVIE_ROWS,
    )


def figure1_directors_dataset() -> GroupedDataset:
    """The Figure-1 movies grouped by director (Example 3's input)."""
    return GroupedDataset.from_records(
        records=[(pop, qual) for _, _, _, pop, qual in MOVIE_ROWS],
        keys=[director for _, _, director, _, _ in MOVIE_ROWS],
    )


#: Curated filmographies: director -> [(title, popularity, quality)].
_FILMOGRAPHIES: Dict[str, List[Tuple[str, float, float]]] = {
    "Tarantino": [
        ("Pulp Fiction", 557, 8.9),
        ("Inglourious Basterds", 400, 8.3),
        ("Reservoir Dogs", 330, 8.3),
        ("Kill Bill: Vol. 1", 313, 8.1),
        ("Kill Bill: Vol. 2", 280, 8.0),
        ("Jackie Brown", 150, 7.5),
        ("Death Proof", 100, 7.0),
        ("Four Rooms", 60, 6.4),
    ],
    "Wiseau": [
        ("The Room", 10, 3.2),
        ("Homeless in America", 1, 3.0),
    ],
    "Fleischer": [
        ("Zombieland", 140, 7.4),
        ("30 Minutes or Less", 55, 6.1),
        ("Collision Course", 40, 5.9),
        ("Gangster Squad", 30, 5.5),
    ],
    "Jackson": [
        ("The Fellowship of the Ring", 520, 8.7),
        ("The Return of the King", 500, 8.8),
        ("King Kong", 250, 7.9),
        ("The Frighteners", 110, 7.1),
        ("Heavenly Creatures", 55, 7.2),
        ("The Lovely Bones", 90, 6.2),
        ("Braindead", 50, 6.8),
        ("Bad Taste", 25, 6.3),
        ("Meet the Feebles", 20, 6.0),
    ],
}


def director_filmographies() -> Dict[str, List[Tuple[str, float, float]]]:
    """Titles with (popularity, quality) per director (Figure 5 / Table 2)."""
    return {
        director: list(movies) for director, movies in _FILMOGRAPHIES.items()
    }


def directors_dataset() -> GroupedDataset:
    """The Table-2 directors as a grouped dataset (pop, qual; both MAX)."""
    return GroupedDataset(
        {
            director: [(pop, qual) for _, pop, qual in movies]
            for director, movies in _FILMOGRAPHIES.items()
        }
    )
