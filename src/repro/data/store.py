"""Binary persistence for grouped datasets.

CSV keeps grouped data portable but parses slowly; this store writes a
grouped dataset as one ``.npz`` archive (numpy's zipped container) with a
JSON manifest for keys and directions — load/save round-trips exactly,
including MIN-direction orientation.

Format (inside the npz):

* ``__manifest__`` — a JSON string array holding
  ``{"version", "directions", "keys"}``; group keys are JSON-encoded so
  tuples survive (as lists — they are re-tupled on load).
* ``group_<i>`` — the i-th group's records in the *original* orientation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..core.dominance import Direction
from ..core.groups import GroupedDataset

__all__ = ["save_grouped", "load_grouped"]

_FORMAT_VERSION = 1


def _encode_key(key) -> str:
    if isinstance(key, tuple):
        return json.dumps({"t": list(key)})
    return json.dumps({"s": key})


def _decode_key(encoded: str):
    data = json.loads(encoded)
    if "t" in data:
        return tuple(data["t"])
    return data["s"]


def save_grouped(dataset: GroupedDataset, path: Union[str, Path]) -> None:
    """Write a grouped dataset to ``path`` (conventionally ``.npz``)."""
    manifest = {
        "version": _FORMAT_VERSION,
        "directions": [d.value for d in dataset.directions],
        "keys": [_encode_key(key) for key in dataset.keys()],
    }
    arrays = {
        f"group_{position}": dataset.original_values(key)
        for position, key in enumerate(dataset.keys())
    }
    arrays["__manifest__"] = np.array([json.dumps(manifest)])
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_grouped(path: Union[str, Path]) -> GroupedDataset:
    """Read a grouped dataset written by :func:`save_grouped`."""
    with np.load(path, allow_pickle=False) as archive:
        if "__manifest__" not in archive:
            raise ValueError(f"{path}: not a grouped-dataset archive")
        manifest = json.loads(str(archive["__manifest__"][0]))
        version = manifest.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported format version {version!r}"
            )
        directions = [Direction.from_any(d) for d in manifest["directions"]]
        groups = {}
        for position, encoded in enumerate(manifest["keys"]):
            groups[_decode_key(encoded)] = archive[f"group_{position}"]
    return GroupedDataset(groups, directions=directions)
