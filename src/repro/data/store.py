"""Binary persistence for grouped datasets (npz format v1 + columnar v2).

CSV keeps grouped data portable but parses slowly; this store writes a
grouped dataset as one ``.npz`` archive (numpy's zipped container) with a
JSON manifest for keys and directions — load/save round-trips exactly,
including MIN-direction orientation.

Two on-disk formats are supported (see ``docs/data-model.md``):

**Format v1** (legacy, compressed): one ``group_<i>`` member *per group* in
the original orientation.  Fine for hundreds of groups, pathological at the
100k-group scales of the paper's Figure 12/13 sweeps — every member is a
separate zip entry that must be located, inflated and copied.

**Format v2** (columnar, the default): the dataset's columnar backbone
persisted verbatim —

* ``__manifest__`` — JSON string array holding ``{"version": 2,
  "directions", "keys", "orientation": "normalized"}``; group keys are
  JSON-encoded so tuples survive (re-tupled on load).
* ``matrix`` — the full ``(N_records × d)`` float64 record matrix,
  **normalised** (MIN columns negated), group-major.
* ``offsets`` — ``int64`` CSR row offsets of length ``G + 1``.

v2 archives are written *uncompressed* (``np.savez``), which lets the
loader ``mmap`` the matrix straight out of the zip member
(``mmap_mode="r"`` semantics: the OS pages records in on demand and the
dataset adopts the mapping zero-copy via
:meth:`~repro.core.groups.GroupedDataset.from_columns`).  v1 archives are
still read transparently; :func:`save_grouped` takes ``version=1`` to write
the legacy layout (used by ``repro dataset convert`` for downgrades).
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..core.dominance import Direction
from ..core.groups import GroupedDataset

__all__ = [
    "save_grouped",
    "load_grouped",
    "read_manifest",
    "FORMAT_VERSIONS",
]

_FORMAT_VERSION_V1 = 1
_FORMAT_VERSION_V2 = 2
#: Formats this module can read and write.
FORMAT_VERSIONS = (_FORMAT_VERSION_V1, _FORMAT_VERSION_V2)
_DEFAULT_VERSION = _FORMAT_VERSION_V2


def _encode_key(key) -> str:
    if isinstance(key, tuple):
        return json.dumps({"t": list(key)})
    return json.dumps({"s": key})


def _decode_key(encoded: str):
    data = json.loads(encoded)
    if "t" in data:
        return tuple(data["t"])
    return data["s"]


# ----------------------------------------------------------------------
# writers
# ----------------------------------------------------------------------


def save_grouped(
    dataset: GroupedDataset,
    path: Union[str, Path],
    *,
    version: int = _DEFAULT_VERSION,
) -> None:
    """Write a grouped dataset to ``path`` (conventionally ``.npz``).

    ``version=2`` (default) writes the columnar single-matrix layout;
    ``version=1`` writes the legacy one-member-per-group layout.
    """
    if version == _FORMAT_VERSION_V2:
        _save_v2(dataset, path)
    elif version == _FORMAT_VERSION_V1:
        _save_v1(dataset, path)
    else:
        raise ValueError(
            f"unsupported store format version {version!r};"
            f" known versions: {FORMAT_VERSIONS}"
        )


def _save_v1(dataset: GroupedDataset, path: Union[str, Path]) -> None:
    manifest = {
        "version": _FORMAT_VERSION_V1,
        "directions": [d.value for d in dataset.directions],
        "keys": [_encode_key(key) for key in dataset.keys()],
    }
    arrays = {
        f"group_{position}": dataset.original_values(key)
        for position, key in enumerate(dataset.keys())
    }
    arrays["__manifest__"] = np.array([json.dumps(manifest)])
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def _save_v2(dataset: GroupedDataset, path: Union[str, Path]) -> None:
    manifest = {
        "version": _FORMAT_VERSION_V2,
        "directions": [d.value for d in dataset.directions],
        "keys": [_encode_key(key) for key in dataset.keys()],
        # The matrix is stored in the normalised (higher-is-better)
        # orientation so loads can adopt it zero-copy; MIN columns are
        # un-negated on demand via the recorded directions.
        "orientation": "normalized",
    }
    arrays = {
        "__manifest__": np.array([json.dumps(manifest)]),
        "matrix": np.ascontiguousarray(dataset.matrix),
        "offsets": np.ascontiguousarray(dataset.offsets),
    }
    # Deliberately *uncompressed*: ZIP_STORED members can be memory-mapped
    # in place, which is the whole point of the columnar layout.
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)


# ----------------------------------------------------------------------
# readers
# ----------------------------------------------------------------------


def read_manifest(path: Union[str, Path]) -> dict:
    """The archive's manifest (``version``/``directions``/``keys`` …).

    Raises ``ValueError`` if ``path`` is not a grouped-dataset archive.
    """
    with np.load(path, allow_pickle=False) as archive:
        if "__manifest__" not in archive:
            raise ValueError(f"{path}: not a grouped-dataset archive")
        return json.loads(str(archive["__manifest__"][0]))


def load_grouped(
    path: Union[str, Path],
    *,
    mmap: bool = True,
    allow_non_finite: bool = False,
) -> GroupedDataset:
    """Read a grouped dataset written by :func:`save_grouped` (v1 or v2).

    For v2 archives the record matrix is memory-mapped read-only when
    possible (``mmap=True``, a real filesystem path, uncompressed member)
    and adopted zero-copy; pass ``mmap=False`` to force an eager in-memory
    copy (e.g. before deleting the file).
    """
    manifest = read_manifest(path)
    version = manifest.get("version")
    if version == _FORMAT_VERSION_V1:
        return _load_v1(path, manifest, allow_non_finite=allow_non_finite)
    if version == _FORMAT_VERSION_V2:
        return _load_v2(
            path, manifest, mmap=mmap, allow_non_finite=allow_non_finite
        )
    raise ValueError(f"{path}: unsupported format version {version!r}")


def _load_v1(
    path: Union[str, Path], manifest: dict, *, allow_non_finite: bool
) -> GroupedDataset:
    directions = [Direction.from_any(d) for d in manifest["directions"]]
    with np.load(path, allow_pickle=False) as archive:
        groups = {}
        for position, encoded in enumerate(manifest["keys"]):
            groups[_decode_key(encoded)] = archive[f"group_{position}"]
    return GroupedDataset(
        groups, directions=directions, allow_non_finite=allow_non_finite
    )


def _load_v2(
    path: Union[str, Path],
    manifest: dict,
    *,
    mmap: bool,
    allow_non_finite: bool,
) -> GroupedDataset:
    directions = [Direction.from_any(d) for d in manifest["directions"]]
    keys = [_decode_key(encoded) for encoded in manifest["keys"]]
    normalized = manifest.get("orientation") == "normalized"
    matrix: Optional[np.ndarray] = None
    if mmap:
        matrix = _mmap_npz_member(path, "matrix.npy")
    with np.load(path, allow_pickle=False) as archive:
        offsets = np.array(archive["offsets"], dtype=np.int64)
        if matrix is None:
            matrix = archive["matrix"]
    return GroupedDataset.from_columns(
        matrix,
        offsets,
        keys,
        directions=directions,
        normalized=normalized,
        allow_non_finite=allow_non_finite,
    )


def _mmap_npz_member(
    path: Union[str, Path], member: str
) -> Optional[np.ndarray]:
    """Memory-map one ``.npy`` member of an npz archive, or ``None``.

    ``np.load(..., mmap_mode=...)`` silently ignores the request for npz
    containers, so we do it by hand: locate the member's zip local header,
    skip it, parse the npy header, and map the raw data region of the file
    read-only.  Returns ``None`` whenever mapping is not possible
    (compressed member, non-file path, exotic npy version, Fortran order)
    so callers can fall back to a normal load.
    """
    try:
        with zipfile.ZipFile(path) as archive:
            info = archive.getinfo(member)
            if info.compress_type != zipfile.ZIP_STORED:
                return None
            header_offset = info.header_offset
        with open(path, "rb") as handle:
            handle.seek(header_offset)
            local = handle.read(30)
            if len(local) < 30 or local[:4] != b"PK\x03\x04":
                return None
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            handle.seek(header_offset + 30 + name_len + extra_len)
            npy_version = np.lib.format.read_magic(handle)
            if npy_version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(
                    handle
                )
            elif npy_version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(
                    handle
                )
            else:
                return None
            if fortran or dtype.hasobject:
                return None
            data_offset = handle.tell()
        return np.memmap(
            path, dtype=dtype, mode="r", offset=data_offset, shape=shape
        )
    except (OSError, KeyError, ValueError, zipfile.BadZipFile):
        return None
