"""Synthetic NBA player-season statistics (Figure 14's real dataset).

The paper's real workload is the databasebasketball.com archive: ~15 000
player-season rows since 1979 with eight per-game statistics (*points,
rebounds, assists, steals, blocks, field goals, free throws, three points*).
That archive is not available offline, so this module synthesises a table
with the same schema, scale and — crucially for Figure 14 — the same
*grouping structure*:

* grouping by ``player`` yields thousands of groups with 1-20 rows each
  (careers are heavy-tailed),
* grouping by ``year`` or ``team`` yields few groups with hundreds of rows,
* grouping by ``(team, year)`` sits in between (roster-sized groups),

and realistic correlations between the statistics: positional archetypes
(guards: assists/steals/threes; centers: rebounds/blocks/field goals;
forwards in between), a per-player skill level that lifts everything, an
age curve, and per-season noise.  See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..relational.table import Table

__all__ = ["STAT_COLUMNS", "NBA_COLUMNS", "nba_table", "nba_player_names"]

#: The eight per-game skyline statistics of the paper, in its order.
STAT_COLUMNS = ("pts", "reb", "ast", "stl", "blk", "fgm", "ftm", "tpm")

NBA_COLUMNS = ("player", "team", "year", "pos", "gp", *STAT_COLUMNS)

_TEAMS = (
    "ATL", "BOS", "CHI", "CLE", "DAL", "DEN", "DET", "GSW", "HOU", "IND",
    "LAC", "LAL", "MIA", "MIL", "MIN", "NJN", "NYK", "ORL", "PHI", "PHX",
    "POR", "SAC", "SAS", "SEA", "TOR", "UTA", "WAS",
)

_FIRST_NAMES = (
    "Alton", "Bryce", "Cedric", "Damon", "Earl", "Franklin", "Gerald",
    "Harvey", "Isaiah", "Jalen", "Kendall", "Lamar", "Marcus", "Nolan",
    "Orlando", "Percy", "Quincy", "Rashad", "Sterling", "Terrence",
    "Ulysses", "Vernon", "Warrick", "Xavier", "Yancy", "Zeke",
)

_LAST_NAMES = (
    "Abbott", "Blackwell", "Carver", "Dunlap", "Easley", "Fontaine",
    "Graves", "Holloway", "Ingram", "Jefferson", "Kirkland", "Lockhart",
    "Maxwell", "Norwood", "Overton", "Prescott", "Quarles", "Rollins",
    "Sandoval", "Thorne", "Underwood", "Vance", "Whitfield", "Xiong",
    "Yates", "Zimmerman",
)

#: Per-archetype base rates for the eight statistics (per game):
#:                              pts   reb   ast  stl  blk   fgm  ftm  tpm
_ARCHETYPES = {
    "G": np.array([11.0, 2.8, 5.0, 1.2, 0.2, 4.2, 2.2, 1.0]),
    "F": np.array([12.0, 6.0, 2.2, 0.9, 0.7, 4.8, 2.4, 0.5]),
    "C": np.array([10.0, 8.5, 1.4, 0.6, 1.5, 4.3, 2.0, 0.05]),
}

_FIRST_SEASON = 1979
_LAST_SEASON = 2010


def nba_player_names(count: int, rng: np.random.Generator) -> List[str]:
    """``count`` distinct synthetic player names.

    Collisions get a middle initial, then a Jr./III style suffix, so names
    stay readable even for thousands of players.
    """
    suffixes = (" Jr.", " III", " IV", " V")
    names: List[str] = []
    seen = set()
    while len(names) < count:
        name = f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
        if name in seen:
            first, last = name.split(" ", 1)
            initial = chr(ord("A") + int(rng.integers(0, 26)))
            name = f"{first} {initial}. {last}"
        attempt = 0
        while name in seen:
            name = f"{name.rstrip('.')}{suffixes[attempt % len(suffixes)]}"
            attempt += 1
        seen.add(name)
        names.append(name)
    return names


def _career_length(rng: np.random.Generator) -> int:
    """Heavy-tailed career length in seasons (1-20, median ~4)."""
    length = 1 + int(rng.exponential(4.0))
    return min(length, 20)


def nba_table(seed: int = 7, target_rows: int = 15_000) -> Table:
    """Generate the synthetic NBA table (~``target_rows`` player-seasons)."""
    if target_rows < 1:
        raise ValueError("target_rows must be positive")
    rng = np.random.default_rng(seed)

    # Franchise strength: good organisations develop players better, which
    # is what makes team-level groups comparable at all (and mirrors real
    # dynasties).  Mild spread so no team strictly dominates another.
    team_strength = {
        team: float(rng.uniform(0.88, 1.15)) for team in _TEAMS
    }

    rows: List[Sequence] = []
    # Draw players until the target row count is covered.  Average career
    # is ~5 seasons, so the loop bound is generous.
    estimated_players = max(1, target_rows // 4)
    names = nba_player_names(estimated_players, rng)
    name_cursor = 0

    while len(rows) < target_rows:
        if name_cursor >= len(names):
            names.extend(nba_player_names(len(names), rng))
        player = names[name_cursor]
        name_cursor += 1

        position = rng.choice(("G", "F", "C"), p=(0.45, 0.35, 0.20))
        base = _ARCHETYPES[position]
        # Skill: log-normal so a few players are stars (lifting every stat).
        skill = float(rng.lognormal(mean=0.0, sigma=0.35))
        career = _career_length(rng)
        start = int(rng.integers(_FIRST_SEASON, _LAST_SEASON + 1))
        team = str(rng.choice(_TEAMS))

        for season_index in range(career):
            year = start + season_index
            if year > _LAST_SEASON:
                break
            # Occasional trades keep team groups mixed.
            if rng.random() < 0.12:
                team = str(rng.choice(_TEAMS))
            # Age curve: rise to a mid-career peak, then decline.
            peak = career / 2.0
            age_factor = 1.0 - 0.04 * abs(season_index - peak)
            noise = rng.normal(1.0, 0.12, size=len(STAT_COLUMNS))
            stats = np.maximum(
                0.0, base * skill * age_factor * team_strength[team] * noise
            )
            # Three-point volume grew over the era; scale tpm with the year.
            era = 0.4 + 0.6 * (year - _FIRST_SEASON) / (
                _LAST_SEASON - _FIRST_SEASON
            )
            stats[7] *= era
            games = int(np.clip(rng.normal(62, 16), 5, 82))
            rows.append(
                (
                    player,
                    team,
                    year,
                    position,
                    games,
                    *(round(float(s), 1) for s in stats),
                )
            )
            if len(rows) >= target_rows:
                break

    return Table(NBA_COLUMNS, rows)
