"""An in-memory R-tree with quadratic split and STR bulk loading.

This is the spatial index used by the paper's IN/LO algorithms (Algorithm 5):
group MBB max-corners are inserted as points and, for each candidate group,
a *window query* retrieves the groups whose best corner falls inside the
region that could dominate the candidate's worst corner.

The implementation is a classical Guttman R-tree: grow by insertion with
quadratic split, or build balanced from scratch with Sort-Tile-Recursive
(STR) packing.  Payloads are arbitrary Python objects.
"""

from __future__ import annotations

import math
import operator
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .mbr import Rect

__all__ = ["RTree", "RTreeEntry", "FlatRTree"]


class RTreeEntry:
    """Leaf entry: a rectangle (or point) plus its payload."""

    __slots__ = ("rect", "item")

    def __init__(self, rect: Rect, item: Any):
        self.rect = rect
        self.item = item

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RTreeEntry({self.rect!r}, {self.item!r})"


class _Node:
    __slots__ = ("leaf", "entries", "children", "rect")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.entries: List[RTreeEntry] = []
        self.children: List["_Node"] = []
        self.rect: Optional[Rect] = None

    def members(self) -> List:
        return self.entries if self.leaf else self.children

    def recompute_rect(self) -> None:
        members = self.members()
        if not members:
            self.rect = None
            return
        self.rect = Rect.union_of(m.rect for m in members)

    def is_overflowing(self, max_entries: int) -> bool:
        return len(self.members()) > max_entries


class RTree:
    """R-tree over rectangles with window (range) queries.

    Parameters
    ----------
    max_entries:
        Node fan-out ``M``; nodes split when they exceed it.
    min_entries:
        Minimum fill ``m`` after a split (default ``ceil(M * 0.4)``).
    """

    def __init__(self, max_entries: int = 16, min_entries: Optional[int] = None):
        if max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else max(1, math.ceil(max_entries * 0.4))
        )
        if not 1 <= self.min_entries <= max_entries // 2:
            raise ValueError("min_entries must be in [1, max_entries // 2]")
        self._root = _Node(leaf=True)
        self._size = 0
        # lightweight observability counters (read by the IN/LO algorithms
        # and flushed into the metrics registry after a run)
        self.window_queries = 0
        self.candidates_returned = 0
        self.nodes_visited = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def insert(self, rect: Rect, item: Any) -> None:
        """Insert one payload with its bounding rectangle."""
        entry = RTreeEntry(rect, item)
        split = self._insert_into(self._root, entry)
        if split is not None:
            # Root split: grow the tree by one level.
            old_root = self._root
            new_root = _Node(leaf=False)
            new_root.children = [old_root, split]
            new_root.recompute_rect()
            self._root = new_root
        self._size += 1

    def insert_point(self, coordinates: Sequence[float], item: Any) -> None:
        self.insert(Rect.point(coordinates), item)

    @classmethod
    def bulk_load(
        cls,
        entries: Iterable[Tuple[Rect, Any]],
        max_entries: int = 16,
        min_entries: Optional[int] = None,
    ) -> "RTree":
        """Build a packed tree with Sort-Tile-Recursive (STR).

        Produces a balanced tree with near-full nodes; much better query
        performance than repeated insertion for static data, which is the
        aggregate-skyline use case (all groups are known up front).
        """
        tree = cls(max_entries=max_entries, min_entries=min_entries)
        leaf_entries = [RTreeEntry(rect, item) for rect, item in entries]
        tree._size = len(leaf_entries)
        if not leaf_entries:
            return tree

        nodes = tree._str_pack_leaves(leaf_entries)
        while len(nodes) > 1:
            nodes = tree._str_pack_internal(nodes)
        tree._root = nodes[0]
        return tree

    def _str_pack_leaves(self, entries: List[RTreeEntry]) -> List[_Node]:
        groups = _str_tile(
            entries, [e.rect.center for e in entries], self.max_entries
        )
        nodes = []
        for group in groups:
            node = _Node(leaf=True)
            node.entries = group
            node.recompute_rect()
            nodes.append(node)
        return nodes

    def _str_pack_internal(self, children: List[_Node]) -> List[_Node]:
        groups = _str_tile(
            children, [c.rect.center for c in children], self.max_entries
        )
        nodes = []
        for group in groups:
            node = _Node(leaf=False)
            node.children = group
            node.recompute_rect()
            nodes.append(node)
        return nodes

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def search_window(self, low: Sequence[float], high: Sequence[float]) -> List[Any]:
        """Payloads whose rectangle intersects the window ``[low, high]``.

        ``±inf`` bounds are allowed, enabling the dominance windows of
        Algorithm 5 (``[g.min, +inf)`` in every dimension).
        """
        window = Rect(low, high)
        results: List[Any] = []
        self.window_queries += 1
        if self._root.rect is None:
            return results
        visited = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            visited += 1
            if node.rect is None or not window.intersects(node.rect):
                continue
            if node.leaf:
                for entry in node.entries:
                    if window.intersects(entry.rect):
                        results.append(entry.item)
            else:
                for child in node.children:
                    if child.rect is not None and window.intersects(child.rect):
                        stack.append(child)
        self.nodes_visited += visited
        self.candidates_returned += len(results)
        return results

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a lone leaf root)."""
        levels = 1
        node = self._root
        while not node.leaf:
            node = node.children[0]
            levels += 1
        return levels

    def pack(self) -> "FlatRTree":
        """Freeze this tree into a :class:`FlatRTree` (read-only arrays)."""
        return FlatRTree.from_tree(self)

    # ------------------------------------------------------------------
    # insertion internals
    # ------------------------------------------------------------------

    def _insert_into(self, node: _Node, entry: RTreeEntry) -> Optional[_Node]:
        """Recursive insert; returns a sibling node if ``node`` split."""
        if node.leaf:
            node.entries.append(entry)
        else:
            child = self._choose_child(node, entry.rect)
            split = self._insert_into(child, entry)
            if split is not None:
                node.children.append(split)
        node.recompute_rect()
        if node.is_overflowing(self.max_entries):
            return self._split(node)
        return None

    @staticmethod
    def _choose_child(node: _Node, rect: Rect) -> _Node:
        """Guttman choose-leaf: least enlargement, ties by smallest area."""
        best = None
        best_key = None
        for child in node.children:
            assert child.rect is not None
            key = (child.rect.enlargement(rect), child.rect.area())
            if best_key is None or key < best_key:
                best = child
                best_key = key
        assert best is not None
        return best

    def _split(self, node: _Node) -> _Node:
        """Quadratic split; mutates ``node`` and returns its new sibling."""
        members = node.members()
        rects = [m.rect for m in members]

        seed_a, seed_b = _pick_seeds(rects)
        group_a = [members[seed_a]]
        group_b = [members[seed_b]]
        rect_a = rects[seed_a]
        rect_b = rects[seed_b]
        remaining = [
            member
            for position, member in enumerate(members)
            if position not in (seed_a, seed_b)
        ]

        while remaining:
            # Force assignment when one group must absorb all the rest to
            # reach minimum fill.
            need = self.min_entries
            if len(group_a) + len(remaining) == need:
                group_a.extend(remaining)
                rect_a = Rect.union_of([rect_a] + [m.rect for m in remaining])
                remaining = []
                break
            if len(group_b) + len(remaining) == need:
                group_b.extend(remaining)
                rect_b = Rect.union_of([rect_b] + [m.rect for m in remaining])
                remaining = []
                break
            member = _pick_next(remaining, rect_a, rect_b)
            remaining.remove(member)
            grow_a = rect_a.enlargement(member.rect)
            grow_b = rect_b.enlargement(member.rect)
            if (grow_a, rect_a.area(), len(group_a)) <= (
                grow_b, rect_b.area(), len(group_b)
            ):
                group_a.append(member)
                rect_a = rect_a.union(member.rect)
            else:
                group_b.append(member)
                rect_b = rect_b.union(member.rect)

        sibling = _Node(leaf=node.leaf)
        if node.leaf:
            node.entries = group_a
            sibling.entries = group_b
        else:
            node.children = group_a
            sibling.children = group_b
        node.recompute_rect()
        sibling.recompute_rect()
        return sibling


def _pick_seeds(rects: List[Rect]) -> Tuple[int, int]:
    """Quadratic seed pick: the pair wasting the most area together."""
    best_pair = (0, 1)
    best_waste = -math.inf
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            waste = rects[i].union(rects[j]).area() - rects[i].area() - rects[j].area()
            if waste > best_waste:
                best_waste = waste
                best_pair = (i, j)
    return best_pair


def _pick_next(remaining: List, rect_a: Rect, rect_b: Rect):
    """Entry with the strongest preference for one group."""
    best = remaining[0]
    best_diff = -1.0
    for member in remaining:
        diff = abs(rect_a.enlargement(member.rect) - rect_b.enlargement(member.rect))
        if diff > best_diff:
            best_diff = diff
            best = member
    return best


def _str_tile(items: List, centers: List[np.ndarray], capacity: int) -> List[List]:
    """Sort-Tile-Recursive partition of ``items`` into runs of ``capacity``.

    Recursively sorts by each dimension and slices into vertical "tiles" so
    sibling nodes end up spatially coherent.
    """
    dimensions = len(centers[0])

    def tile(indices: List[int], dim: int) -> List[List[int]]:
        if len(indices) <= capacity:
            return [indices]
        indices = sorted(indices, key=lambda idx: float(centers[idx][dim]))
        if dim == dimensions - 1:
            return [
                indices[start : start + capacity]
                for start in range(0, len(indices), capacity)
            ]
        leaf_count = math.ceil(len(indices) / capacity)
        slabs = math.ceil(leaf_count ** (1.0 / (dimensions - dim)))
        slab_size = math.ceil(len(indices) / slabs)
        groups: List[List[int]] = []
        for start in range(0, len(indices), slab_size):
            groups.extend(tile(indices[start : start + slab_size], dim + 1))
        return groups

    partitions = tile(list(range(len(items))), 0)
    return [[items[idx] for idx in part] for part in partitions]


class FlatRTree:
    """A read-only R-tree packed into flat numpy arrays.

    Built once from a constructed :class:`RTree` (``tree.pack()``), this
    representation exists for the parallel IN/LO path: the whole tree is a
    handful of contiguous ndarrays, so it ships to pool workers through
    ``multiprocessing.shared_memory`` without pickling a node graph, and a
    worker reconstructs a queryable index from the mapped buffers in O(1)
    (:meth:`from_arrays` keeps views, never copies).

    Layout: nodes in BFS order; an internal node's children are the
    contiguous node-id range ``[child_start, child_stop)``; a leaf's
    entries are the contiguous entry range ``[child_start, child_stop)``
    into the entry arrays.  Payloads must be integers (the aggregate
    skyline stores group positions), enforcing a compact ``int64`` item
    column.  Window queries are deterministic: the DFS order is a pure
    function of the arrays, so every process sees candidates in the same
    order — the foundation of the parallel determinism contract.
    """

    __slots__ = (
        "node_lows",
        "node_highs",
        "node_leaf",
        "child_start",
        "child_stop",
        "entry_lows",
        "entry_highs",
        "entry_items",
        "window_queries",
        "candidates_returned",
        "nodes_visited",
    )

    def __init__(
        self,
        node_lows: np.ndarray,
        node_highs: np.ndarray,
        node_leaf: np.ndarray,
        child_start: np.ndarray,
        child_stop: np.ndarray,
        entry_lows: np.ndarray,
        entry_highs: np.ndarray,
        entry_items: np.ndarray,
    ):
        self.node_lows = node_lows
        self.node_highs = node_highs
        self.node_leaf = node_leaf
        self.child_start = child_start
        self.child_stop = child_stop
        self.entry_lows = entry_lows
        self.entry_highs = entry_highs
        self.entry_items = entry_items
        # same observability counters as RTree, flushed by IN/LO
        self.window_queries = 0
        self.candidates_returned = 0
        self.nodes_visited = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_tree(cls, tree: RTree) -> "FlatRTree":
        """Pack a built :class:`RTree`; payloads must be integers."""
        root = tree._root
        if root.rect is None:
            dims = 0
            return cls(
                np.zeros((0, dims)), np.zeros((0, dims)),
                np.zeros(0, dtype=np.uint8),
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
                np.zeros((0, dims)), np.zeros((0, dims)),
                np.zeros(0, dtype=np.int64),
            )
        # BFS order: a node's children occupy a contiguous id range.
        nodes: List[_Node] = [root]
        cursor = 0
        while cursor < len(nodes):
            node = nodes[cursor]
            if not node.leaf:
                nodes.extend(node.children)
            cursor += 1

        dims = int(root.rect.dimensions)
        count = len(nodes)
        node_lows = np.empty((count, dims))
        node_highs = np.empty((count, dims))
        node_leaf = np.zeros(count, dtype=np.uint8)
        child_start = np.zeros(count, dtype=np.int64)
        child_stop = np.zeros(count, dtype=np.int64)
        entry_lows: List[np.ndarray] = []
        entry_highs: List[np.ndarray] = []
        entry_items: List[int] = []

        next_child = 1  # node id 0 is the root
        next_entry = 0
        for node_id, node in enumerate(nodes):
            assert node.rect is not None
            node_lows[node_id] = node.rect.low
            node_highs[node_id] = node.rect.high
            if node.leaf:
                node_leaf[node_id] = 1
                child_start[node_id] = next_entry
                for entry in node.entries:
                    entry_lows.append(entry.rect.low)
                    entry_highs.append(entry.rect.high)
                    try:
                        entry_items.append(operator.index(entry.item))
                    except TypeError:
                        raise TypeError(
                            "FlatRTree payloads must be integers, got "
                            f"{type(entry.item).__name__}"
                        ) from None
                next_entry += len(node.entries)
                child_stop[node_id] = next_entry
            else:
                child_start[node_id] = next_child
                next_child += len(node.children)
                child_stop[node_id] = next_child

        return cls(
            node_lows,
            node_highs,
            node_leaf,
            child_start,
            child_stop,
            np.asarray(entry_lows).reshape(next_entry, dims),
            np.asarray(entry_highs).reshape(next_entry, dims),
            np.asarray(entry_items, dtype=np.int64),
        )

    @classmethod
    def bulk_load_points(
        cls,
        points: np.ndarray,
        items: Optional[np.ndarray] = None,
        max_entries: int = 16,
    ) -> "FlatRTree":
        """STR bulk-load a packed tree straight from a point matrix.

        ``points`` is an ``(n × d)`` matrix (one point rectangle per row —
        for the aggregate skyline these are the dataset's ``max_corners``)
        and ``items[i]`` the integer payload of row ``i`` (defaults to the
        row number).  This produces **bit-identical arrays** to::

            RTree.bulk_load(
                (Rect.point(points[i]), items[i]) for i in range(n),
                max_entries=max_entries,
            ).pack()

        but never materialises ``Rect``/node objects per entry, so the
        columnar dataset's corner matrices feed the index directly.  The
        tiling mirrors :func:`_str_tile` operation for operation (same
        stable sorts, same slab arithmetic) and the flatten mirrors
        :meth:`from_tree` (same BFS order, same entry emission), keeping
        the window-query candidate *order* — and therefore the IN/LO
        algorithms' counters — unchanged.
        """
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("points must be 2-d (entries x dimensions)")
        count, dims = points.shape
        if items is None:
            payload = np.arange(count, dtype=np.int64)
        else:
            payload = np.asarray(items, dtype=np.int64)
            if payload.shape != (count,):
                raise ValueError("items must be 1-d, one per point")
        if count == 0:
            return cls(
                np.zeros((0, 0)), np.zeros((0, 0)),
                np.zeros(0, dtype=np.uint8),
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
                np.zeros((0, 0)), np.zeros((0, 0)),
                np.zeros(0, dtype=np.int64),
            )

        def tile(indices: List[int], centers: np.ndarray, dim: int) -> List[List[int]]:
            # Mirror of _str_tile: stable sort by centre coordinate,
            # identical slab arithmetic.
            if len(indices) <= max_entries:
                return [indices]
            indices = sorted(indices, key=lambda idx: float(centers[idx][dim]))
            if dim == dims - 1:
                return [
                    indices[start : start + max_entries]
                    for start in range(0, len(indices), max_entries)
                ]
            leaf_count = math.ceil(len(indices) / max_entries)
            slabs = math.ceil(leaf_count ** (1.0 / (dims - dim)))
            slab_size = math.ceil(len(indices) / slabs)
            groups: List[List[int]] = []
            for start in range(0, len(indices), slab_size):
                groups.extend(
                    tile(indices[start : start + slab_size], centers, dim + 1)
                )
            return groups

        # ---- leaf level: partition the points themselves -------------
        # (a point rect's centre is the point)
        leaf_parts = tile(list(range(count)), points, 0)
        # each level is (lows, highs, member_lists); members of level 0
        # are entry ids, members of level k>0 are node ids of level k-1.
        level_lows = np.empty((len(leaf_parts), dims))
        level_highs = np.empty((len(leaf_parts), dims))
        for node_id, part in enumerate(leaf_parts):
            rows = points[part]
            level_lows[node_id] = rows.min(axis=0)
            level_highs[node_id] = rows.max(axis=0)
        levels: List[Tuple[np.ndarray, np.ndarray, List[List[int]], bool]] = [
            (level_lows, level_highs, leaf_parts, True)
        ]

        # ---- internal levels until a single root ---------------------
        while len(levels[-1][2]) > 1:
            lows, highs, below_parts, _ = levels[-1]
            centers = (lows + highs) / 2.0  # Rect.center, elementwise
            parts = tile(list(range(len(below_parts))), centers, 0)
            up_lows = np.empty((len(parts), dims))
            up_highs = np.empty((len(parts), dims))
            for node_id, part in enumerate(parts):
                up_lows[node_id] = lows[part].min(axis=0)
                up_highs[node_id] = highs[part].max(axis=0)
            levels.append((up_lows, up_highs, parts, False))

        # ---- BFS flatten (mirror of from_tree) -----------------------
        # Walk from the root down; a node is (level_index, local_id).
        order: List[Tuple[int, int]] = [(len(levels) - 1, 0)]
        cursor = 0
        while cursor < len(order):
            level_index, local_id = order[cursor]
            if level_index > 0:
                for child in levels[level_index][2][local_id]:
                    order.append((level_index - 1, child))
            cursor += 1

        total = len(order)
        node_lows = np.empty((total, dims))
        node_highs = np.empty((total, dims))
        node_leaf = np.zeros(total, dtype=np.uint8)
        child_start = np.zeros(total, dtype=np.int64)
        child_stop = np.zeros(total, dtype=np.int64)
        entry_order: List[int] = []

        next_child = 1
        next_entry = 0
        for node_id, (level_index, local_id) in enumerate(order):
            lows, highs, parts, is_leaf = levels[level_index]
            node_lows[node_id] = lows[local_id]
            node_highs[node_id] = highs[local_id]
            members = parts[local_id]
            if is_leaf:
                node_leaf[node_id] = 1
                child_start[node_id] = next_entry
                entry_order.extend(members)
                next_entry += len(members)
                child_stop[node_id] = next_entry
            else:
                child_start[node_id] = next_child
                next_child += len(members)
                child_stop[node_id] = next_child

        entry_rows = np.asarray(entry_order, dtype=np.int64)
        entry_points = points[entry_rows]
        return cls(
            node_lows,
            node_highs,
            node_leaf,
            child_start,
            child_stop,
            entry_points.copy(),
            entry_points.copy(),
            payload[entry_rows],
        )

    # ------------------------------------------------------------------
    # (de)serialisation to plain arrays (for shared-memory shipping)
    # ------------------------------------------------------------------

    _ARRAY_FIELDS = (
        "node_lows", "node_highs", "node_leaf", "child_start",
        "child_stop", "entry_lows", "entry_highs", "entry_items",
    )

    def arrays(self) -> Dict[str, np.ndarray]:
        """The flat representation as named arrays (zero-copy)."""
        return {name: getattr(self, name) for name in self._ARRAY_FIELDS}

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "FlatRTree":
        """Rebuild a queryable index from :meth:`arrays` output (views)."""
        return cls(*(arrays[name] for name in cls._ARRAY_FIELDS))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def search_window(self, low: Sequence[float], high: Sequence[float]) -> List[int]:
        """Integer payloads intersecting ``[low, high]``; deterministic order."""
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        self.window_queries += 1
        results: List[int] = []
        if len(self.node_leaf) == 0:
            return results
        visited = 0
        stack = [0]
        while stack:
            node = stack.pop()
            visited += 1
            if np.any(self.node_lows[node] > hi) or np.any(self.node_highs[node] < lo):
                continue
            start = int(self.child_start[node])
            stop = int(self.child_stop[node])
            if self.node_leaf[node]:
                span_lows = self.entry_lows[start:stop]
                span_highs = self.entry_highs[start:stop]
                hit = np.all(span_lows <= hi, axis=1) & np.all(span_highs >= lo, axis=1)
                results.extend(int(item) for item in self.entry_items[start:stop][hit])
            else:
                for child in range(start, stop):
                    if not (
                        np.any(self.node_lows[child] > hi)
                        or np.any(self.node_highs[child] < lo)
                    ):
                        stack.append(child)
        self.nodes_visited += visited
        self.candidates_returned += len(results)
        return results

    def pack(self) -> "FlatRTree":
        """Already flat — returns ``self`` (mirrors :meth:`RTree.pack`)."""
        return self

    def __len__(self) -> int:
        return int(self.entry_items.shape[0])
