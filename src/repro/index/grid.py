"""Uniform grid index: a simple alternative backend for window queries.

Used as an ablation against the R-tree in the IN/LO algorithms.  The domain
is cut into ``cells_per_dim`` slices per dimension; each payload lives in the
cell of its point.  Window queries visit the overlapping cells and filter.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["GridIndex"]


class GridIndex:
    """A fixed uniform grid over a known bounding domain.

    Parameters
    ----------
    low, high:
        Domain corners.  Points outside are clamped into border cells.
    cells_per_dim:
        Grid resolution along each dimension.
    """

    def __init__(
        self,
        low: Sequence[float],
        high: Sequence[float],
        cells_per_dim: int = 8,
    ):
        self.low = np.asarray(low, dtype=np.float64)
        self.high = np.asarray(high, dtype=np.float64)
        if self.low.shape != self.high.shape or self.low.ndim != 1:
            raise ValueError("low/high must be 1-d arrays of equal length")
        if np.any(self.low > self.high):
            raise ValueError("low exceeds high")
        if cells_per_dim < 1:
            raise ValueError("cells_per_dim must be positive")
        self.cells_per_dim = cells_per_dim
        extent = self.high - self.low
        # Avoid zero-width dimensions (all values equal): any positive width
        # works, every point then lands in cell 0 of that dimension.
        extent[extent == 0.0] = 1.0
        self._cell_width = extent / cells_per_dim
        self._cells: Dict[Tuple[int, ...], List[Tuple[np.ndarray, Any]]] = {}
        self._size = 0
        # lightweight observability counters (read by the IN/LO algorithms
        # and flushed into the metrics registry after a run)
        self.window_queries = 0
        self.candidates_returned = 0
        self.cells_visited = 0

    @property
    def dimensions(self) -> int:
        return int(self.low.shape[0])

    def _cell_of(self, point: np.ndarray) -> Tuple[int, ...]:
        relative = (point - self.low) / self._cell_width
        cell = np.clip(relative.astype(int), 0, self.cells_per_dim - 1)
        return tuple(int(c) for c in cell)

    def insert_point(self, coordinates: Sequence[float], item: Any) -> None:
        point = np.asarray(coordinates, dtype=np.float64)
        if point.shape != self.low.shape:
            raise ValueError("point dimensionality mismatch")
        self._cells.setdefault(self._cell_of(point), []).append((point, item))
        self._size += 1

    def search_window(self, low: Sequence[float], high: Sequence[float]) -> List[Any]:
        """Payloads whose point lies in ``[low, high]`` (±inf allowed)."""
        lo = np.asarray(low, dtype=np.float64)
        hi = np.asarray(high, dtype=np.float64)
        if np.any(lo > hi):
            raise ValueError("window low exceeds high")
        self.window_queries += 1
        # Clamp the window into the domain to enumerate candidate cells.
        lo_clamped = np.maximum(lo, self.low)
        hi_clamped = np.minimum(hi, self.high)
        if np.any(lo_clamped > hi_clamped):
            return []
        first = self._cell_of(lo_clamped)
        last = self._cell_of(hi_clamped)
        ranges = [range(a, b + 1) for a, b in zip(first, last)]
        results: List[Any] = []
        visited = 0
        for cell in product(*ranges):
            visited += 1
            for point, item in self._cells.get(cell, ()):
                if bool(np.all(point >= lo) and np.all(point <= hi)):
                    results.append(item)
        self.cells_visited += visited
        self.candidates_returned += len(results)
        return results

    def __len__(self) -> int:
        return self._size
