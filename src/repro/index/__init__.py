"""Spatial index substrate: MBRs, R-tree and grid index."""

from .fenwick import FenwickTree
from .grid import GridIndex
from .mbr import Rect
from .rtree import RTree, RTreeEntry

__all__ = ["Rect", "RTree", "RTreeEntry", "GridIndex", "FenwickTree"]
