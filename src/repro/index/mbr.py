"""Minimum bounding rectangles for the spatial index substrate."""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

__all__ = ["Rect"]


class Rect:
    """An axis-aligned (hyper-)rectangle ``[low, high]`` in d dimensions.

    Degenerate rectangles (``low == high``) represent points, which is how
    the aggregate-skyline index stores group MBB corners.  Coordinates may
    be ``±inf`` in *query* rectangles (half-open dominance windows).
    """

    __slots__ = ("low", "high")

    def __init__(self, low: Sequence[float], high: Sequence[float]):
        self.low = np.asarray(low, dtype=np.float64)
        self.high = np.asarray(high, dtype=np.float64)
        if self.low.shape != self.high.shape or self.low.ndim != 1:
            raise ValueError("low/high must be 1-d arrays of equal length")
        if np.any(self.low > self.high):
            raise ValueError("low corner exceeds high corner")

    @classmethod
    def point(cls, coordinates: Sequence[float]) -> "Rect":
        coords = np.asarray(coordinates, dtype=np.float64)
        return cls(coords, coords.copy())

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        rect_list = list(rects)
        if not rect_list:
            raise ValueError("cannot take the union of no rectangles")
        low = np.minimum.reduce([r.low for r in rect_list])
        high = np.maximum.reduce([r.high for r in rect_list])
        return cls(low, high)

    @property
    def dimensions(self) -> int:
        return int(self.low.shape[0])

    @property
    def center(self) -> np.ndarray:
        return (self.low + self.high) / 2.0

    def area(self) -> float:
        """Hyper-volume; zero for points."""
        return float(np.prod(self.high - self.low))

    def margin(self) -> float:
        """Sum of edge lengths (the R*-tree's perimeter surrogate)."""
        return float(np.sum(self.high - self.low))

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            np.minimum(self.low, other.low),
            np.maximum(self.high, other.high),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to absorb ``other`` (R-tree choose-leaf)."""
        return self.union(other).area() - self.area()

    def intersects(self, other: "Rect") -> bool:
        return bool(
            np.all(self.low <= other.high) and np.all(other.low <= self.high)
        )

    def contains(self, other: "Rect") -> bool:
        return bool(
            np.all(self.low <= other.low) and np.all(other.high <= self.high)
        )

    def contains_point(self, point: Union[Sequence[float], np.ndarray]) -> bool:
        pt = np.asarray(point, dtype=np.float64)
        return bool(np.all(self.low <= pt) and np.all(pt <= self.high))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return bool(
            np.array_equal(self.low, other.low)
            and np.array_equal(self.high, other.high)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Rect({self.low.tolist()}, {self.high.tolist()})"
