"""Fenwick tree (binary indexed tree) over integer ranks.

Substrate for the 2-d dominance-pair counting kernel
(:mod:`repro.core.fastcount`): supports point updates and prefix/suffix
sums in O(log n).
"""

from __future__ import annotations

__all__ = ["FenwickTree"]


class FenwickTree:
    """Prefix sums over ``size`` integer-indexed slots (0-based API)."""

    def __init__(self, size: int):
        if size < 0:
            raise ValueError("size must be non-negative")
        self._size = size
        self._tree = [0] * (size + 1)
        self._total = 0

    def __len__(self) -> int:
        return self._size

    @property
    def total(self) -> int:
        """Sum over all slots (O(1))."""
        return self._total

    def add(self, index: int, amount: int = 1) -> None:
        """Add ``amount`` at slot ``index``."""
        if not 0 <= index < self._size:
            raise IndexError(index)
        self._total += amount
        position = index + 1
        while position <= self._size:
            self._tree[position] += amount
            position += position & (-position)

    def prefix_sum(self, index: int) -> int:
        """Sum of slots ``0..index`` inclusive (0 for index < 0)."""
        if index >= self._size:
            index = self._size - 1
        if index < 0:
            return 0
        position = index + 1
        result = 0
        while position > 0:
            result += self._tree[position]
            position -= position & (-position)
        return result

    def suffix_sum(self, index: int) -> int:
        """Sum of slots ``index..size-1`` inclusive."""
        if index <= 0:
            return self._total
        return self._total - self.prefix_sum(index - 1)
