"""Execution of planned queries against a table catalog.

Pipeline (mirroring SQL's logical evaluation order, with SKYLINE slotted in
as the paper describes — a group-level filter akin to HAVING)::

    FROM -> WHERE -> GROUP BY -> HAVING -> SKYLINE -> SELECT -> ORDER -> LIMIT

``SKYLINE OF`` without ``GROUP BY`` is the traditional record skyline;
with ``GROUP BY`` it becomes the aggregate skyline of Definition 2 and runs
one of the NL/TR/SI/IN/LO algorithms (``USING ALGORITHM``, default LO) at
``WITH GAMMA`` (default .5).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple, Union

from ..core.algorithms import make_algorithm
from ..core.execution import ExecutionConfig, coerce_execution
from ..core.groups import GroupedDataset
from ..core.result import AggregateSkylineResult
from ..core.skyline import skyline_mask
from ..obs import tracing as obs_tracing
from ..relational.operators import AggregateSpec, group_by
from ..relational.table import Row, Table
from .ast_nodes import AggCall, ColumnRef, Query
from .parser import parse
from .planner import PlanError, QueryPlan, plan_query

__all__ = ["QueryResult", "execute", "Catalog"]

Catalog = Mapping[str, Table]

DEFAULT_GAMMA = 0.5
DEFAULT_ALGORITHM = "LO"


class QueryResult:
    """A result table plus, for skyline queries, the engine-level result.

    ``trace`` is the root span of the execution when tracing is enabled
    (:func:`repro.obs.tracing.enable_tracing`), else ``None``; render it
    with :func:`repro.obs.tracing.render_trace`.
    """

    def __init__(
        self,
        table: Table,
        skyline_result: Optional[AggregateSkylineResult] = None,
        trace: Optional[object] = None,
    ):
        self.table = table
        self.skyline_result = skyline_result
        self.trace = trace

    def __len__(self) -> int:
        return len(self.table)

    def __iter__(self):
        return iter(self.table)

    def to_text(self, max_rows: Optional[int] = None) -> str:
        return self.table.to_text(max_rows=max_rows)


def execute(
    query: Union[str, Query],
    catalog: Catalog,
    execution: Optional[ExecutionConfig] = None,
    **algorithm_options,
) -> QueryResult:
    """Parse (if needed), plan and run a query against ``catalog``.

    Extra keyword arguments are forwarded to the aggregate-skyline algorithm
    constructor (e.g. ``prune_policy="safe"``).  ``execution`` is an
    :class:`~repro.core.execution.ExecutionConfig` (or mapping / spec
    string) selecting the pooled path of the ``USING ALGORITHM`` engines
    that support it (``PAR``, ``IN``, ``LO``).
    """
    execution = coerce_execution(execution)
    ast = parse(query) if isinstance(query, str) else query
    if ast.table not in catalog:
        raise PlanError(
            f"unknown table {ast.table!r}; catalog has {sorted(catalog)}"
        )
    table = catalog[ast.table]
    tracer = obs_tracing.get_tracer()
    with tracer.span("query.execute", table=ast.table) as root:
        with tracer.span("query.plan"):
            plan = plan_query(ast, table)

        working = table
        if plan.where_predicate is not None:
            with tracer.span("query.scan", rows_in=len(table)) as scan:
                working = working.select(plan.where_predicate)
                scan.set_attribute("rows_out", len(working))

        if ast.is_aggregate_skyline:
            result = _run_aggregate_skyline(
                plan, working, algorithm_options, execution
            )
        elif ast.is_record_skyline:
            result = _run_record_skyline(plan, working)
        elif ast.group_by:
            result = _run_group_by(plan, working)
        else:
            result = _run_plain_select(plan, working)
        root.set_attribute("rows_out", len(result))
    if root.is_recording:
        result.trace = root
    return result


# ----------------------------------------------------------------------
# execution strategies
# ----------------------------------------------------------------------


def _run_plain_select(plan: QueryPlan, working: Table) -> QueryResult:
    ast = plan.query
    working, ordered = _order_early(ast, working)
    if not ast.select_star:
        names = [item.expression.name for item in ast.select]  # type: ignore[union-attr]
        working = working.project(names)
        aliases = {
            item.expression.name: item.output_name  # type: ignore[union-attr]
            for item in ast.select
            if item.alias
        }
        if aliases:
            working = working.rename(aliases)
    return QueryResult(_order_and_limit(ast, working, skip_order=ordered))


def _run_record_skyline(plan: QueryPlan, working: Table) -> QueryResult:
    ast = plan.query
    measures = [spec.column for spec in ast.skyline]
    directions = [spec.direction for spec in ast.skyline]
    if len(working) == 0:
        result = working
    else:
        with obs_tracing.get_tracer().span(
            "query.skyline", rows_in=len(working), record_level=True
        ) as span:
            values = [
                [float(row[working.column_position(c)]) for c in measures]
                for row in working.rows
            ]
            mask = skyline_mask(values, directions)
            result = Table(
                working.columns,
                [row for row, keep in zip(working.rows, mask) if keep],
            )
            span.set_attribute("rows_out", len(result))
    result, ordered = _order_early(ast, result)
    if not ast.select_star:
        result = result.project(
            [item.expression.name for item in ast.select]  # type: ignore[union-attr]
        )
    return QueryResult(_order_and_limit(ast, result, skip_order=ordered))


def _run_group_by(plan: QueryPlan, working: Table) -> QueryResult:
    ast = plan.query
    tracer = obs_tracing.get_tracer()
    with tracer.span("query.group_by", rows_in=len(working)) as span:
        grouped = group_by(
            working,
            ast.group_by,
            aggregates=plan.aggregate_specs(),
            having=plan.having_predicate,
        )
        span.set_attribute("groups", len(grouped))
    # Order before projection so ORDER BY may use grouping columns and
    # aggregates that the SELECT list drops (standard SQL behaviour).
    with tracer.span("query.order_limit"):
        grouped, ordered = _order_early(ast, grouped)
        projected = _project_grouped(plan, grouped)
        final = _order_and_limit(ast, projected, skip_order=ordered)
    return QueryResult(final)


def _run_aggregate_skyline(
    plan: QueryPlan,
    working: Table,
    algorithm_options: Dict[str, Any],
    execution: Optional[ExecutionConfig] = None,
) -> QueryResult:
    ast = plan.query
    tracer = obs_tracing.get_tracer()
    if len(working) == 0:
        empty = Table(_output_columns(plan), [])
        return QueryResult(empty, None)

    # HAVING first: it restricts which groups even compete in the skyline.
    with tracer.span("query.group_by", rows_in=len(working)) as span:
        partitions = working.group_rows(ast.group_by)
        span.set_attribute("groups", len(partitions))
    if plan.having_predicate is not None:
        with tracer.span("query.having", groups_in=len(partitions)) as span:
            partitions = _filter_partitions(plan, working, partitions)
            span.set_attribute("groups_out", len(partitions))
        if not partitions:
            return QueryResult(Table(_output_columns(plan), []), None)

    measures = [spec.column for spec in ast.skyline]
    directions = [spec.direction for spec in ast.skyline]
    positions = [working.column_position(c) for c in measures]
    gamma = ast.gamma if ast.gamma is not None else DEFAULT_GAMMA

    with tracer.span(
        "query.skyline", groups=len(partitions), gamma=float(gamma)
    ) as span:
        if ast.weight is not None:
            skyline_result = _weighted_skyline(
                plan, working, partitions, positions, directions, gamma
            )
        else:
            groups: Dict[Hashable, List[Tuple[float, ...]]] = {
                key: [tuple(float(row[p]) for p in positions) for row in rows]
                for key, rows in partitions.items()
            }
            dataset = GroupedDataset(groups, directions=directions)

            options = dict(algorithm_options)
            if ast.prune_policy is not None:
                options.setdefault("prune_policy", ast.prune_policy)
            algorithm = make_algorithm(
                ast.algorithm or DEFAULT_ALGORITHM,
                gamma,
                execution=execution,
                **options,
            )
            skyline_result = algorithm.compute(dataset)
        span.set_attribute("algorithm", skyline_result.stats.algorithm)
        span.set_attribute("survivors", len(skyline_result))
    surviving = skyline_result.as_set()

    with tracer.span("query.order_limit"):
        kept_rows = [
            row
            for key, rows in partitions.items()
            if key in surviving
            for row in rows
        ]
        restricted = Table(working.columns, kept_rows)
        grouped = group_by(
            restricted, ast.group_by, aggregates=plan.aggregate_specs()
        )
        grouped, ordered = _order_early(ast, grouped)
        projected = _project_grouped(plan, grouped)
        final = _order_and_limit(ast, projected, skip_order=ordered)
    return QueryResult(final, skyline_result)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _weighted_skyline(
    plan: QueryPlan,
    working: Table,
    partitions: Dict[Tuple, List[Row]],
    positions: List[int],
    directions,
    gamma,
) -> AggregateSkylineResult:
    """Run the weighted engine for a ``SKYLINE OF ... WEIGHT BY w`` query."""
    from ..core.weighted import weighted_aggregate_skyline

    ast = plan.query
    weight_position = working.column_position(ast.weight)
    groups = {}
    for key, rows in partitions.items():
        records = [tuple(float(row[p]) for p in positions) for row in rows]
        weights = []
        for row in rows:
            value = row[weight_position]
            if value is None or value != int(value):
                raise PlanError(
                    f"WEIGHT BY {ast.weight!r} needs non-negative integer"
                    f" values; found {value!r}"
                )
            weights.append(int(value))
        groups[key] = (records, weights)
    return weighted_aggregate_skyline(
        groups, gamma=gamma, directions=directions
    )


def _filter_partitions(
    plan: QueryPlan,
    working: Table,
    partitions: Dict[Tuple, List[Row]],
) -> Dict[Tuple, List[Row]]:
    """Apply HAVING to raw partitions, keeping the surviving groups."""
    ast = plan.query
    specs = [
        AggregateSpec(call.function, call.column)
        for call in plan.having_aggregates
    ]
    kept: Dict[Tuple, List[Row]] = {}
    for key, rows in partitions.items():
        env: Dict[str, Any] = dict(zip(ast.group_by, key))
        for spec in specs:
            if spec.column == "*":
                env[spec.alias] = len(rows)
            else:
                position = working.column_position(spec.column)
                from ..relational.aggregates import apply_aggregate

                env[spec.alias] = apply_aggregate(
                    spec.function, [row[position] for row in rows]
                )
        assert plan.having_predicate is not None
        if plan.having_predicate(env):
            kept[key] = rows
    return kept


def _output_columns(plan: QueryPlan) -> List[str]:
    ast = plan.query
    if ast.select_star:
        return list(ast.group_by)
    return [item.output_name for item in ast.select]


def _project_grouped(plan: QueryPlan, grouped: Table) -> Table:
    """Project the grouped table onto the SELECT list (with aliases)."""
    ast = plan.query
    if ast.select_star:
        return grouped.project(ast.group_by)
    names: List[str] = []
    renames: Dict[str, str] = {}
    for item in ast.select:
        if isinstance(item.expression, ColumnRef):
            source = item.expression.name
        else:
            assert isinstance(item.expression, AggCall)
            source = item.expression.label
        names.append(source)
        if item.output_name != source:
            renames[source] = item.output_name
    projected = grouped.project(names)
    if renames:
        projected = projected.rename(renames)
    return projected


def _order_early(ast: Query, table: Table) -> Tuple[Table, bool]:
    """Sort before projection when every ORDER BY column is still present.

    Lets ``SELECT title ... ORDER BY pop`` work the SQL way (ordering on a
    column that the projection then drops).  Returns the (possibly sorted)
    table and whether ordering already happened.
    """
    if not ast.order_by:
        return table, False
    if all(spec.column in table.columns for spec in ast.order_by):
        ordered = table.order_by(
            [(spec.column, spec.descending) for spec in ast.order_by]
        )
        return ordered, True
    return table, False


def _order_and_limit(ast: Query, table: Table, skip_order: bool = False) -> Table:
    if ast.order_by and not skip_order:
        table = table.order_by(
            [(spec.column, spec.descending) for spec in ast.order_by]
        )
    if ast.limit is not None:
        table = table.limit(ast.limit)
    return table
