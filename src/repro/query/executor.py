"""Execution of planned queries against a table catalog.

Pipeline (mirroring SQL's logical evaluation order, with SKYLINE slotted in
as the paper describes — a group-level filter akin to HAVING)::

    FROM -> WHERE -> GROUP BY -> HAVING -> SKYLINE -> SELECT -> ORDER -> LIMIT

``SKYLINE OF`` without ``GROUP BY`` is the traditional record skyline;
with ``GROUP BY`` it becomes the aggregate skyline of Definition 2 and runs
one of the NL/TR/SI/IN/LO algorithms (``USING ALGORITHM``, default LO —
or ``AUTO`` to let the plan optimizer pick) at ``WITH GAMMA`` (default .5).

Queries are lowered to the shared :class:`~repro.plan.logical.LogicalPlan`
(:func:`~repro.query.planner.compile_logical`) and interpreted node by
node; the skyline node finishes through the same
:meth:`~repro.plan.physical.PhysicalPlan.execute` as the dataset-level
entry paths.  ``EXPLAIN SELECT ...`` (or ``execute(..., explain=True)``)
renders the plan tree instead of running the query.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple, Union

from ..core.execution import ExecutionConfig, coerce_execution
from ..core.groups import GroupedDataset
from ..core.result import AggregateSkylineResult
from ..core.skyline import skyline_mask
from ..obs import tracing as obs_tracing
from ..plan import optimize, render_plan
from ..plan.logical import (
    AggregateSkylineNode,
    FilterNode,
    GroupNode,
    LogicalPlan,
    OrderLimitNode,
    ProjectNode,
    ScanNode,
)
from ..relational.operators import AggregateSpec, group_by
from ..relational.table import Row, Table
from .ast_nodes import AggCall, ColumnRef, Query
from .parser import parse
from .planner import (
    DEFAULT_ALGORITHM,
    DEFAULT_GAMMA,
    PlanError,
    QueryPlan,
    compile_logical,
    plan_query,
)

__all__ = ["QueryResult", "execute", "Catalog"]

Catalog = Mapping[str, Table]


class QueryResult:
    """A result table plus, for skyline queries, the engine-level result.

    ``trace`` is the root span of the execution when tracing is enabled
    (:func:`repro.obs.tracing.enable_tracing`), else ``None``; render it
    with :func:`repro.obs.tracing.render_trace`.
    """

    def __init__(
        self,
        table: Table,
        skyline_result: Optional[AggregateSkylineResult] = None,
        trace: Optional[object] = None,
    ):
        self.table = table
        self.skyline_result = skyline_result
        self.trace = trace

    def __len__(self) -> int:
        return len(self.table)

    def __iter__(self):
        return iter(self.table)

    def to_text(self, max_rows: Optional[int] = None) -> str:
        return self.table.to_text(max_rows=max_rows)


def execute(
    query: Union[str, Query],
    catalog: Catalog,
    execution: Optional[ExecutionConfig] = None,
    explain: bool = False,
    **algorithm_options,
) -> QueryResult:
    """Parse (if needed), plan and run a query against ``catalog``.

    Extra keyword arguments are forwarded to the aggregate-skyline algorithm
    constructor (e.g. ``prune_policy="safe"``).  ``execution`` is an
    :class:`~repro.core.execution.ExecutionConfig` (or mapping / spec
    string) selecting the pooled path of the ``USING ALGORITHM`` engines
    that support it (``PAR``, ``IN``, ``LO``).  ``explain=True`` (or an
    ``EXPLAIN SELECT ...`` query) returns the rendered plan tree as a
    one-column ``plan`` table instead of executing.
    """
    execution = coerce_execution(execution)
    ast = parse(query) if isinstance(query, str) else query
    if ast.table not in catalog:
        raise PlanError(
            f"unknown table {ast.table!r}; catalog has {sorted(catalog)}"
        )
    table = catalog[ast.table]
    tracer = obs_tracing.get_tracer()
    with tracer.span("query.execute", table=ast.table) as root:
        with tracer.span("query.plan"):
            plan = plan_query(ast, table)
            logical = compile_logical(plan)
        if explain or ast.explain:
            text = _explain_text(
                plan, logical, table, execution, algorithm_options
            )
            result = QueryResult(
                Table(["plan"], [[line] for line in text.splitlines()])
            )
        else:
            result = _execute_logical(
                plan, logical, table, execution, algorithm_options
            )
        root.set_attribute("rows_out", len(result))
    if root.is_recording:
        result.trace = root
    return result


# ----------------------------------------------------------------------
# logical-plan interpretation
# ----------------------------------------------------------------------


def _execute_logical(
    plan: QueryPlan,
    logical: LogicalPlan,
    table: Table,
    execution: Optional[ExecutionConfig],
    algorithm_options: Dict[str, Any],
) -> QueryResult:
    """Interpret the logical node chain against ``table``.

    One pass over the nodes; the trailing project node finishes its
    family's pipeline (projection + ORDER BY + LIMIT share span placement
    with the pre-planner executor, so traces are unchanged).
    """
    ast = plan.query
    tracer = obs_tracing.get_tracer()
    working = table
    partitions: Optional[Dict[Tuple, List[Row]]] = None
    skyline_result: Optional[AggregateSkylineResult] = None
    for node in logical.nodes:
        if isinstance(node, ScanNode):
            working = table
        elif isinstance(node, FilterNode):
            with tracer.span("query.scan", rows_in=len(working)) as scan:
                working = working.select(node.predicate)
                scan.set_attribute("rows_out", len(working))
        elif isinstance(node, GroupNode) and node.raw:
            # The aggregate-skyline path: raw partitions, HAVING first —
            # it restricts which groups even compete in the skyline.
            if len(working) == 0:
                return QueryResult(Table(_output_columns(plan), []), None)
            with tracer.span("query.group_by", rows_in=len(working)) as span:
                partitions = working.group_rows(ast.group_by)
                span.set_attribute("groups", len(partitions))
            if plan.having_predicate is not None:
                with tracer.span(
                    "query.having", groups_in=len(partitions)
                ) as span:
                    partitions = _filter_partitions(plan, working, partitions)
                    span.set_attribute("groups_out", len(partitions))
                if not partitions:
                    return QueryResult(
                        Table(_output_columns(plan), []), None
                    )
        elif isinstance(node, GroupNode):
            with tracer.span("query.group_by", rows_in=len(working)) as span:
                working = group_by(
                    working,
                    ast.group_by,
                    aggregates=plan.aggregate_specs(),
                    having=plan.having_predicate,
                )
                span.set_attribute("groups", len(working))
        elif isinstance(node, AggregateSkylineNode):
            if node.record_level:
                working = _record_skyline(ast, working)
            else:
                assert partitions is not None
                skyline_result = _aggregate_skyline(
                    plan,
                    logical,
                    working,
                    partitions,
                    execution,
                    algorithm_options,
                )
        elif isinstance(node, ProjectNode):
            return _finish(
                plan, node.mode, working, partitions, skyline_result
            )
        elif isinstance(node, OrderLimitNode):  # pragma: no cover - _finish
            pass                                # consumed ORDER BY / LIMIT
    raise AssertionError("logical plan ended without a project node")


def _finish(
    plan: QueryPlan,
    mode: str,
    working: Table,
    partitions: Optional[Dict[Tuple, List[Row]]],
    skyline_result: Optional[AggregateSkylineResult],
) -> QueryResult:
    """Projection + ORDER BY + LIMIT, per query family (span-preserving)."""
    ast = plan.query
    tracer = obs_tracing.get_tracer()
    if mode == "select":
        working, ordered = _order_early(ast, working)
        if not ast.select_star:
            names = [item.expression.name for item in ast.select]  # type: ignore[union-attr]
            working = working.project(names)
            aliases = {
                item.expression.name: item.output_name  # type: ignore[union-attr]
                for item in ast.select
                if item.alias
            }
            if aliases:
                working = working.rename(aliases)
        return QueryResult(_order_and_limit(ast, working, skip_order=ordered))
    if mode == "record":
        working, ordered = _order_early(ast, working)
        if not ast.select_star:
            working = working.project(
                [item.expression.name for item in ast.select]  # type: ignore[union-attr]
            )
        return QueryResult(_order_and_limit(ast, working, skip_order=ordered))
    if mode == "grouped-agg":
        # Order before projection so ORDER BY may use grouping columns and
        # aggregates that the SELECT list drops (standard SQL behaviour).
        with tracer.span("query.order_limit"):
            working, ordered = _order_early(ast, working)
            projected = _project_grouped(plan, working)
            final = _order_and_limit(ast, projected, skip_order=ordered)
        return QueryResult(final)
    assert mode == "grouped-skyline" and skyline_result is not None
    assert partitions is not None
    surviving = skyline_result.as_set()
    with tracer.span("query.order_limit"):
        kept_rows = [
            row
            for key, rows in partitions.items()
            if key in surviving
            for row in rows
        ]
        restricted = Table(working.columns, kept_rows)
        grouped = group_by(
            restricted, ast.group_by, aggregates=plan.aggregate_specs()
        )
        grouped, ordered = _order_early(ast, grouped)
        projected = _project_grouped(plan, grouped)
        final = _order_and_limit(ast, projected, skip_order=ordered)
    return QueryResult(final, skyline_result)


def _record_skyline(ast: Query, working: Table) -> Table:
    """The record-level skyline node (no grouping; Section 1's classic)."""
    measures = [spec.column for spec in ast.skyline]
    directions = [spec.direction for spec in ast.skyline]
    if len(working) == 0:
        return working
    with obs_tracing.get_tracer().span(
        "query.skyline", rows_in=len(working), record_level=True
    ) as span:
        values = [
            [float(row[working.column_position(c)]) for c in measures]
            for row in working.rows
        ]
        mask = skyline_mask(values, directions)
        result = Table(
            working.columns,
            [row for row, keep in zip(working.rows, mask) if keep],
        )
        span.set_attribute("rows_out", len(result))
    return result


def _skyline_dataset(
    plan: QueryPlan,
    working: Table,
    partitions: Dict[Tuple, List[Row]],
) -> GroupedDataset:
    """Partitions → the GroupedDataset the skyline algorithm consumes."""
    ast = plan.query
    positions = [working.column_position(spec.column) for spec in ast.skyline]
    directions = [spec.direction for spec in ast.skyline]
    groups: Dict[Hashable, List[Tuple[float, ...]]] = {
        key: [tuple(float(row[p]) for p in positions) for row in rows]
        for key, rows in partitions.items()
    }
    return GroupedDataset(groups, directions=directions)


def _aggregate_skyline(
    plan: QueryPlan,
    logical: LogicalPlan,
    working: Table,
    partitions: Dict[Tuple, List[Row]],
    execution: Optional[ExecutionConfig],
    algorithm_options: Dict[str, Any],
) -> AggregateSkylineResult:
    """The aggregate-skyline node: optimize (or force) and execute."""
    ast = plan.query
    tracer = obs_tracing.get_tracer()
    gamma = ast.gamma if ast.gamma is not None else DEFAULT_GAMMA
    with tracer.span(
        "query.skyline", groups=len(partitions), gamma=float(gamma)
    ) as span:
        if ast.weight is not None:
            positions = [
                working.column_position(spec.column) for spec in ast.skyline
            ]
            directions = [spec.direction for spec in ast.skyline]
            skyline_result = _weighted_skyline(
                plan, working, partitions, positions, directions, gamma
            )
        else:
            dataset = _skyline_dataset(plan, working, partitions)
            options = dict(algorithm_options)
            if ast.prune_policy is not None:
                options.setdefault("prune_policy", ast.prune_policy)
            physical = optimize(
                logical,
                dataset,
                gamma=gamma,
                algorithm=ast.algorithm or DEFAULT_ALGORITHM,
                execution=execution,
                options=options,
                entry="sql",
            )
            skyline_result = physical.execute(dataset)
        span.set_attribute("algorithm", skyline_result.stats.algorithm)
        span.set_attribute("survivors", len(skyline_result))
    return skyline_result


def _explain_text(
    plan: QueryPlan,
    logical: LogicalPlan,
    table: Table,
    execution: Optional[ExecutionConfig],
    algorithm_options: Dict[str, Any],
) -> str:
    """Render the plan tree, probing the optimizer for skyline queries.

    The probe replays the cheap pre-skyline stages (filter, partition,
    HAVING) to build the dataset the optimizer would see; nothing is
    computed.  Non-skyline and weighted queries, and queries whose input
    comes up empty, render the logical structure alone.
    """
    ast = plan.query
    if ast.is_aggregate_skyline and ast.weight is None:
        working = table
        if plan.where_predicate is not None:
            working = working.select(plan.where_predicate)
        partitions = (
            working.group_rows(ast.group_by) if len(working) else {}
        )
        if plan.having_predicate is not None and partitions:
            partitions = _filter_partitions(plan, working, partitions)
        if partitions:
            dataset = _skyline_dataset(plan, working, partitions)
            gamma = ast.gamma if ast.gamma is not None else DEFAULT_GAMMA
            options = dict(algorithm_options)
            if ast.prune_policy is not None:
                options.setdefault("prune_policy", ast.prune_policy)
            physical = optimize(
                logical,
                dataset,
                gamma=gamma,
                algorithm=ast.algorithm or DEFAULT_ALGORITHM,
                execution=execution,
                options=options,
                entry="sql",
                probe=True,
            )
            return physical.render()
    return render_plan(logical)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _weighted_skyline(
    plan: QueryPlan,
    working: Table,
    partitions: Dict[Tuple, List[Row]],
    positions: List[int],
    directions,
    gamma,
) -> AggregateSkylineResult:
    """Run the weighted engine for a ``SKYLINE OF ... WEIGHT BY w`` query."""
    from ..core.weighted import weighted_aggregate_skyline

    ast = plan.query
    weight_position = working.column_position(ast.weight)
    groups = {}
    for key, rows in partitions.items():
        records = [tuple(float(row[p]) for p in positions) for row in rows]
        weights = []
        for row in rows:
            value = row[weight_position]
            if value is None or value != int(value):
                raise PlanError(
                    f"WEIGHT BY {ast.weight!r} needs non-negative integer"
                    f" values; found {value!r}"
                )
            weights.append(int(value))
        groups[key] = (records, weights)
    return weighted_aggregate_skyline(
        groups, gamma=gamma, directions=directions
    )


def _filter_partitions(
    plan: QueryPlan,
    working: Table,
    partitions: Dict[Tuple, List[Row]],
) -> Dict[Tuple, List[Row]]:
    """Apply HAVING to raw partitions, keeping the surviving groups."""
    ast = plan.query
    specs = [
        AggregateSpec(call.function, call.column)
        for call in plan.having_aggregates
    ]
    kept: Dict[Tuple, List[Row]] = {}
    for key, rows in partitions.items():
        env: Dict[str, Any] = dict(zip(ast.group_by, key))
        for spec in specs:
            if spec.column == "*":
                env[spec.alias] = len(rows)
            else:
                position = working.column_position(spec.column)
                from ..relational.aggregates import apply_aggregate

                env[spec.alias] = apply_aggregate(
                    spec.function, [row[position] for row in rows]
                )
        assert plan.having_predicate is not None
        if plan.having_predicate(env):
            kept[key] = rows
    return kept


def _output_columns(plan: QueryPlan) -> List[str]:
    ast = plan.query
    if ast.select_star:
        return list(ast.group_by)
    return [item.output_name for item in ast.select]


def _project_grouped(plan: QueryPlan, grouped: Table) -> Table:
    """Project the grouped table onto the SELECT list (with aliases)."""
    ast = plan.query
    if ast.select_star:
        return grouped.project(ast.group_by)
    names: List[str] = []
    renames: Dict[str, str] = {}
    for item in ast.select:
        if isinstance(item.expression, ColumnRef):
            source = item.expression.name
        else:
            assert isinstance(item.expression, AggCall)
            source = item.expression.label
        names.append(source)
        if item.output_name != source:
            renames[source] = item.output_name
    projected = grouped.project(names)
    if renames:
        projected = projected.rename(renames)
    return projected


def _order_early(ast: Query, table: Table) -> Tuple[Table, bool]:
    """Sort before projection when every ORDER BY column is still present.

    Lets ``SELECT title ... ORDER BY pop`` work the SQL way (ordering on a
    column that the projection then drops).  Returns the (possibly sorted)
    table and whether ordering already happened.
    """
    if not ast.order_by:
        return table, False
    if all(spec.column in table.columns for spec in ast.order_by):
        ordered = table.order_by(
            [(spec.column, spec.descending) for spec in ast.order_by]
        )
        return ordered, True
    return table, False


def _order_and_limit(ast: Query, table: Table, skip_order: bool = False) -> Table:
    if ast.order_by and not skip_order:
        table = table.order_by(
            [(spec.column, spec.descending) for spec in ast.order_by]
        )
    if ast.limit is not None:
        table = table.limit(ast.limit)
    return table
