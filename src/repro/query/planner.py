"""Validation and planning of parsed queries.

The planner checks a :class:`~repro.query.ast_nodes.Query` against a table's
columns, collects the aggregates the executor must compute, and compiles
filter expressions into predicates over row dictionaries.
:func:`compile_logical` then lowers the validated query to the shared
:class:`~repro.plan.logical.LogicalPlan` node chain that the executor
interprets and the plan optimizer keys its decisions on — the same IR the
dataset-level entry paths (``aggregate_skyline``, the engine) use.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Optional, Set

from ..plan.logical import (
    AggregateSkylineNode,
    FilterNode,
    GroupNode,
    LogicalNode,
    LogicalPlan,
    OrderLimitNode,
    ProjectNode,
    ScanNode,
)
from ..relational.operators import AggregateSpec
from ..relational.table import Table
from .ast_nodes import (
    AggCall,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    Logical,
    Not,
    Operand,
    Query,
)

__all__ = [
    "PlanError",
    "QueryPlan",
    "plan_query",
    "compile_predicate",
    "compile_logical",
    "DEFAULT_GAMMA",
    "DEFAULT_ALGORITHM",
]

#: Dialect defaults: WITH GAMMA .5 (the paper's parameter-free choice) and
#: USING ALGORITHM LO (the evaluation's overall winner).
DEFAULT_GAMMA = 0.5
DEFAULT_ALGORITHM = "LO"

_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class PlanError(ValueError):
    """Raised when a query is semantically invalid for its table."""


class QueryPlan:
    """Everything the executor needs, validated against the input table."""

    def __init__(self, query: Query, table: Table):
        self.query = query
        self.table = table
        self.where_predicate = (
            compile_predicate(query.where) if query.where is not None else None
        )
        self.having_predicate = (
            compile_predicate(query.having) if query.having is not None else None
        )
        self.having_aggregates = _collect_agg_calls(query.having)
        self.select_aggregates = [
            item.expression
            for item in query.select
            if isinstance(item.expression, AggCall)
        ]
        self._validate()

    # ------------------------------------------------------------------

    def aggregate_specs(self) -> List[AggregateSpec]:
        """Aggregates to compute per group (select + having, deduplicated)."""
        seen: Set[str] = set()
        specs: List[AggregateSpec] = []
        for call in [*self.select_aggregates, *self.having_aggregates]:
            if call.label not in seen:
                seen.add(call.label)
                specs.append(AggregateSpec(call.function, call.column))
        return specs

    # ------------------------------------------------------------------

    def _validate(self) -> None:
        query, table = self.query, self.table
        columns = set(table.columns)

        def require_column(name: str, context: str) -> None:
            if name not in columns:
                raise PlanError(
                    f"unknown column {name!r} in {context};"
                    f" table has {sorted(columns)}"
                )

        if query.where is not None:
            for ref in _collect_column_refs(query.where):
                require_column(ref, "WHERE")
            if _collect_agg_calls(query.where):
                raise PlanError("aggregates are not allowed in WHERE")

        for column in query.group_by:
            require_column(column, "GROUP BY")
        for spec in query.skyline:
            require_column(spec.column, "SKYLINE OF")
        for call in self.having_aggregates:
            if call.column != "*":
                require_column(call.column, "HAVING")
        if query.having is not None and not query.group_by:
            raise PlanError("HAVING requires GROUP BY")
        if query.having is not None:
            for ref in _collect_column_refs(query.having):
                if ref not in query.group_by:
                    raise PlanError(
                        f"HAVING may only reference grouping columns or"
                        f" aggregates, not {ref!r}"
                    )

        grouped = bool(query.group_by)
        for item in query.select:
            expr = item.expression
            if isinstance(expr, ColumnRef):
                require_column(expr.name, "SELECT")
                if grouped and expr.name not in query.group_by:
                    raise PlanError(
                        f"SELECT column {expr.name!r} must appear in GROUP BY"
                    )
            elif isinstance(expr, AggCall):
                if not grouped:
                    raise PlanError(
                        "aggregate in SELECT requires GROUP BY"
                    )
                if expr.column != "*":
                    require_column(expr.column, "SELECT")
        if query.gamma is not None and not query.skyline:
            raise PlanError("WITH GAMMA requires a SKYLINE OF clause")
        if query.algorithm is not None and not query.is_aggregate_skyline:
            raise PlanError(
                "USING ALGORITHM requires GROUP BY with SKYLINE OF"
            )
        if query.prune_policy is not None and not query.is_aggregate_skyline:
            raise PlanError("PRUNE requires GROUP BY with SKYLINE OF")
        if query.weight is not None:
            if not query.is_aggregate_skyline:
                raise PlanError(
                    "WEIGHT BY requires GROUP BY with SKYLINE OF"
                )
            require_column(query.weight, "WEIGHT BY")
            if query.algorithm is not None:
                raise PlanError(
                    "WEIGHT BY uses the dedicated weighted engine; drop"
                    " USING ALGORITHM"
                )


def plan_query(query: Query, table: Table) -> QueryPlan:
    """Validate ``query`` against ``table`` and return an executable plan."""
    return QueryPlan(query, table)


# ----------------------------------------------------------------------
# lowering to the shared logical plan
# ----------------------------------------------------------------------


def _output_names(plan: QueryPlan) -> List[str]:
    query = plan.query
    if query.select_star:
        return list(query.group_by)
    return [item.output_name for item in query.select]


def compile_logical(plan: QueryPlan) -> LogicalPlan:
    """Lower a validated query to the shared logical node chain.

    One chain shape per query family, always ending in project +
    order/limit so plan shapes line up across families::

        aggregate skyline: scan → [filter] → group(raw) → skyline → project → order/limit
        record skyline:    scan → [filter] → skyline(record) → project → order/limit
        plain GROUP BY:    scan → [filter] → group(agg) → project → order/limit
        plain SELECT:      scan → [filter] → project → order/limit

    Compiled predicates ride on the nodes for execution but stay out of
    the signatures, so :meth:`~repro.plan.logical.LogicalPlan.shape` only
    reflects query text — the property the plan cache keys on.
    """
    from .render import render_expression

    query = plan.query
    nodes: List[LogicalNode] = [
        ScanNode(source=query.table, records=len(plan.table))
    ]
    if query.where is not None:
        nodes.append(
            FilterNode(
                description=render_expression(query.where),
                predicate=plan.where_predicate,
            )
        )
    having = (
        render_expression(query.having) if query.having is not None else None
    )
    measures = tuple(spec.column for spec in query.skyline)
    directions = tuple(spec.direction.value for spec in query.skyline)
    if query.is_aggregate_skyline:
        nodes.append(
            GroupNode(keys=tuple(query.group_by), raw=True, having=having)
        )
        nodes.append(
            AggregateSkylineNode(
                measures=measures,
                directions=directions,
                gamma=(
                    query.gamma if query.gamma is not None else DEFAULT_GAMMA
                ),
                algorithm=(
                    (query.algorithm or DEFAULT_ALGORITHM).strip().upper()
                    if query.weight is None
                    else None
                ),
                prune_policy=query.prune_policy,
                weight=query.weight,
            )
        )
        nodes.append(
            ProjectNode(
                columns=tuple(_output_names(plan)), mode="grouped-skyline"
            )
        )
    elif query.is_record_skyline:
        nodes.append(
            AggregateSkylineNode(
                measures=measures, directions=directions, record_level=True
            )
        )
        nodes.append(
            ProjectNode(
                columns=(
                    ("*",)
                    if query.select_star
                    else tuple(item.expression.name for item in query.select)  # type: ignore[union-attr]
                ),
                mode="record",
            )
        )
    elif query.group_by:
        nodes.append(
            GroupNode(
                keys=tuple(query.group_by),
                raw=False,
                having=having,
                aggregates=tuple(
                    spec.alias for spec in plan.aggregate_specs()
                ),
            )
        )
        nodes.append(
            ProjectNode(
                columns=tuple(_output_names(plan)), mode="grouped-agg"
            )
        )
    else:
        nodes.append(
            ProjectNode(
                columns=(
                    ("*",)
                    if query.select_star
                    else tuple(item.output_name for item in query.select)
                ),
                mode="select",
            )
        )
    nodes.append(
        OrderLimitNode(
            order=tuple(
                (spec.column, spec.descending) for spec in query.order_by
            ),
            limit=query.limit,
        )
    )
    return LogicalPlan(tuple(nodes))


# ----------------------------------------------------------------------
# expression compilation
# ----------------------------------------------------------------------


def compile_predicate(expression: Expression) -> Callable[[Dict[str, Any]], bool]:
    """Compile a boolean expression into ``env -> bool``.

    ``env`` maps column names (and aggregate labels like ``max(qual)``) to
    values.  SQL-ish null semantics: any comparison with ``None`` is false.
    """

    def evaluate(expr: Expression, env: Dict[str, Any]) -> bool:
        if isinstance(expr, Comparison):
            left = _operand_value(expr.left, env)
            right = _operand_value(expr.right, env)
            if left is None or right is None:
                return False
            return _OPS[expr.op](left, right)
        if isinstance(expr, Logical):
            if expr.op == "AND":
                return all(evaluate(op, env) for op in expr.operands)
            return any(evaluate(op, env) for op in expr.operands)
        if isinstance(expr, Not):
            return not evaluate(expr.operand, env)
        raise TypeError(f"not a boolean expression: {expr!r}")

    return lambda env: evaluate(expression, env)


def _operand_value(operand: Operand, env: Dict[str, Any]) -> Any:
    if isinstance(operand, Literal):
        return operand.value
    if isinstance(operand, ColumnRef):
        if operand.name not in env:
            raise PlanError(f"unknown name {operand.name!r} in expression")
        return env[operand.name]
    if isinstance(operand, AggCall):
        if operand.label not in env:
            raise PlanError(
                f"aggregate {operand.label!r} not available in this context"
            )
        return env[operand.label]
    raise TypeError(f"not an operand: {operand!r}")


def _collect_column_refs(expression: Optional[Expression]) -> List[str]:
    refs: List[str] = []

    def walk(expr) -> None:
        if expr is None:
            return
        if isinstance(expr, Comparison):
            for side in (expr.left, expr.right):
                if isinstance(side, ColumnRef):
                    refs.append(side.name)
        elif isinstance(expr, Logical):
            for op in expr.operands:
                walk(op)
        elif isinstance(expr, Not):
            walk(expr.operand)

    walk(expression)
    return refs


def _collect_agg_calls(expression: Optional[Expression]) -> List[AggCall]:
    calls: List[AggCall] = []

    def walk(expr) -> None:
        if expr is None:
            return
        if isinstance(expr, Comparison):
            for side in (expr.left, expr.right):
                if isinstance(side, AggCall):
                    calls.append(side)
        elif isinstance(expr, Logical):
            for op in expr.operands:
                walk(op)
        elif isinstance(expr, Not):
            walk(expr.operand)

    walk(expression)
    return calls
