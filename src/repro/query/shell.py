"""Interactive shell for the SKYLINE dialect (``aggskyline shell``).

Statements end with ``;`` and may span lines.  Dot-commands manage the
session:

=============== =====================================================
``.help``       this text
``.tables``     list tables
``.schema T``   columns of table T
``.load FILE``  load a CSV file as a table (named after its stem)
``.open DIR``   replace the session database with one loaded from DIR
``.save DIR``   persist the session database to DIR
``.timing``     toggle per-statement timing
``.quit``       leave
=============== =====================================================

The loop reads from / writes to arbitrary streams, so the test suite can
drive it like a user would.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import IO, Optional

from ..relational.csvio import load_csv
from ..relational.database import Database, DatabaseError
from .planner import PlanError
from .statements import execute_statement
from .tokenizer import TokenizeError

__all__ = ["Shell", "run_shell"]

_HELP = __doc__.split("Statements end", 1)[1]


class Shell:
    """One interactive session over a :class:`Database`."""

    def __init__(
        self,
        database: Optional[Database] = None,
        stdin: Optional[IO[str]] = None,
        stdout: Optional[IO[str]] = None,
        prompt: str = "sky> ",
        continuation: str = "...> ",
    ):
        self.database = database if database is not None else Database()
        self._stdin = stdin if stdin is not None else sys.stdin
        self._stdout = stdout if stdout is not None else sys.stdout
        self._prompt = prompt
        self._continuation = continuation
        self._timing = False
        self._interactive = stdin is None

    # ------------------------------------------------------------------

    def _write(self, text: str = "") -> None:
        self._stdout.write(text + "\n")

    def _read_statement(self) -> Optional[str]:
        """Read until ``;`` (or a dot-command / EOF).  None = EOF."""
        pieces = []
        prompt = self._prompt
        while True:
            if self._interactive:
                self._stdout.write(prompt)
                self._stdout.flush()
            line = self._stdin.readline()
            if not line:
                return None if not pieces else " ".join(pieces)
            stripped = line.strip()
            if not pieces and stripped.startswith("."):
                return stripped
            if not pieces and not stripped:
                continue
            pieces.append(stripped)
            if stripped.endswith(";"):
                return " ".join(pieces)
            prompt = self._continuation

    # ------------------------------------------------------------------

    def run(self) -> int:
        """Drive the REPL until EOF or ``.quit``; returns an exit code."""
        self._write("aggregate-skyline shell — statements end with ';',")
        self._write("'.help' for commands, '.quit' to leave")
        while True:
            statement = self._read_statement()
            if statement is None:
                self._write()
                return 0
            if statement.startswith("."):
                if not self._dot_command(statement):
                    return 0
                continue
            self._run_statement(statement)

    def _run_statement(self, statement: str) -> None:
        started = time.perf_counter()
        try:
            result = execute_statement(statement, self.database)
        except (PlanError, DatabaseError, TokenizeError, ValueError) as error:
            self._write(f"error: {error}")
            return
        elapsed = time.perf_counter() - started
        text = result.to_text()
        if text:
            self._write(text)
        if (
            result.query_result is not None
            and result.query_result.skyline_result is not None
        ):
            stats = result.query_result.skyline_result.stats
            self._write(
                f"[{stats.algorithm}:"
                f" {stats.group_comparisons} group comparisons,"
                f" {stats.record_pairs_examined} record pairs]"
            )
        if self._timing:
            self._write(f"({elapsed:.4f} s)")

    def _dot_command(self, command: str) -> bool:
        """Handle a dot-command; returns False to exit the loop."""
        parts = command.split()
        name, arguments = parts[0], parts[1:]
        if name in (".quit", ".exit"):
            return False
        if name == ".help":
            self._write(_HELP.strip("\n"))
        elif name == ".tables":
            names = self.database.table_names()
            self._write(", ".join(names) if names else "(no tables)")
        elif name == ".schema":
            if len(arguments) != 1:
                self._write("usage: .schema TABLE")
            else:
                try:
                    columns = self.database.schema(arguments[0])
                    self._write(f"{arguments[0]}({', '.join(columns)})")
                except DatabaseError as error:
                    self._write(f"error: {error}")
        elif name == ".load":
            if len(arguments) != 1:
                self._write("usage: .load FILE.csv")
            else:
                self._load_csv(arguments[0])
        elif name == ".open":
            if len(arguments) != 1:
                self._write("usage: .open DIRECTORY")
            else:
                try:
                    self.database = Database.load(arguments[0])
                    self._write(
                        f"opened {len(self.database)} table(s) from"
                        f" {arguments[0]}"
                    )
                except (DatabaseError, OSError) as error:
                    self._write(f"error: {error}")
        elif name == ".save":
            if len(arguments) != 1:
                self._write("usage: .save DIRECTORY")
            else:
                try:
                    self.database.save(arguments[0])
                    self._write(
                        f"saved {len(self.database)} table(s) to"
                        f" {arguments[0]}"
                    )
                except OSError as error:
                    self._write(f"error: {error}")
        elif name == ".timing":
            self._timing = not self._timing
            self._write(f"timing {'on' if self._timing else 'off'}")
        else:
            self._write(f"unknown command {name}; try .help")
        return True

    def _load_csv(self, filename: str) -> None:
        path = Path(filename)
        try:
            table = load_csv(path)
        except (OSError, ValueError) as error:
            self._write(f"error: {error}")
            return
        name = path.stem
        self.database.register(name, table)
        self._write(
            f"loaded {len(table)} row(s) into table {name}"
            f" ({', '.join(table.columns)})"
        )


def run_shell(
    database: Optional[Database] = None,
    stdin: Optional[IO[str]] = None,
    stdout: Optional[IO[str]] = None,
) -> int:
    """Convenience wrapper used by the CLI."""
    return Shell(database=database, stdin=stdin, stdout=stdout).run()
