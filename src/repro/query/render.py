"""Render a query AST back to dialect text.

The inverse of :func:`repro.query.parser.parse` — useful for logging,
for building queries programmatically, and (in the test suite) for the
round-trip property ``parse(render(q)) == q`` that pins the parser and
renderer against each other.

Rendering normalises sugar away: ``BETWEEN`` and ``IN`` were desugared by
the parser, so they come back out as explicit conjunctions/disjunctions;
the meaning is preserved exactly.
"""

from __future__ import annotations

from ..core.dominance import Direction
from .ast_nodes import (
    AggCall,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    Logical,
    Not,
    Operand,
    Query,
    SelectItem,
)

__all__ = ["render_query", "render_expression"]


def _render_literal(value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float) and value.is_integer():
        return f"{value:.1f}"
    return repr(value)


def _render_operand(operand: Operand) -> str:
    if isinstance(operand, ColumnRef):
        return operand.name
    if isinstance(operand, Literal):
        return _render_literal(operand.value)
    if isinstance(operand, AggCall):
        return f"{operand.function}({operand.column})"
    raise TypeError(f"not an operand: {operand!r}")


def render_expression(expression: Expression) -> str:
    """Render a boolean expression with explicit parentheses."""
    if isinstance(expression, Comparison):
        return (
            f"{_render_operand(expression.left)} {expression.op}"
            f" {_render_operand(expression.right)}"
        )
    if isinstance(expression, Logical):
        joiner = f" {expression.op} "
        return "(" + joiner.join(
            render_expression(op) for op in expression.operands
        ) + ")"
    if isinstance(expression, Not):
        return f"NOT ({render_expression(expression.operand)})"
    raise TypeError(f"not an expression: {expression!r}")


def _render_select_item(item: SelectItem) -> str:
    rendered = _render_operand(item.expression)
    if item.alias:
        rendered += f" AS {item.alias}"
    return rendered


def render_query(query: Query) -> str:
    """Render a full query in clause order."""
    pieces = ["SELECT"]
    if query.select_star:
        pieces.append("*")
    else:
        pieces.append(
            ", ".join(_render_select_item(item) for item in query.select)
        )
    pieces.append(f"FROM {query.table}")
    if query.where is not None:
        pieces.append(f"WHERE {render_expression(query.where)}")
    if query.group_by:
        pieces.append("GROUP BY " + ", ".join(query.group_by))
    if query.having is not None:
        pieces.append(f"HAVING {render_expression(query.having)}")
    if query.skyline:
        dims = ", ".join(
            f"{spec.column} {'MAX' if spec.direction is Direction.MAX else 'MIN'}"
            for spec in query.skyline
        )
        pieces.append(f"SKYLINE OF {dims}")
        if query.weight is not None:
            pieces.append(f"WEIGHT BY {query.weight}")
    if query.gamma is not None:
        pieces.append(f"WITH GAMMA {query.gamma:g}")
    if query.algorithm is not None:
        pieces.append(f"USING ALGORITHM {query.algorithm}")
    if query.prune_policy is not None:
        pieces.append(f"PRUNE {query.prune_policy.upper()}")
    if query.order_by:
        orders = ", ".join(
            f"{spec.column} {'DESC' if spec.descending else 'ASC'}"
            for spec in query.order_by
        )
        pieces.append(f"ORDER BY {orders}")
    if query.limit is not None:
        pieces.append(f"LIMIT {query.limit}")
    return " ".join(pieces)
