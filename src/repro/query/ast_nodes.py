"""AST for the SKYLINE-extended SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union

from ..core.dominance import Direction

__all__ = [
    "ColumnRef",
    "Literal",
    "AggCall",
    "Comparison",
    "Logical",
    "Not",
    "SelectItem",
    "SkylineSpec",
    "OrderSpec",
    "Query",
    "Expression",
]


@dataclass(frozen=True)
class ColumnRef:
    name: str


@dataclass(frozen=True)
class Literal:
    value: Any


@dataclass(frozen=True)
class AggCall:
    """Aggregate invocation ``func(column)``; column ``"*"`` for COUNT(*)."""

    function: str
    column: str

    @property
    def label(self) -> str:
        return f"{self.function.lower()}({self.column})"


Operand = Union[ColumnRef, Literal, AggCall]


@dataclass(frozen=True)
class Comparison:
    op: str                    # = != < <= > >=
    left: Operand
    right: Operand


@dataclass(frozen=True)
class Logical:
    op: str                    # AND | OR
    operands: Tuple["Expression", ...]


@dataclass(frozen=True)
class Not:
    operand: "Expression"


Expression = Union[Comparison, Logical, Not]


@dataclass(frozen=True)
class SelectItem:
    """One SELECT output: a column or an aggregate, optionally aliased."""

    expression: Operand
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        if isinstance(self.expression, AggCall):
            return self.expression.label
        raise TypeError(f"unnameable select item: {self.expression!r}")


@dataclass(frozen=True)
class SkylineSpec:
    """One SKYLINE OF dimension: ``column MAX`` or ``column MIN``."""

    column: str
    direction: Direction


@dataclass(frozen=True)
class OrderSpec:
    column: str
    descending: bool = False


@dataclass
class Query:
    """A parsed query.

    ``select_star`` short-circuits the select list; ``skyline`` plus
    ``group_by`` triggers the aggregate-skyline operator, ``skyline`` alone
    the record-wise skyline.  ``explain`` marks an ``EXPLAIN SELECT ...``:
    the executor renders the plan tree instead of running the query.
    """

    table: str
    select_star: bool = False
    select: List[SelectItem] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[str] = field(default_factory=list)
    having: Optional[Expression] = None
    skyline: List[SkylineSpec] = field(default_factory=list)
    weight: Optional[str] = None
    gamma: Optional[float] = None
    algorithm: Optional[str] = None
    prune_policy: Optional[str] = None
    order_by: List[OrderSpec] = field(default_factory=list)
    limit: Optional[int] = None
    explain: bool = False

    @property
    def is_aggregate_skyline(self) -> bool:
        return bool(self.skyline) and bool(self.group_by)

    @property
    def is_record_skyline(self) -> bool:
        return bool(self.skyline) and not self.group_by
