"""Tokenizer for the SKYLINE-extended SQL dialect.

Token kinds: ``IDENT`` (also keywords, uppercased by the parser), ``NUMBER``,
``STRING`` (single-quoted, ``''`` escapes a quote), ``OP`` (comparison and
punctuation) and ``EOF``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["Token", "TokenizeError", "tokenize"]

_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", "*", ".")


class TokenizeError(ValueError):
    """Raised on unrecognised input."""


@dataclass(frozen=True)
class Token:
    kind: str          # IDENT | NUMBER | STRING | OP | EOF
    text: str
    position: int      # character offset, for error messages

    def upper(self) -> str:
        return self.text.upper()


def tokenize(source: str) -> List[Token]:
    """Split ``source`` into tokens, ending with an EOF token."""
    tokens: List[Token] = []
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            text, i = _read_string(source, i)
            tokens.append(Token("STRING", text, i))
            continue
        if ch.isdigit() or (
            ch in "+-." and i + 1 < length and source[i + 1].isdigit()
        ):
            start = i
            i += 1
            while i < length and (source[i].isdigit() or source[i] in ".eE+-"):
                # Stop the exponent-sign greediness unless preceded by e/E.
                if source[i] in "+-" and source[i - 1] not in "eE":
                    break
                i += 1
            tokens.append(Token("NUMBER", source[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            tokens.append(Token("IDENT", source[start:i], start))
            continue
        matched = False
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("OP", op, i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise TokenizeError(
                f"unexpected character {ch!r} at position {i}"
            )
    tokens.append(Token("EOF", "", length))
    return tokens


def _read_string(source: str, start: int) -> tuple:
    """Read a single-quoted string starting at ``start``; '' escapes '."""
    i = start + 1
    pieces: List[str] = []
    while i < len(source):
        ch = source[i]
        if ch == "'":
            if i + 1 < len(source) and source[i + 1] == "'":
                pieces.append("'")
                i += 2
                continue
            return "".join(pieces), i + 1
        pieces.append(ch)
        i += 1
    raise TokenizeError(f"unterminated string starting at position {start}")
