"""SQL-ish query layer with the SKYLINE OF extension (paper's Example 3)."""

from .ast_nodes import Query, SelectItem, SkylineSpec
from .executor import QueryResult, execute
from .parser import ParseError, parse
from .planner import PlanError, plan_query
from .render import render_expression, render_query
from .shell import Shell, run_shell
from .statements import (
    StatementResult,
    execute_statement,
    parse_statement,
)
from .tokenizer import TokenizeError, tokenize

__all__ = [
    "parse",
    "execute",
    "plan_query",
    "tokenize",
    "Query",
    "SelectItem",
    "SkylineSpec",
    "QueryResult",
    "ParseError",
    "PlanError",
    "TokenizeError",
    "render_query",
    "render_expression",
    "parse_statement",
    "execute_statement",
    "StatementResult",
    "Shell",
    "run_shell",
]
