"""DDL/DML statements on top of the query dialect.

Adds the statement level around ``SELECT``:

* ``CREATE TABLE name (col1, col2, ...)`` — untyped columns (values are
  dynamically typed; an optional type word after each column is accepted
  and ignored, so pasted SQL mostly works);
* ``INSERT INTO name VALUES (v, ...), (v, ...)``;
* ``DELETE FROM name [WHERE expr]``;
* ``UPDATE name SET col = literal [, ...] [WHERE expr]``;
* ``DROP TABLE name``;
* anything starting with ``SELECT`` is delegated to the query parser.

``execute_statement`` runs one statement against a
:class:`~repro.relational.database.Database` and returns a
:class:`StatementResult` (a message for DDL/DML, a result table for
queries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..relational.database import Database
from .executor import QueryResult, execute
from .parser import ParseError, parse, parse_expression_at
from .planner import compile_predicate
from .tokenizer import Token, tokenize

__all__ = [
    "CreateTable",
    "InsertInto",
    "DeleteFrom",
    "Update",
    "DropTable",
    "StatementResult",
    "parse_statement",
    "execute_statement",
]


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: Tuple[str, ...]


@dataclass(frozen=True)
class InsertInto:
    name: str
    rows: Tuple[Tuple[object, ...], ...]


@dataclass(frozen=True)
class DeleteFrom:
    name: str
    where: Optional[object] = None        # Expression or None (all rows)


@dataclass(frozen=True)
class Update:
    name: str
    assignments: Tuple[Tuple[str, object], ...]
    where: Optional[object] = None


@dataclass(frozen=True)
class DropTable:
    name: str


@dataclass
class StatementResult:
    """Outcome of one statement: a message and/or a query result."""

    message: str = ""
    query_result: Optional[QueryResult] = None

    def to_text(self) -> str:
        if self.query_result is not None:
            return self.query_result.to_text()
        return self.message


class _StatementParser:
    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._position = 0

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != "EOF":
            self._position += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._peek()
        if token.kind == "IDENT" and token.upper() == keyword:
            self._advance()
            return
        raise ParseError(
            f"expected {keyword} at position {token.position},"
            f" found {token.text!r}"
        )

    def _expect_ident(self, what: str) -> str:
        token = self._peek()
        if token.kind != "IDENT":
            raise ParseError(
                f"expected {what} at position {token.position},"
                f" found {token.text!r}"
            )
        return self._advance().text

    def _expect_op(self, op: str) -> None:
        token = self._peek()
        if token.kind == "OP" and token.text == op:
            self._advance()
            return
        raise ParseError(
            f"expected {op!r} at position {token.position},"
            f" found {token.text!r}"
        )

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token.kind == "OP" and token.text == op:
            self._advance()
            return True
        return False

    def _expect_end(self) -> None:
        token = self._peek()
        if token.kind != "EOF":
            raise ParseError(
                f"unexpected trailing input {token.text!r} at position"
                f" {token.position}"
            )

    # ------------------------------------------------------------------

    def parse_create(self) -> CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._expect_ident("table name")
        self._expect_op("(")
        columns: List[str] = []
        while True:
            columns.append(self._expect_ident("column name"))
            # optional type word(s), accepted and ignored
            while self._peek().kind == "IDENT":
                self._advance()
            if self._accept_op(","):
                continue
            self._expect_op(")")
            break
        self._expect_end()
        return CreateTable(name, tuple(columns))

    def parse_insert(self) -> InsertInto:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        name = self._expect_ident("table name")
        self._expect_keyword("VALUES")
        rows: List[Tuple[object, ...]] = []
        while True:
            rows.append(self._parse_value_row())
            if not self._accept_op(","):
                break
        self._expect_end()
        return InsertInto(name, tuple(rows))

    def _parse_value_row(self) -> Tuple[object, ...]:
        self._expect_op("(")
        values: List[object] = []
        while True:
            values.append(self._parse_value())
            if self._accept_op(","):
                continue
            self._expect_op(")")
            return tuple(values)

    def _parse_value(self) -> object:
        token = self._peek()
        if token.kind == "NUMBER":
            text = self._advance().text
            number = float(text)
            if number.is_integer() and "." not in text and "e" not in text.lower():
                return int(number)
            return number
        if token.kind == "STRING":
            return self._advance().text
        if token.kind == "IDENT" and token.upper() == "NULL":
            self._advance()
            return None
        raise ParseError(
            f"expected a literal at position {token.position},"
            f" found {token.text!r}"
        )

    def _parse_optional_where(self):
        token = self._peek()
        if token.kind == "IDENT" and token.upper() == "WHERE":
            self._advance()
            expression, self._position = parse_expression_at(
                self._tokens, self._position
            )
            return expression
        return None

    def parse_delete(self) -> DeleteFrom:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        name = self._expect_ident("table name")
        where = self._parse_optional_where()
        self._expect_end()
        return DeleteFrom(name, where)

    def parse_update(self) -> Update:
        self._expect_keyword("UPDATE")
        name = self._expect_ident("table name")
        self._expect_keyword("SET")
        assignments: List[Tuple[str, object]] = []
        while True:
            column = self._expect_ident("column name")
            self._expect_op("=")
            assignments.append((column, self._parse_value()))
            if not self._accept_op(","):
                break
        where = self._parse_optional_where()
        self._expect_end()
        return Update(name, tuple(assignments), where)

    def parse_drop(self) -> DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        name = self._expect_ident("table name")
        self._expect_end()
        return DropTable(name)


def parse_statement(source: str):
    """Parse one statement: a DDL/DML node or a SELECT ``Query``."""
    stripped = source.strip().rstrip(";")
    if not stripped:
        raise ParseError("empty statement")
    head = stripped.split(None, 1)[0].upper()
    parser = _StatementParser(stripped)
    if head == "CREATE":
        return parser.parse_create()
    if head == "INSERT":
        return parser.parse_insert()
    if head == "DELETE":
        return parser.parse_delete()
    if head == "UPDATE":
        return parser.parse_update()
    if head == "DROP":
        return parser.parse_drop()
    if head in ("SELECT", "EXPLAIN"):
        return parse(stripped)
    raise ParseError(
        f"unknown statement {head!r}; expected CREATE, INSERT, DELETE,"
        " UPDATE, DROP, SELECT or EXPLAIN"
    )


def execute_statement(
    source: str,
    database: Database,
    **algorithm_options,
) -> StatementResult:
    """Parse and run one statement against ``database``."""
    statement = parse_statement(source)
    if isinstance(statement, CreateTable):
        database.create_table(statement.name, list(statement.columns))
        return StatementResult(
            message=f"created table {statement.name}"
            f" ({', '.join(statement.columns)})"
        )
    if isinstance(statement, InsertInto):
        added = database.insert(statement.name, statement.rows)
        return StatementResult(
            message=f"inserted {added} row(s) into {statement.name}"
        )
    if isinstance(statement, DeleteFrom):
        removed = _apply_delete(database, statement)
        return StatementResult(
            message=f"deleted {removed} row(s) from {statement.name}"
        )
    if isinstance(statement, Update):
        changed = _apply_update(database, statement)
        return StatementResult(
            message=f"updated {changed} row(s) in {statement.name}"
        )
    if isinstance(statement, DropTable):
        database.drop_table(statement.name)
        return StatementResult(message=f"dropped table {statement.name}")
    result = execute(statement, database, **algorithm_options)
    return StatementResult(query_result=result)


def _apply_delete(database: Database, statement: DeleteFrom) -> int:
    from ..relational.table import Table

    table = database[statement.name]
    if statement.where is None:
        removed = len(table)
        database.register(statement.name, Table(table.columns, []))
        return removed
    predicate = compile_predicate(statement.where)
    kept = [
        row for row in table.rows if not predicate(table.row_dict(row))
    ]
    database.register(statement.name, Table(table.columns, kept))
    return len(table) - len(kept)


def _apply_update(database: Database, statement: Update) -> int:
    from ..relational.table import Table

    table = database[statement.name]
    positions = {}
    for column, _ in statement.assignments:
        positions[column] = table.column_position(column)
    predicate = (
        compile_predicate(statement.where)
        if statement.where is not None
        else None
    )
    changed = 0
    new_rows = []
    for row in table.rows:
        if predicate is None or predicate(table.row_dict(row)):
            values = list(row)
            for column, value in statement.assignments:
                values[positions[column]] = value
            new_rows.append(tuple(values))
            changed += 1
        else:
            new_rows.append(row)
    database.register(statement.name, Table(table.columns, new_rows))
    return changed
