"""Recursive-descent parser for the SKYLINE-extended SQL dialect.

Grammar (keywords case-insensitive)::

    query     := [EXPLAIN] SELECT select_list FROM ident
                 [WHERE expr]
                 [GROUP BY ident_list]
                 [HAVING expr]
                 [SKYLINE OF sky_item (',' sky_item)* [WEIGHT BY ident]]
                 [WITH GAMMA number] [USING ALGORITHM ident]
                 [ORDER BY order_item (',' order_item)*]
                 [LIMIT integer]
    select_list := '*' | item (',' item)*
    item      := (agg '(' (ident|'*') ')' | ident) [AS ident]
    sky_item  := ident (MAX | MIN)
    expr      := or_expr ; usual AND/OR/NOT precedence and parentheses
    primary   := operand cmp operand | '(' expr ')' | NOT primary
    operand   := agg '(' (ident|'*') ')' | ident | literal

The paper's Example 3 parses directly::

    SELECT director FROM movies GROUP BY director SKYLINE OF pop MAX, qual MAX
"""

from __future__ import annotations

from typing import List, Optional

from ..core.dominance import Direction
from .ast_nodes import (
    AggCall,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    Logical,
    Not,
    Operand,
    OrderSpec,
    Query,
    SelectItem,
    SkylineSpec,
)
from .tokenizer import Token, tokenize

__all__ = ["parse", "ParseError"]

_AGGREGATE_NAMES = {"count", "sum", "avg", "min", "max"}
_COMPARISON_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}


class ParseError(ValueError):
    """Raised on syntactically invalid queries."""


def parse(source: str) -> Query:
    """Parse a query string into a :class:`Query` AST."""
    return _Parser(tokenize(source)).parse_query()


def parse_expression_at(tokens: List[Token], position: int):
    """Parse one boolean expression starting at ``tokens[position]``.

    Returns ``(expression, next_position)``.  Used by the statement layer
    (DELETE/UPDATE WHERE clauses) to share the full expression grammar.
    """
    parser = _Parser(tokens)
    parser._position = position
    expression = parser._parse_expression()
    return expression, parser._position


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._position = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != "EOF":
            self._position += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token.kind == "IDENT" and token.upper() in keywords

    def _accept_keyword(self, *keywords: str) -> bool:
        if self._check_keyword(*keywords):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            token = self._peek()
            raise ParseError(
                f"expected {keyword} at position {token.position},"
                f" found {token.text!r}"
            )

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token.kind == "OP" and token.text == op:
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            token = self._peek()
            raise ParseError(
                f"expected {op!r} at position {token.position},"
                f" found {token.text!r}"
            )

    def _expect_ident(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.kind != "IDENT":
            raise ParseError(
                f"expected {what} at position {token.position},"
                f" found {token.text!r}"
            )
        return self._advance().text

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------

    def parse_query(self) -> Query:
        explain = self._accept_keyword("EXPLAIN")
        self._expect_keyword("SELECT")
        select_star = False
        select: List[SelectItem] = []
        if self._accept_op("*"):
            select_star = True
        else:
            select.append(self._parse_select_item())
            while self._accept_op(","):
                select.append(self._parse_select_item())

        self._expect_keyword("FROM")
        table = self._expect_ident("table name")
        query = Query(
            table=table, select_star=select_star, select=select,
            explain=explain,
        )

        if self._accept_keyword("WHERE"):
            query.where = self._parse_expression()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            query.group_by.append(self._expect_ident("grouping column"))
            while self._accept_op(","):
                query.group_by.append(self._expect_ident("grouping column"))
        if self._accept_keyword("HAVING"):
            query.having = self._parse_expression()
        if self._accept_keyword("SKYLINE"):
            self._expect_keyword("OF")
            query.skyline.append(self._parse_skyline_item())
            while self._accept_op(","):
                query.skyline.append(self._parse_skyline_item())
            if self._accept_keyword("WEIGHT"):
                self._expect_keyword("BY")
                query.weight = self._expect_ident("weight column")
        if self._accept_keyword("WITH"):
            self._expect_keyword("GAMMA")
            token = self._peek()
            if token.kind != "NUMBER":
                raise ParseError(
                    f"expected a number after WITH GAMMA at position"
                    f" {token.position}"
                )
            query.gamma = float(self._advance().text)
        if self._accept_keyword("USING"):
            self._expect_keyword("ALGORITHM")
            query.algorithm = self._expect_ident("algorithm name").upper()
        if self._accept_keyword("PRUNE"):
            policy = self._expect_ident("prune policy").lower()
            if policy not in ("safe", "paper"):
                raise ParseError(
                    f"PRUNE expects SAFE or PAPER, got {policy!r}"
                )
            query.prune_policy = policy
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            query.order_by.append(self._parse_order_item())
            while self._accept_op(","):
                query.order_by.append(self._parse_order_item())
        if self._accept_keyword("LIMIT"):
            token = self._peek()
            if token.kind != "NUMBER":
                raise ParseError(
                    f"expected a number after LIMIT at position {token.position}"
                )
            query.limit = int(float(self._advance().text))

        trailing = self._peek()
        if trailing.kind != "EOF":
            raise ParseError(
                f"unexpected trailing input {trailing.text!r} at position"
                f" {trailing.position}"
            )
        return query

    def _parse_select_item(self) -> SelectItem:
        expression = self._parse_operand(allow_literal=False)
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        return SelectItem(expression=expression, alias=alias)

    def _parse_skyline_item(self) -> SkylineSpec:
        column = self._expect_ident("skyline column")
        token = self._peek()
        if token.kind == "IDENT" and token.upper() in ("MAX", "MIN"):
            direction = Direction.from_any(self._advance().text)
        else:
            direction = Direction.MAX
        return SkylineSpec(column=column, direction=direction)

    def _parse_order_item(self) -> OrderSpec:
        column = self._expect_ident("order column")
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderSpec(column=column, descending=descending)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._accept_keyword("OR"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return Logical("OR", tuple(operands))

    def _parse_and(self) -> Expression:
        operands = [self._parse_unary()]
        while self._accept_keyword("AND"):
            operands.append(self._parse_unary())
        if len(operands) == 1:
            return operands[0]
        return Logical("AND", tuple(operands))

    def _parse_unary(self) -> Expression:
        if self._accept_keyword("NOT"):
            return Not(self._parse_unary())
        if self._accept_op("("):
            inner = self._parse_expression()
            self._expect_op(")")
            return inner
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_operand()
        # BETWEEN lo AND hi  ->  (left >= lo) AND (left <= hi)
        if self._accept_keyword("BETWEEN"):
            low = self._parse_operand()
            self._expect_keyword("AND")
            high = self._parse_operand()
            return Logical(
                "AND",
                (Comparison(">=", left, low), Comparison("<=", left, high)),
            )
        # [NOT] IN (v1, v2, ...)  ->  disjunction of equalities
        negated = False
        if self._check_keyword("NOT"):
            # Only consume NOT if IN follows (it otherwise belongs to the
            # caller's unary layer, which never reaches here mid-operand).
            saved = self._position
            self._advance()
            if self._check_keyword("IN"):
                negated = True
            else:
                self._position = saved
        if self._accept_keyword("IN"):
            self._expect_op("(")
            values = [self._parse_operand()]
            while self._accept_op(","):
                values.append(self._parse_operand())
            self._expect_op(")")
            membership: Expression
            comparisons = tuple(
                Comparison("=", left, value) for value in values
            )
            membership = (
                comparisons[0] if len(comparisons) == 1
                else Logical("OR", comparisons)
            )
            return Not(membership) if negated else membership
        token = self._peek()
        if token.kind != "OP" or token.text not in _COMPARISON_OPS:
            raise ParseError(
                f"expected a comparison operator at position {token.position},"
                f" found {token.text!r}"
            )
        op = self._advance().text
        if op == "<>":
            op = "!="
        right = self._parse_operand()
        return Comparison(op, left, right)

    def _parse_operand(self, allow_literal: bool = True) -> Operand:
        token = self._peek()
        if token.kind == "NUMBER":
            if not allow_literal:
                raise ParseError(
                    f"literal not allowed at position {token.position}"
                )
            text = self._advance().text
            value = float(text)
            return Literal(int(value) if value.is_integer() and "." not in text and "e" not in text.lower() else value)
        if token.kind == "STRING":
            if not allow_literal:
                raise ParseError(
                    f"literal not allowed at position {token.position}"
                )
            return Literal(self._advance().text)
        if token.kind == "IDENT":
            name = self._advance().text
            if name.lower() in _AGGREGATE_NAMES and self._accept_op("("):
                if self._accept_op("*"):
                    column = "*"
                else:
                    column = self._expect_ident("aggregate column")
                self._expect_op(")")
                return AggCall(name.lower(), column)
            return ColumnRef(name)
        raise ParseError(
            f"expected an operand at position {token.position},"
            f" found {token.text!r}"
        )
