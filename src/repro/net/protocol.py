"""Wire protocol for the network front-end — and the one place query
specs are validated.

The TCP protocol is line-oriented JSONL: one JSON object per line, one
request per line, one response line per request, in order.  A request
is a query spec (the same keyword surface as
:meth:`repro.engine.SkylineEngine.query`) plus three reserved keys:

``id``
    Opaque client correlation value, echoed verbatim on the response.
``op``
    ``"query"`` (default), ``"explain"``, ``"stats"`` or ``"ping"``.
``deadline_ms``
    Per-request deadline in milliseconds, covering both the admission
    wait and the execution.  Expiry produces an error frame with code
    ``"timeout"`` — the pool itself is never killed.

Responses are ``{"id": ..., "ok": true, "result": {...}}`` or
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}``.

:func:`validate_spec` is shared by the server, the HTTP shim, the
client and ``repro serve --batch``: it type-checks every known key and
rejects unknown ones with a did-you-mean suggestion *before* anything
reaches ``engine.query(**spec)`` (which used to surface malformed batch
lines as raw tracebacks).
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, Mapping, Optional

from ..core.execution import suggest

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "SPEC_KEYS",
    "RESERVED_KEYS",
    "ERROR_BAD_REQUEST",
    "ERROR_OVERLOADED",
    "ERROR_TIMEOUT",
    "ERROR_INTERNAL",
    "ERROR_SHUTTING_DOWN",
    "SpecError",
    "validate_spec",
    "encode_frame",
    "decode_frame",
    "result_payload",
    "error_frame",
    "ok_frame",
]

PROTOCOL_VERSION = 1

#: Upper bound on one request line — backpressure instead of unbounded
#: buffering: a client that ships a bigger frame gets ``bad_request``
#: and the connection is closed.
MAX_LINE_BYTES = 1 << 20

#: The query-spec surface accepted over the wire and in batch files.
SPEC_KEYS = frozenset({"gamma", "algorithm", "dims", "execution", "explain"})

#: Transport-level keys stripped before the spec reaches the engine.
RESERVED_KEYS = frozenset({"id", "op", "deadline_ms"})

ERROR_BAD_REQUEST = "bad_request"
ERROR_OVERLOADED = "overloaded"
ERROR_TIMEOUT = "timeout"
ERROR_INTERNAL = "internal"
ERROR_SHUTTING_DOWN = "shutting_down"


class SpecError(ValueError):
    """A query spec failed validation (bad type, unknown key, bad JSON)."""


def _spec_gamma(value: Any) -> Any:
    if isinstance(value, bool):
        raise SpecError(
            f"'gamma' expects a number in [0.5, 1], got {value!r}"
            " (example: \"gamma\": 0.6)"
        )
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            return Fraction(value)
        except (ValueError, ZeroDivisionError):
            raise SpecError(
                f"'gamma' expects a number or a fraction string like"
                f" \"2/3\", got {value!r} (example: \"gamma\": 0.6)"
            ) from None
    raise SpecError(
        f"'gamma' expects a number, got {type(value).__name__}"
        " (example: \"gamma\": 0.6)"
    )


def _spec_dims(value: Any) -> list:
    if not isinstance(value, (list, tuple)):
        raise SpecError(
            f"'dims' expects a list of column indices, got"
            f" {type(value).__name__} (example: \"dims\": [0, 1])"
        )
    dims = []
    for entry in value:
        if isinstance(entry, bool) or not isinstance(entry, int):
            raise SpecError(
                f"'dims' entries must be integers, got {entry!r}"
                " (example: \"dims\": [0, 1])"
            )
        dims.append(int(entry))
    return dims


def validate_spec(
    spec: Any, *, allow_explain: bool = True
) -> Dict[str, Any]:
    """Normalise one query spec into ``engine.query()`` keywords.

    Raises :class:`SpecError` — never a raw ``TypeError`` from the
    engine — on a non-object spec, a mistyped known key, or an unknown
    key (with a did-you-mean suggestion against :data:`SPEC_KEYS`).
    ``explain`` stays in the returned dict when present and permitted;
    the caller routes it.
    """
    if not isinstance(spec, Mapping):
        raise SpecError(
            f"query spec must be a JSON object, got {type(spec).__name__}"
        )
    kwargs: Dict[str, Any] = {}
    for key, value in spec.items():
        if not isinstance(key, str):
            raise SpecError(f"spec keys must be strings, got {key!r}")
        if key == "gamma":
            kwargs["gamma"] = _spec_gamma(value)
        elif key == "algorithm":
            if not isinstance(value, str) or not value.strip():
                raise SpecError(
                    f"'algorithm' expects a name like \"LO\" or \"auto\","
                    f" got {value!r}"
                )
            kwargs["algorithm"] = value
        elif key == "dims":
            kwargs["dims"] = _spec_dims(value)
        elif key == "execution":
            if not isinstance(value, (str, Mapping)):
                raise SpecError(
                    f"'execution' expects a spec string like"
                    f" \"workers=4,scheduler=stealing\" or an object,"
                    f" got {type(value).__name__}"
                )
            kwargs["execution"] = value
        elif key == "explain":
            if not allow_explain:
                raise SpecError("'explain' is not accepted here")
            if not isinstance(value, bool):
                raise SpecError(
                    f"'explain' expects true or false, got {value!r}"
                )
            kwargs["explain"] = value
        else:
            allowed = sorted(SPEC_KEYS if allow_explain else SPEC_KEYS - {"explain"})
            raise SpecError(
                f"unknown spec key {key!r}; expected one of {allowed}"
                + suggest(key, SPEC_KEYS)
            )
    return kwargs


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------


def _json_default(value):
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, tuple):  # pragma: no cover - tuples render as lists
        return list(value)
    return str(value)


def encode_frame(payload: Mapping) -> bytes:
    """One JSONL frame: compact JSON + newline, UTF-8."""
    return (
        json.dumps(payload, separators=(",", ":"), default=_json_default)
        + "\n"
    ).encode("utf-8")


def decode_frame(raw) -> Dict[str, Any]:
    """Parse one request line; raises :class:`SpecError` on bad JSON."""
    if isinstance(raw, (bytes, bytearray)):
        raw = raw.decode("utf-8", errors="replace")
    try:
        frame = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise SpecError(f"invalid JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise SpecError(
            f"request frame must be a JSON object, got"
            f" {type(frame).__name__}"
        )
    return frame


def result_payload(result, *, elapsed_seconds: float) -> Dict[str, Any]:
    """The JSON-safe body of a successful query response.

    ``keys`` keeps submission order; tuple group keys become lists (the
    client converts back when comparing).  ``stats`` carries **every**
    ``AlgorithmStats`` counter via ``as_dict`` — the acceptance contract
    is that these match a sequential ``engine.query()`` bit for bit
    (wall-clock fields excepted, they measure this run).
    """
    gamma = result.gamma
    if isinstance(gamma, Fraction):
        gamma = str(gamma)
    return {
        "keys": [
            list(key) if isinstance(key, tuple) else key
            for key in result.keys
        ],
        "gamma": gamma,
        "algorithm": result.stats.algorithm,
        "stats": result.stats.as_dict(),
        "elapsed_seconds": elapsed_seconds,
    }


def ok_frame(request_id, result: Mapping) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": dict(result)}


def error_frame(request_id, code: str, message: str) -> Dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
